//! `jahob-models`: a SAT-based bounded model finder — the Alloy substitute.
//!
//! The paper's related-work section points at the Alloy Analyzer [34] as the
//! finite-model-finding complement to verification ("bug finding can be
//! combined with verification in productive ways"). This crate implements
//! that component from scratch: a specification-logic formula is *grounded*
//! over a small universe of objects (`0` is `null`, `1..=n` proper), the
//! grounding is Tseitin-encoded, and the CDCL solver from `jahob-sat`
//! searches for a model.
//!
//! Supported structure — chosen to cover Jahob's list obligations exactly:
//!
//! * object variables (one-hot encoded), fields (`obj => obj` as functional
//!   relations), object sets (characteristic bits), boolean variables,
//! * set algebra, membership, equality at every supported sort (function
//!   equality is pointwise over the universe),
//! * `fieldWrite` (update matrices), `rtrancl_pt` over arbitrary lambda
//!   edge formulas (transitive closure by iterated squaring — exact within
//!   the bound),
//! * `tree [f₁, …]` (indegree ≤ 1 plus rank-based acyclicity),
//! * quantifiers and comprehensions over `obj` (expanded).
//!
//! Integer arithmetic and cardinalities are *not* grounded — those goals
//! belong to `jahob-presburger`/`jahob-bapa`.
//!
//! Two uses:
//!
//! * **Bug finding** ([`refute`]): search for a counter-model of a goal; a
//!   found model is checked against the reference evaluator
//!   (`jahob_logic::model`) before being reported, so reported bugs are
//!   always genuine.
//! * **Bounded validity** ([`bmc_valid`]): the "decision procedures for
//!   linked lists with membership in NP" style of §4 — for the ground list
//!   fragment, absence of models up to a term-count-derived bound implies
//!   validity; the verdict records the bound so reports stay honest.

use jahob_logic::model::{Key, Model, Value};
use jahob_logic::{BinOp, Form, QKind, Sort, UnOp};
use jahob_sat::{CnfBuilder, PropForm, SolveResult, Solver};
use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::{FxHashMap, Symbol};
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// Grounding failure: construct outside the boundable fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundError {
    pub message: String,
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot ground: {}", self.message)
    }
}

impl std::error::Error for GroundError {}

/// Why a budgeted model search did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelsFailure {
    /// The goal is outside the boundable fragment — route it elsewhere.
    Fragment(GroundError),
    /// The budget ran out mid-search.
    Exhausted(Exhaustion),
}

impl fmt::Display for ModelsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelsFailure::Fragment(e) => e.fmt(f),
            ModelsFailure::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ModelsFailure {}

fn err<T>(message: impl Into<String>) -> Result<T, GroundError> {
    Err(GroundError {
        message: message.into(),
    })
}

/// What a symbol is, for encoding purposes.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Kind {
    Obj,
    ObjSet,
    Bool,
    Field,
    /// `obj => bool` predicate.
    ObjPred,
}

/// Atom index allocator shared by all encoded entities.
struct Atoms {
    next: u32,
    /// Object variable one-hot bits: sym → base index (n+1 consecutive).
    obj_vars: FxHashMap<Symbol, u32>,
    /// Set bits: sym → base index (n+1 consecutive).
    set_vars: FxHashMap<Symbol, u32>,
    /// Boolean variables.
    bool_vars: FxHashMap<Symbol, u32>,
    /// Field matrices: sym → base ( (n+1)² consecutive, row-major ).
    field_vars: FxHashMap<Symbol, u32>,
    /// Object predicates: sym → base (n+1 consecutive).
    pred_vars: FxHashMap<Symbol, u32>,
}

impl Atoms {
    fn new() -> Self {
        Atoms {
            next: 0,
            obj_vars: FxHashMap::default(),
            set_vars: FxHashMap::default(),
            bool_vars: FxHashMap::default(),
            field_vars: FxHashMap::default(),
            pred_vars: FxHashMap::default(),
        }
    }

    fn alloc(&mut self, count: u32) -> u32 {
        let base = self.next;
        self.next += count;
        base
    }
}

/// The grounding context for one universe size.
struct Grounder<'a> {
    n: u32,
    sig: &'a FxHashMap<Symbol, Sort>,
    atoms: Atoms,
    /// Structural constraints collected during encoding (functionality,
    /// one-hot, tree constraints, definitional iffs).
    constraints: Vec<PropForm>,
    /// Fresh defined atoms for closure layers: cache by (edge-id, layer).
    defined: u32,
}

/// Number of object ids (including null).
fn width(n: u32) -> usize {
    n as usize + 1
}

impl<'a> Grounder<'a> {
    fn new(n: u32, sig: &'a FxHashMap<Symbol, Sort>) -> Self {
        Grounder {
            n,
            sig,
            atoms: Atoms::new(),
            constraints: Vec::new(),
            defined: 0,
        }
    }

    fn kind_of(&self, name: Symbol) -> Result<Kind, GroundError> {
        match self.sig.get(&name) {
            Some(Sort::Obj) => Ok(Kind::Obj),
            Some(Sort::Bool) => Ok(Kind::Bool),
            Some(Sort::Set(inner)) if **inner == Sort::Obj => Ok(Kind::ObjSet),
            Some(Sort::Fun(args, ret))
                if args.len() == 1 && args[0] == Sort::Obj && **ret == Sort::Obj =>
            {
                Ok(Kind::Field)
            }
            Some(Sort::Fun(args, ret))
                if args.len() == 1 && args[0] == Sort::Obj && **ret == Sort::Bool =>
            {
                Ok(Kind::ObjPred)
            }
            Some(other) => err(format!("symbol `{name}` has unboundable sort {other}")),
            None => err(format!("symbol `{name}` not in signature")),
        }
    }

    // ---- entity encodings ---------------------------------------------------

    fn obj_var_bits(&mut self, name: Symbol) -> Vec<PropForm> {
        let w = width(self.n) as u32;
        let base = match self.atoms.obj_vars.get(&name) {
            Some(&b) => b,
            None => {
                let b = self.atoms.alloc(w);
                self.atoms.obj_vars.insert(name, b);
                // Exactly-one constraint.
                let bits: Vec<PropForm> = (0..w).map(|i| PropForm::atom(b + i)).collect();
                self.constraints.push(PropForm::or(bits.clone()));
                for i in 0..w as usize {
                    for j in (i + 1)..w as usize {
                        self.constraints.push(PropForm::or(vec![
                            PropForm::not(bits[i].clone()),
                            PropForm::not(bits[j].clone()),
                        ]));
                    }
                }
                b
            }
        };
        (0..w).map(|i| PropForm::atom(base + i)).collect()
    }

    fn set_var_bits(&mut self, name: Symbol) -> Vec<PropForm> {
        let w = width(self.n) as u32;
        let base = *self.atoms.set_vars.entry(name).or_insert_with(|| {
            let b = self.atoms.next;
            self.atoms.next += w;
            b
        });
        (0..w).map(|i| PropForm::atom(base + i)).collect()
    }

    fn bool_var(&mut self, name: Symbol) -> PropForm {
        let base = *self.atoms.bool_vars.entry(name).or_insert_with(|| {
            let b = self.atoms.next;
            self.atoms.next += 1;
            b
        });
        PropForm::atom(base)
    }

    fn pred_var_bits(&mut self, name: Symbol) -> Vec<PropForm> {
        let w = width(self.n) as u32;
        let base = *self.atoms.pred_vars.entry(name).or_insert_with(|| {
            let b = self.atoms.next;
            self.atoms.next += w;
            b
        });
        (0..w).map(|i| PropForm::atom(base + i)).collect()
    }

    /// Field matrix M[i][j] ⇔ f(i) = j, with functionality constraints.
    fn field_matrix(&mut self, name: Symbol) -> Vec<Vec<PropForm>> {
        let w = width(self.n);
        let base = match self.atoms.field_vars.get(&name) {
            Some(&b) => b,
            None => {
                let b = self.atoms.alloc((w * w) as u32);
                self.atoms.field_vars.insert(name, b);
                // Each row: exactly one target.
                for i in 0..w {
                    let row: Vec<PropForm> = (0..w)
                        .map(|j| PropForm::atom(b + (i * w + j) as u32))
                        .collect();
                    self.constraints.push(PropForm::or(row.clone()));
                    for x in 0..w {
                        for y in (x + 1)..w {
                            self.constraints.push(PropForm::or(vec![
                                PropForm::not(row[x].clone()),
                                PropForm::not(row[y].clone()),
                            ]));
                        }
                    }
                }
                // Fields map null to null (the Jahob convention the
                // reference evaluator also uses).
                self.constraints.push(PropForm::atom(b));
                b
            }
        };
        (0..w)
            .map(|i| {
                (0..w)
                    .map(|j| PropForm::atom(base + (i * w + j) as u32))
                    .collect()
            })
            .collect()
    }

    /// A fresh defined atom with an asserted definition.
    fn define(&mut self, def: PropForm) -> PropForm {
        match def {
            PropForm::True | PropForm::False | PropForm::Atom(_) => def,
            _ => {
                let base = self.atoms.alloc(1);
                self.defined += 1;
                let atom = PropForm::atom(base);
                self.constraints.push(PropForm::iff(atom.clone(), def));
                atom
            }
        }
    }

    // ---- term encodings -----------------------------------------------------

    /// Environment: binder → concrete object id.
    /// Encode an object term as an indicator vector.
    #[allow(clippy::needless_range_loop)] // matrix row/column indexing
    fn obj_bits(
        &mut self,
        form: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<PropForm>, GroundError> {
        let w = width(self.n);
        match form {
            Form::Null => {
                let mut v = vec![PropForm::False; w];
                v[0] = PropForm::True;
                Ok(v)
            }
            Form::Var(name) => {
                if let Some(&id) = env.get(name) {
                    let mut v = vec![PropForm::False; w];
                    v[id as usize] = PropForm::True;
                    return Ok(v);
                }
                match self.kind_of(*name)? {
                    Kind::Obj => Ok(self.obj_var_bits(*name)),
                    other => err(format!("`{name}` used as object but is {other:?}")),
                }
            }
            Form::App(_, _) => {
                // fun-term applied to an object argument.
                let (head, args) = match form {
                    Form::App(h, a) => (h.as_ref(), a),
                    _ => unreachable!(),
                };
                // A flattened `fieldWrite f a b x`: function part is the
                // first three arguments.
                let (matrix, arg_term) = if args.len() == 4
                    && matches!(head, Form::Var(h) if h.as_str() == jahob_logic::form::sym::FIELD_WRITE)
                {
                    let fun = Form::app(head.clone(), args[..3].to_vec());
                    (self.fun_matrix_term(&fun, env)?, &args[3])
                } else if args.len() == 1 {
                    (self.fun_matrix_term(head, env)?, &args[0])
                } else {
                    return err(format!("non-unary application `{form}`"));
                };
                let arg = self.obj_bits(arg_term, env)?;
                let mut out = Vec::with_capacity(w);
                for j in 0..w {
                    let cases: Vec<PropForm> = (0..w)
                        .map(|i| PropForm::and(vec![arg[i].clone(), matrix[i][j].clone()]))
                        .collect();
                    out.push(self.define(PropForm::or(cases)));
                }
                Ok(out)
            }
            Form::Ite(c, t, e) => {
                let cond = self.bool_prop(c, env)?;
                let tb = self.obj_bits(t, env)?;
                let eb = self.obj_bits(e, env)?;
                Ok((0..w)
                    .map(|i| {
                        PropForm::or(vec![
                            PropForm::and(vec![cond.clone(), tb[i].clone()]),
                            PropForm::and(vec![PropForm::not(cond.clone()), eb[i].clone()]),
                        ])
                    })
                    .collect())
            }
            other => err(format!("object term expected: `{other}`")),
        }
    }

    /// Encode a function-valued term (field or fieldWrite chain) as a
    /// transition matrix.
    fn fun_matrix_term(
        &mut self,
        form: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<Vec<PropForm>>, GroundError> {
        let w = width(self.n);
        match form {
            Form::Var(name) => match self.kind_of(*name)? {
                Kind::Field => Ok(self.field_matrix(*name)),
                other => err(format!("`{name}` used as field but is {other:?}")),
            },
            Form::App(head, args) => {
                // fieldWrite f at val — possibly nested.
                if let Form::Var(fw) = head.as_ref() {
                    if fw.as_str() == jahob_logic::form::sym::FIELD_WRITE && args.len() == 3 {
                        let base = self.fun_matrix_term(&args[0], env)?;
                        let at = self.obj_bits(&args[1], env)?;
                        let val = self.obj_bits(&args[2], env)?;
                        let mut out = vec![vec![PropForm::False; w]; w];
                        for i in 0..w {
                            for (j, out_ij) in out[i].iter_mut().enumerate() {
                                // M'(i,j) = (at=i ∧ val=j) ∨ (at≠i ∧ M(i,j)).
                                *out_ij = PropForm::or(vec![
                                    PropForm::and(vec![at[i].clone(), val[j].clone()]),
                                    PropForm::and(vec![
                                        PropForm::not(at[i].clone()),
                                        base[i][j].clone(),
                                    ]),
                                ]);
                            }
                        }
                        return Ok(out);
                    }
                }
                err(format!("function-valued term expected: `{form}`"))
            }
            other => err(format!("function-valued term expected: `{other}`")),
        }
    }

    /// Encode a set term as a membership vector.
    fn set_bits(
        &mut self,
        form: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<PropForm>, GroundError> {
        let w = width(self.n);
        match form {
            Form::EmptySet => Ok(vec![PropForm::False; w]),
            Form::Var(name) => match self.kind_of(*name)? {
                Kind::ObjSet => Ok(self.set_var_bits(*name)),
                other => err(format!("`{name}` used as set but is {other:?}")),
            },
            Form::FiniteSet(elems) => {
                let mut out = vec![PropForm::False; w];
                for e in elems {
                    let bits = self.obj_bits(e, env)?;
                    for i in 0..w {
                        out[i] = PropForm::or(vec![out[i].clone(), bits[i].clone()]);
                    }
                }
                Ok(out)
            }
            Form::Binop(op @ (BinOp::Union | BinOp::Inter | BinOp::Diff | BinOp::Sub), a, b) => {
                let av = self.set_bits(a, env)?;
                let bv = self.set_bits(b, env)?;
                Ok((0..w)
                    .map(|i| match op {
                        BinOp::Union => PropForm::or(vec![av[i].clone(), bv[i].clone()]),
                        BinOp::Inter => PropForm::and(vec![av[i].clone(), bv[i].clone()]),
                        _ => PropForm::and(vec![av[i].clone(), PropForm::not(bv[i].clone())]),
                    })
                    .collect())
            }
            Form::Compr(x, _, body) => {
                let mut out = Vec::with_capacity(w);
                for i in 0..w as u32 {
                    let mut inner_env = env.clone();
                    inner_env.insert(*x, i);
                    let b = self.bool_prop(body, &inner_env)?;
                    out.push(self.define(b));
                }
                Ok(out)
            }
            other => err(format!("set term expected: `{other}`")),
        }
    }

    /// Encode a boolean formula.
    fn bool_prop(
        &mut self,
        form: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<PropForm, GroundError> {
        let w = width(self.n);
        match form {
            Form::BoolLit(b) => Ok(if *b { PropForm::True } else { PropForm::False }),
            Form::And(parts) => Ok(PropForm::and(
                parts
                    .iter()
                    .map(|p| self.bool_prop(p, env))
                    .collect::<Result<_, _>>()?,
            )),
            Form::Or(parts) => Ok(PropForm::or(
                parts
                    .iter()
                    .map(|p| self.bool_prop(p, env))
                    .collect::<Result<_, _>>()?,
            )),
            Form::Unop(UnOp::Not, inner) => Ok(PropForm::not(self.bool_prop(inner, env)?)),
            Form::Binop(BinOp::Implies, a, b) => Ok(PropForm::implies(
                self.bool_prop(a, env)?,
                self.bool_prop(b, env)?,
            )),
            Form::Binop(BinOp::Iff, a, b) => Ok(PropForm::iff(
                self.bool_prop(a, env)?,
                self.bool_prop(b, env)?,
            )),
            Form::Binop(BinOp::Elem, x, s) => {
                let xb = self.obj_bits(x, env)?;
                let sb = self.set_bits(s, env)?;
                Ok(PropForm::or(
                    (0..w)
                        .map(|i| PropForm::and(vec![xb[i].clone(), sb[i].clone()]))
                        .collect(),
                ))
            }
            Form::Binop(BinOp::Subseteq, a, b) | Form::Binop(BinOp::Le, a, b) => {
                let av = self.set_bits(a, env)?;
                let bv = self.set_bits(b, env)?;
                Ok(PropForm::and(
                    (0..w)
                        .map(|i| PropForm::implies(av[i].clone(), bv[i].clone()))
                        .collect(),
                ))
            }
            Form::Binop(BinOp::Eq, a, b) => self.equality(a, b, env),
            Form::Quant(kind, binders, body) => {
                // Expand object quantifiers.
                let mut expanded = vec![env.clone()];
                for (name, sort) in binders {
                    if !matches!(sort, Sort::Obj | Sort::Var(_)) {
                        return err(format!("quantifier over non-obj binder `{name}`"));
                    }
                    let mut next = Vec::with_capacity(expanded.len() * w);
                    for e in &expanded {
                        for i in 0..w as u32 {
                            let mut e2 = e.clone();
                            e2.insert(*name, i);
                            next.push(e2);
                        }
                    }
                    expanded = next;
                }
                let mut parts = Vec::with_capacity(expanded.len());
                for e in &expanded {
                    parts.push(self.bool_prop(body, e)?);
                }
                Ok(match kind {
                    QKind::All => PropForm::and(parts),
                    QKind::Ex => PropForm::or(parts),
                })
            }
            Form::Tree(fields) => self.tree_constraint(fields, env),
            Form::App(head, args) => {
                // rtrancl_pt, predicates.
                if let Form::Var(name) = head.as_ref() {
                    if name.as_str() == jahob_logic::form::sym::RTRANCL && args.len() == 3 {
                        return self.rtrancl(&args[0], &args[1], &args[2], env);
                    }
                    if args.len() == 1 {
                        if let Ok(Kind::ObjPred) = self.kind_of(*name) {
                            let bits = self.pred_var_bits(*name);
                            let arg = self.obj_bits(&args[0], env)?;
                            return Ok(PropForm::or(
                                (0..w)
                                    .map(|i| PropForm::and(vec![arg[i].clone(), bits[i].clone()]))
                                    .collect(),
                            ));
                        }
                    }
                }
                err(format!("unsupported atom `{form}`"))
            }
            Form::Var(name) => match self.kind_of(*name)? {
                Kind::Bool => Ok(self.bool_var(*name)),
                other => err(format!("`{name}` used as boolean but is {other:?}")),
            },
            other => err(format!("unsupported formula `{other}`")),
        }
    }

    fn equality(
        &mut self,
        a: &Form,
        b: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<PropForm, GroundError> {
        let w = width(self.n);
        // Try object equality first, then set, then function, then bool.
        if let (Ok(ab), Ok(bb)) = (self.obj_bits_try(a, env), self.obj_bits_try(b, env)) {
            return Ok(PropForm::or(
                (0..w)
                    .map(|i| PropForm::and(vec![ab[i].clone(), bb[i].clone()]))
                    .collect(),
            ));
        }
        if let (Ok(av), Ok(bv)) = (self.set_bits_try(a, env), self.set_bits_try(b, env)) {
            return Ok(PropForm::and(
                (0..w)
                    .map(|i| PropForm::iff(av[i].clone(), bv[i].clone()))
                    .collect(),
            ));
        }
        if let (Ok(am), Ok(bm)) = (self.fun_matrix_try(a, env), self.fun_matrix_try(b, env)) {
            let mut parts = Vec::with_capacity(w * w);
            for i in 0..w {
                for j in 0..w {
                    parts.push(PropForm::iff(am[i][j].clone(), bm[i][j].clone()));
                }
            }
            return Ok(PropForm::and(parts));
        }
        // Boolean equality.
        let ap = self.bool_prop(a, env)?;
        let bp = self.bool_prop(b, env)?;
        Ok(PropForm::iff(ap, bp))
    }

    fn obj_bits_try(
        &mut self,
        f: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<PropForm>, GroundError> {
        // Cheap syntactic pre-check to avoid committing variable kinds
        // incorrectly.
        match f {
            Form::Null | Form::Ite(_, _, _) => self.obj_bits(f, env),
            Form::Var(name) => {
                if env.contains_key(name) || self.kind_of(*name)? == Kind::Obj {
                    self.obj_bits(f, env)
                } else {
                    err("not an object")
                }
            }
            Form::App(head, args) if args.len() == 1 => {
                // Applications denote objects when the head is a field/
                // fieldWrite chain.
                match head.as_ref() {
                    Form::Var(h)
                        if self.kind_of(*h) == Ok(Kind::Field)
                            || h.as_str() == jahob_logic::form::sym::FIELD_WRITE =>
                    {
                        self.obj_bits(f, env)
                    }
                    _ => err("not an object application"),
                }
            }
            Form::App(head, args) if args.len() == 4 => {
                // Flattened fieldWrite application: fieldWrite f a b x.
                match head.as_ref() {
                    Form::Var(h) if h.as_str() == jahob_logic::form::sym::FIELD_WRITE => {
                        let fun = Form::app(Form::Var(*h), args[..3].to_vec());
                        let rebuilt = Form::App(Rc::new(fun), vec![args[3].clone()]);
                        self.obj_bits(&rebuilt, env)
                    }
                    _ => err("not an object application"),
                }
            }
            _ => err("not an object term"),
        }
    }

    fn set_bits_try(
        &mut self,
        f: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<PropForm>, GroundError> {
        match f {
            Form::EmptySet
            | Form::FiniteSet(_)
            | Form::Compr(_, _, _)
            | Form::Binop(BinOp::Union | BinOp::Inter | BinOp::Diff, _, _) => self.set_bits(f, env),
            Form::Var(name) if self.kind_of(*name) == Ok(Kind::ObjSet) => self.set_bits(f, env),
            _ => err("not a set term"),
        }
    }

    fn fun_matrix_try(
        &mut self,
        f: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<Vec<Vec<PropForm>>, GroundError> {
        match f {
            Form::Var(name) if self.kind_of(*name) == Ok(Kind::Field) => {
                self.fun_matrix_term(f, env)
            }
            Form::App(head, args) if args.len() == 3 => match head.as_ref() {
                Form::Var(h) if h.as_str() == jahob_logic::form::sym::FIELD_WRITE => {
                    self.fun_matrix_term(f, env)
                }
                _ => err("not a function term"),
            },
            _ => err("not a function term"),
        }
    }

    /// Transitive closure of a lambda edge, by iterated squaring with
    /// defined layer atoms.
    fn rtrancl(
        &mut self,
        lambda: &Form,
        from: &Form,
        to: &Form,
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<PropForm, GroundError> {
        let w = width(self.n);
        let Form::Lambda(binders, body) = lambda else {
            return err("rtrancl_pt needs a lambda edge");
        };
        if binders.len() != 2 {
            return err("rtrancl_pt lambda must be binary");
        }
        let (x, y) = (binders[0].0, binders[1].0);
        // Edge matrix.
        let mut r: Vec<Vec<PropForm>> = vec![vec![PropForm::False; w]; w];
        for i in 0..w as u32 {
            for j in 0..w as u32 {
                let mut inner_env = env.clone();
                inner_env.insert(x, i);
                inner_env.insert(y, j);
                let e = self.bool_prop(body, &inner_env)?;
                let refl = if i == j {
                    PropForm::True
                } else {
                    PropForm::False
                };
                r[i as usize][j as usize] = self.define(PropForm::or(vec![refl, e]));
            }
        }
        // Squaring: ⌈log₂ w⌉ rounds reach all path lengths ≤ w.
        let rounds = (usize::BITS - (w - 1).leading_zeros()) as usize;
        for _ in 0..rounds.max(1) {
            let mut next = vec![vec![PropForm::False; w]; w];
            for i in 0..w {
                for j in 0..w {
                    let mut cases = vec![r[i][j].clone()];
                    for (m, r_m) in r.iter().enumerate() {
                        let _ = m;
                        cases.push(PropForm::and(vec![r[i][m].clone(), r_m[j].clone()]));
                    }
                    next[i][j] = self.define(PropForm::or(cases));
                }
            }
            r = next;
        }
        let fb = self.obj_bits(from, env)?;
        let tb = self.obj_bits(to, env)?;
        let mut cases = Vec::with_capacity(w * w);
        for i in 0..w {
            for j in 0..w {
                cases.push(PropForm::and(vec![
                    fb[i].clone(),
                    tb[j].clone(),
                    r[i][j].clone(),
                ]));
            }
        }
        Ok(PropForm::or(cases))
    }

    /// `tree [f₁, …]`: union graph over non-null nodes has indegree ≤ 1 and
    /// is acyclic (via per-node rank variables: every edge strictly
    /// decreases a ⌈log₂ n⌉-bit rank). Field terms may be updated fields
    /// (`fieldWrite` chains).
    #[allow(clippy::needless_range_loop)] // adjacency-matrix closure indexing
    fn tree_constraint(
        &mut self,
        fields: &[Form],
        env: &FxHashMap<Symbol, u32>,
    ) -> Result<PropForm, GroundError> {
        let w = width(self.n);
        // Edge (i,j) present (i ≥ 1, j ≥ 1) iff some field maps i to j.
        let mut edge = vec![vec![PropForm::False; w]; w];
        for f in fields {
            let m = self.fun_matrix_term(f, env)?;
            for i in 1..w {
                for j in 1..w {
                    edge[i][j] = PropForm::or(vec![edge[i][j].clone(), m[i][j].clone()]);
                }
            }
        }
        let mut parts = Vec::new();
        // Indegree ≤ 1: for each j, at most one incoming (i, field) pair —
        // counting multiplicity across fields requires per-field edges:
        let mut incoming: Vec<Vec<PropForm>> = vec![Vec::new(); w];
        for f in fields {
            let m = self.fun_matrix_term(f, env)?;
            for i in 1..w {
                for (j, inc) in incoming.iter_mut().enumerate().skip(1) {
                    inc.push(m[i][j].clone());
                }
            }
        }
        for inc in incoming.iter().skip(1) {
            for a in 0..inc.len() {
                for b in (a + 1)..inc.len() {
                    parts.push(PropForm::or(vec![
                        PropForm::not(inc[a].clone()),
                        PropForm::not(inc[b].clone()),
                    ]));
                }
            }
        }
        // Acyclicity, exactly (sound in both polarities): compute the
        // strict-path closure of the edge relation with iff-defined layer
        // atoms and require no self-path. An existential witness encoding
        // (ranks) would be unsound under negation.
        let mut r: Vec<Vec<PropForm>> = edge.clone();
        for i in 0..w {
            for j in 0..w {
                r[i][j] = self.define(r[i][j].clone());
            }
        }
        let rounds = (usize::BITS - (w.max(2) - 1).leading_zeros()) as usize;
        for _ in 0..rounds {
            let mut next = vec![vec![PropForm::False; w]; w];
            for i in 0..w {
                for j in 0..w {
                    let mut cases = vec![r[i][j].clone()];
                    for m in 0..w {
                        cases.push(PropForm::and(vec![r[i][m].clone(), r[m][j].clone()]));
                    }
                    next[i][j] = self.define(PropForm::or(cases));
                }
            }
            r = next;
        }
        for (i, row) in r.iter().enumerate() {
            parts.push(PropForm::not(row[i].clone()));
        }
        Ok(PropForm::and(parts))
    }
}

/// Bit-vector comparison `a > b` (most-significant bit first).
#[allow(dead_code)]
fn rank_gt(a: &[PropForm], b: &[PropForm]) -> PropForm {
    // a > b ⇔ ∃k. a_k ∧ ¬b_k ∧ ∀m<k (prefix): a_m = b_m.
    let mut cases = Vec::new();
    for k in 0..a.len() {
        let mut conj = vec![a[k].clone(), PropForm::not(b[k].clone())];
        for m in 0..k {
            conj.push(PropForm::iff(a[m].clone(), b[m].clone()));
        }
        cases.push(PropForm::and(conj));
    }
    PropForm::or(cases)
}

/// Is the formula groundable at the given universe? (Cheap probe used by
/// the dispatcher's hypothesis filtering — runs the encoder, discards the
/// output.)
pub fn in_fragment(form: &Form, sig: &FxHashMap<Symbol, Sort>, universe: u32) -> bool {
    let mut grounder = Grounder::new(universe, sig);
    let env = FxHashMap::default();
    grounder.bool_prop(form, &env).is_ok()
}

/// Search for a model of `form` with `universe` proper objects. A found
/// model is re-checked with the reference evaluator before being returned.
pub fn find_model(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    universe: u32,
) -> Result<Option<Model>, GroundError> {
    match find_model_budgeted(form, sig, universe, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(ModelsFailure::Fragment(e)) => Err(e),
        Err(ModelsFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`find_model`]: the grounding SAT searches and the
/// spurious-model loop consume the caller's budget.
pub fn find_model_budgeted(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    universe: u32,
    budget: &Budget,
) -> Result<Option<Model>, ModelsFailure> {
    let mut grounder = Grounder::new(universe, sig);
    let env = FxHashMap::default();
    let main = grounder
        .bool_prop(form, &env)
        .map_err(ModelsFailure::Fragment)?;
    let mut solver = Solver::new();
    let mut builder = CnfBuilder::new();
    // Constraints may keep growing while encoding (lazy allocation), so
    // assert them after the main formula is built.
    builder.assert(&mut solver, &main);
    for c in &grounder.constraints {
        builder.assert(&mut solver, c);
    }
    // The encoding is designed to be exact, and the test suite checks it on
    // every supported construct — but any residual over-approximation is
    // caught here: a SAT model that fails the reference evaluator is
    // *blocked* and the search continues, so answers stay sound in both
    // directions (a returned model is genuine; `None` still means the
    // encoding — a superset of the real models — is empty).
    const MAX_SPURIOUS: usize = 64;
    for _ in 0..=MAX_SPURIOUS {
        budget.check().map_err(ModelsFailure::Exhausted)?;
        match solver
            .solve_budgeted(budget)
            .map_err(ModelsFailure::Exhausted)?
        {
            SolveResult::Unsat => return Ok(None),
            SolveResult::Sat(model) => {
                let decoded = decode(&grounder, &model, &builder, universe);
                match decoded.eval_bool(form) {
                    Ok(true) => return Ok(Some(decoded)),
                    Ok(false) => {
                        if std::env::var("JAHOB_DEBUG_MODELS").is_ok() {
                            eprintln!("spurious model at universe {universe}:");
                            debug_disagreement(form, &decoded, 0);
                        }
                        // Spurious: block this assignment of the declared
                        // entity atoms and retry.
                        let mut clause: Vec<PropForm> = Vec::new();
                        let mut block = |base: u32, count: u32| {
                            for i in 0..count {
                                let atom = PropForm::atom(base + i);
                                clause.push(if builder.atom_value(&model, base + i) {
                                    PropForm::not(atom)
                                } else {
                                    atom
                                });
                            }
                        };
                        let w = width(universe) as u32;
                        for &b in grounder.atoms.obj_vars.values() {
                            block(b, w);
                        }
                        for &b in grounder.atoms.set_vars.values() {
                            block(b, w);
                        }
                        for &b in grounder.atoms.bool_vars.values() {
                            block(b, 1);
                        }
                        for &b in grounder.atoms.field_vars.values() {
                            block(b, w * w);
                        }
                        for &b in grounder.atoms.pred_vars.values() {
                            block(b, w);
                        }
                        builder.assert(&mut solver, &PropForm::or(clause));
                    }
                    Err(e) => {
                        return err(format!("internal: decoded model not evaluable: {e}"))
                            .map_err(ModelsFailure::Fragment)
                    }
                }
            }
        }
    }
    err("internal: too many spurious models (encoding mismatch)").map_err(ModelsFailure::Fragment)
}

/// Debug aid: descend into conjunction/negation structure printing each
/// piece's reference-evaluator verdict, to localize encoding mismatches.
fn debug_disagreement(form: &Form, model: &Model, depth: usize) {
    let verdict = model.eval_bool(form);
    let indent = "  ".repeat(depth + 1);
    let text = form.to_string();
    let short: String = text.chars().take(140).collect();
    eprintln!("{indent}[{verdict:?}] {short}");
    if depth >= 3 {
        return;
    }
    match form {
        Form::And(ps) | Form::Or(ps) => {
            for p in ps {
                debug_disagreement(p, model, depth + 1);
            }
        }
        Form::Unop(UnOp::Not, a) => debug_disagreement(a, model, depth + 1),
        Form::Binop(BinOp::Implies, a, b) => {
            debug_disagreement(a, model, depth + 1);
            debug_disagreement(b, model, depth + 1);
        }
        _ => {}
    }
}

fn decode(grounder: &Grounder, model: &[bool], builder: &CnfBuilder, universe: u32) -> Model {
    let w = width(universe);
    let mut out = Model::new(universe);
    let bit = |idx: u32| builder.atom_value(model, idx);
    for (&name, &base) in &grounder.atoms.obj_vars {
        let id = (0..w as u32).find(|i| bit(base + i)).unwrap_or(0);
        out.interp.insert(name, Value::Obj(id));
    }
    for (&name, &base) in &grounder.atoms.set_vars {
        let set: BTreeSet<Key> = (0..w as u32)
            .filter(|i| bit(base + i))
            .map(Key::Obj)
            .collect();
        out.interp.insert(name, Value::Set(set));
    }
    for (&name, &base) in &grounder.atoms.bool_vars {
        out.interp.insert(name, Value::Bool(bit(base)));
    }
    for (&name, &base) in &grounder.atoms.field_vars {
        let table: Vec<u32> = (0..w)
            .map(|i| {
                (0..w as u32)
                    .find(|j| bit(base + (i as u32) * w as u32 + j))
                    .unwrap_or(0)
            })
            .collect();
        out.set_obj_field(name.as_str(), &table);
    }
    for (&name, &base) in &grounder.atoms.pred_vars {
        // obj => bool predicate as a table.
        let mut map = FxHashMap::default();
        for i in 0..w as u32 {
            map.insert(vec![Key::Obj(i)], Value::Bool(bit(base + i)));
        }
        out.interp.insert(
            name,
            Value::Fun(Rc::new(jahob_logic::model::FunV::Table {
                arity: 1,
                map,
                default: Box::new(Value::Bool(false)),
            })),
        );
    }
    out
}

/// Search for a counter-model of `goal` within the bound.
pub fn refute(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    universe: u32,
) -> Result<Option<Model>, GroundError> {
    find_model(&Form::not(goal.clone()), sig, universe)
}

/// Budgeted [`refute`].
pub fn refute_budgeted(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    universe: u32,
    budget: &Budget,
) -> Result<Option<Model>, ModelsFailure> {
    jahob_util::chaos::boundary("models.refute", budget).map_err(ModelsFailure::Exhausted)?;
    find_model_budgeted(&Form::not(goal.clone()), sig, universe, budget)
}

/// Verdict of the bounded-validity check.
#[derive(Clone, Debug)]
pub enum BmcVerdict {
    /// No counter-model up to the bound. For goals in the ground
    /// list-fragment this implies validity (small-model property); the
    /// bound is recorded so reports stay honest.
    ValidUpTo(u32),
    /// A genuine counter-model (verified by the reference evaluator).
    CounterModel(Box<Model>),
}

/// Heuristic small-model bound: number of distinct ground object-denoting
/// names plus slack for list positions the terms can distinguish.
pub fn small_model_bound(goal: &Form, sig: &FxHashMap<Symbol, Sort>) -> u32 {
    let mut count = 0u32;
    for v in goal.free_vars() {
        match sig.get(&v) {
            Some(Sort::Obj) => count += 1,
            Some(Sort::Set(_)) => count += 1,
            _ => {}
        }
    }
    (2 * count + 2).clamp(3, 8)
}

/// Bounded validity: refute up to the small-model bound.
pub fn bmc_valid(goal: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<BmcVerdict, GroundError> {
    let bound = small_model_bound(goal, sig);
    bmc_valid_with_bound(goal, sig, bound)
}

/// Bounded validity at an explicit bound.
pub fn bmc_valid_with_bound(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    bound: u32,
) -> Result<BmcVerdict, GroundError> {
    match bmc_valid_with_bound_budgeted(goal, sig, bound, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(ModelsFailure::Fragment(e)) => Err(e),
        Err(ModelsFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`bmc_valid_with_bound`]: each universe size's model search
/// runs against the caller's budget, so a deadline can stop the climb.
pub fn bmc_valid_with_bound_budgeted(
    goal: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    bound: u32,
    budget: &Budget,
) -> Result<BmcVerdict, ModelsFailure> {
    jahob_util::chaos::boundary("models.bmc-validity", budget).map_err(ModelsFailure::Exhausted)?;
    for universe in 1..=bound {
        budget.check().map_err(ModelsFailure::Exhausted)?;
        if let Some(model) = refute_budgeted(goal, sig, universe, budget)? {
            return Ok(BmcVerdict::CounterModel(Box::new(model)));
        }
    }
    Ok(BmcVerdict::ValidUpTo(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn sig() -> FxHashMap<Symbol, Sort> {
        [
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("z", Sort::Obj),
            ("first", Sort::Obj),
            ("S", Sort::objset()),
            ("T", Sort::objset()),
            ("b", Sort::Bool),
            ("next", Sort::field(Sort::Obj)),
            ("data", Sort::field(Sort::Obj)),
            ("p", Sort::Fun(vec![Sort::Obj], Box::new(Sort::Bool))),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect()
    }

    fn has_model(src: &str, n: u32) -> bool {
        find_model(&form(src), &sig(), n)
            .unwrap_or_else(|e| panic!("{src:?}: {e}"))
            .is_some()
    }

    #[test]
    fn budget_stops_bounded_search() {
        let goal = form("x ~= null & y ~= null & z ~= null & x ~= y & y ~= z & x ~= z");
        let starved = Budget::with_fuel(1);
        assert_eq!(
            find_model_budgeted(&goal, &sig(), 3, &starved)
                .map(|m| m.is_some())
                .map_err(|e| matches!(e, ModelsFailure::Exhausted(Exhaustion::Fuel))),
            Err(true)
        );
        let roomy = Budget::with_fuel(50_000_000);
        assert_eq!(
            find_model_budgeted(&goal, &sig(), 3, &roomy).map(|m| m.is_some()),
            Ok(true)
        );
    }

    #[test]
    fn object_equalities() {
        assert!(has_model("x = y", 2));
        assert!(has_model("x ~= y", 2));
        assert!(!has_model("x ~= x", 2));
        assert!(has_model("x = null", 1));
        assert!(has_model("x ~= null & y ~= null & x ~= y", 2));
        // Three distinct non-null objects need universe ≥ 3.
        assert!(!has_model(
            "x ~= null & y ~= null & z ~= null & x ~= y & y ~= z & x ~= z",
            2
        ));
        assert!(has_model(
            "x ~= null & y ~= null & z ~= null & x ~= y & y ~= z & x ~= z",
            3
        ));
    }

    #[test]
    fn sets_and_membership() {
        assert!(has_model("x : S & x ~: T", 2));
        assert!(!has_model("x : S & S = {}", 2));
        assert!(has_model("S Un T = {x} & x ~= null", 2));
        assert!(!has_model("x : S Int T & x ~: S", 3));
    }

    #[test]
    fn field_reasoning() {
        assert!(has_model("x..next = y & y..next = x & x ~= y", 2));
        assert!(!has_model("x..next = y & x..next = z & y ~= z", 3));
        // fieldWrite semantics.
        assert!(!has_model("fieldWrite next x y x ~= y", 3));
        assert!(has_model("x ~= z & fieldWrite next x y z = z..next", 3));
    }

    #[test]
    fn quantifiers_expand() {
        assert!(has_model("ALL o. o : S", 2));
        assert!(!has_model("ALL o. o : S & o ~: S", 1));
        assert!(has_model("EX o. o ~= null & o : S", 1));
        assert!(!has_model("(EX o. o : S) & S = {}", 2));
    }

    #[test]
    fn comprehensions() {
        // S = {o. o ~= null} forces S to be all proper objects.
        assert!(has_model("S = {o. o ~= null} & x ~= null & x : S", 2));
        assert!(!has_model("S = {o. o ~= null} & x ~= null & x ~: S", 2));
    }

    #[test]
    fn rtrancl_grounding() {
        // Reachability holds along next chains.
        assert!(has_model(
            "x ~= null & y ~= null & x ~= y & rtrancl_pt (% a c. a..next = c) x y",
            2
        ));
        // x reaches y but not conversely in an acyclic chain.
        assert!(has_model(
            "rtrancl_pt (% a c. a..next = c) x y & \
             ~(rtrancl_pt (% a c. a..next = c) y x) & tree [next]",
            3
        ));
        // Reflexive always.
        assert!(!has_model("~(rtrancl_pt (% a c. a..next = c) x x)", 2));
    }

    #[test]
    fn tree_constraint_works() {
        // A cycle violates tree [next]: next x = y, next y = x.
        assert!(!has_model(
            "x ~= null & y ~= null & x..next = y & y..next = x & tree [next]",
            3
        ));
        // Self-loop violates.
        assert!(!has_model("x ~= null & x..next = x & tree [next]", 2));
        // Sharing violates: two nodes point at z.
        assert!(!has_model(
            "x ~= null & y ~= null & z ~= null & x ~= y & \
             x..next = z & y..next = z & tree [next]",
            3
        ));
        // A plain chain is a tree.
        assert!(has_model(
            "x ~= null & y ~= null & x ~= y & x..next = y & y..next = null & tree [next]",
            2
        ));
    }

    #[test]
    fn bmc_validity_verdicts() {
        let s = sig();
        // Valid: congruence.
        match bmc_valid(&form("x = y --> x..next = y..next"), &s).unwrap() {
            BmcVerdict::ValidUpTo(_) => {}
            BmcVerdict::CounterModel(m) => panic!("spurious counter-model {m:?}"),
        }
        // Invalid with a genuine counter-model.
        match bmc_valid(&form("x..next = y..next --> x = y"), &s).unwrap() {
            BmcVerdict::CounterModel(_) => {}
            BmcVerdict::ValidUpTo(b) => panic!("should find counter-model within {b}"),
        }
    }

    #[test]
    fn figure1_add_method_shape() {
        // The heart of List.add's VC: prepending a fresh node grows the
        // reachable content by exactly the new element. Ground version over
        // the bounded heap.
        let s = sig();
        let goal = form(
            "tree [next] & first ~= null & x ~= null & x ~= first & x..next = null \
             --> rtrancl_pt (% a c. fieldWrite next x first a = c) x first",
        );
        match bmc_valid_with_bound(&goal, &s, 4).unwrap() {
            BmcVerdict::ValidUpTo(_) => {}
            BmcVerdict::CounterModel(m) => panic!("spurious counter-model: {m:?}"),
        }
    }

    #[test]
    fn predicates() {
        assert!(has_model("p x & ~(p y)", 2));
        assert!(!has_model("p x & ~(p x)", 2));
        assert!(!has_model("x = y & p x & ~(p y)", 2));
    }

    #[test]
    fn counterexamples_are_genuine() {
        // Whatever model comes back must satisfy the formula per the
        // reference evaluator (find_model checks internally; verify the
        // plumbing end to end on a nontrivial formula).
        let s = sig();
        let f = form("x ~= null & x : S & S <= T & rtrancl_pt (% a c. a..next = c) first x");
        let m = find_model(&f, &s, 3).unwrap().expect("satisfiable");
        assert_eq!(m.eval_bool(&f), Ok(true));
    }

    #[test]
    fn rejects_unboundable() {
        let s = sig();
        assert!(find_model(&form("card S = 2"), &s, 2).is_err());
        assert!(find_model(&form("k + 1 <= k2"), &s, 2).is_err());
    }
}
