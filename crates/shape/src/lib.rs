//! `jahob-shape`: symbolic shape analysis and loop-invariant inference.
//!
//! The paper: "The system can infer loop invariants using new symbolic shape
//! analysis" (abstract; [65] Boolean heaps, [79] Wies' symbolic shape
//! analysis) and "it is also able to leverage loop invariant inference
//! engines, including speculative engines that may generate incorrect loop
//! invariants. Any incorrect loop invariants would be detected and rejected
//! during the verification condition analysis" (§2.4).
//!
//! Two engines:
//!
//! * [`houdini`] — the speculative candidate-refutation scheme (Flanagan &
//!   Leino [21], cited in §4): start from a finite candidate vocabulary,
//!   repeatedly drop candidates not preserved by the loop body until a
//!   fixpoint; the surviving conjunction is inductive *by construction of
//!   the check*, and the final verification run re-checks it anyway.
//! * [`bool_heap`] — a Boolean-heap abstract domain: an abstract state is a
//!   set of bit-vectors over heap predicates; the abstract post is computed
//!   with an entailment oracle, exactly the "decision procedures drive the
//!   abstract transformer" idea of [65]/[84].

use jahob_logic::Form;
use jahob_util::BitSet;
use std::collections::BTreeSet;

/// Houdini-style candidate pruning.
///
/// `preserved(kept, candidate)` must answer: assuming the conjunction of
/// `kept` holds before an arbitrary loop iteration (plus whatever fixed
/// hypotheses the caller bakes in), does `candidate` hold after it? The
/// caller supplies a *sound* oracle ("yes" only when provable); the result
/// is the greatest inductive subset of the candidates, reached in at most
/// `candidates.len()` rounds.
///
/// `initially(candidate)` filters candidates that do not even hold on loop
/// entry.
pub fn houdini(
    candidates: &[Form],
    initially: &mut dyn FnMut(&Form) -> bool,
    preserved: &mut dyn FnMut(&[Form], &Form) -> bool,
) -> Vec<Form> {
    let mut kept: Vec<Form> = candidates
        .iter()
        .filter(|c| initially(c))
        .cloned()
        .collect();
    loop {
        let mut next = Vec::with_capacity(kept.len());
        let mut dropped = false;
        for c in &kept {
            if preserved(&kept, c) {
                next.push(c.clone());
            } else {
                dropped = true;
            }
        }
        if !dropped {
            return next;
        }
        kept = next;
    }
}

/// Candidate vocabulary generator: equalities, disequalities and
/// memberships over the given object terms and set terms, plus the caller's
/// seed formulas. This mirrors the fixed abstraction predicates of
/// predicate-abstraction shape analyses.
pub fn candidate_vocabulary(obj_terms: &[Form], set_terms: &[Form], seeds: &[Form]) -> Vec<Form> {
    let mut out: Vec<Form> = seeds.to_vec();
    for (i, a) in obj_terms.iter().enumerate() {
        out.push(Form::ne(a.clone(), Form::Null));
        out.push(Form::eq(a.clone(), Form::Null));
        for b in obj_terms.iter().skip(i + 1) {
            out.push(Form::eq(a.clone(), b.clone()));
            out.push(Form::ne(a.clone(), b.clone()));
        }
        for s in set_terms {
            out.push(Form::elem(a.clone(), s.clone()));
            out.push(Form::not(Form::elem(a.clone(), s.clone())));
        }
    }
    for (i, s) in set_terms.iter().enumerate() {
        out.push(Form::eq(s.clone(), Form::EmptySet));
        for t in set_terms.iter().skip(i + 1) {
            out.push(Form::binop(jahob_logic::BinOp::Inter, s.clone(), t.clone()));
        }
    }
    // The Inter entries above are set terms, not formulas — turn them into
    // disjointness candidates.
    out = out
        .into_iter()
        .map(|f| match f {
            Form::Binop(jahob_logic::BinOp::Inter, _, _) => Form::eq(f, Form::EmptySet),
            other => other,
        })
        .collect();
    out.retain(|f| !matches!(f, Form::BoolLit(_)));
    out.dedup();
    out
}

/// Boolean-heap abstract domain over a fixed predicate vector.
///
/// An abstract element is a set of *cubes*; each cube is a valuation of the
/// predicates (bit i set = predicate i true) describing one class of
/// concrete states. `⊥` is the empty set; join is union; the order is set
/// inclusion.
pub mod bool_heap {
    use super::*;

    /// An abstract element.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct AbsState {
        pub num_preds: usize,
        pub cubes: BTreeSet<BitSet>,
    }

    impl AbsState {
        pub fn bottom(num_preds: usize) -> AbsState {
            AbsState {
                num_preds,
                cubes: BTreeSet::new(),
            }
        }

        pub fn top(num_preds: usize) -> AbsState {
            let mut cubes = BTreeSet::new();
            for mask in 0u32..(1 << num_preds) {
                let mut b = BitSet::new(num_preds);
                for i in 0..num_preds {
                    if mask & (1 << i) != 0 {
                        b.insert(i);
                    }
                }
                cubes.insert(b);
            }
            AbsState { num_preds, cubes }
        }

        pub fn join(&self, other: &AbsState) -> AbsState {
            assert_eq!(self.num_preds, other.num_preds);
            AbsState {
                num_preds: self.num_preds,
                cubes: self.cubes.union(&other.cubes).cloned().collect(),
            }
        }

        pub fn leq(&self, other: &AbsState) -> bool {
            self.cubes.is_subset(&other.cubes)
        }

        /// The formula a cube denotes: the conjunction of predicates and
        /// negated predicates.
        pub fn cube_formula(preds: &[Form], cube: &BitSet) -> Form {
            Form::and(
                preds
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        if cube.contains(i) {
                            p.clone()
                        } else {
                            Form::not(p.clone())
                        }
                    })
                    .collect(),
            )
        }

        /// Concretization: disjunction of cube formulas.
        pub fn gamma(&self, preds: &[Form]) -> Form {
            Form::or(
                self.cubes
                    .iter()
                    .map(|c| Self::cube_formula(preds, c))
                    .collect(),
            )
        }
    }

    /// Abstract post: for each source cube, include every target cube whose
    /// formula is *not refuted* by the transition oracle.
    ///
    /// `may_transition(pre_cube_formula, post_cube_formula)` must
    /// over-approximate: return `true` unless the oracle can *prove* the
    /// transition impossible. This is the prover-driven transformer of
    /// Boolean heaps: precision comes entirely from the oracle.
    pub fn abstract_post(
        state: &AbsState,
        preds: &[Form],
        may_transition: &mut dyn FnMut(&Form, &Form) -> bool,
    ) -> AbsState {
        let mut out = AbsState::bottom(state.num_preds);
        let all = AbsState::top(state.num_preds);
        for pre in &state.cubes {
            let pre_f = AbsState::cube_formula(preds, pre);
            for post in &all.cubes {
                let post_f = AbsState::cube_formula(preds, post);
                if may_transition(&pre_f, &post_f) {
                    out.cubes.insert(post.clone());
                }
            }
        }
        out
    }

    /// Least fixpoint from an initial abstract state.
    pub fn lfp(
        init: &AbsState,
        preds: &[Form],
        may_transition: &mut dyn FnMut(&Form, &Form) -> bool,
    ) -> AbsState {
        let mut current = init.clone();
        loop {
            let post = abstract_post(&current, preds, may_transition);
            let next = current.join(&post);
            if next.leq(&current) {
                return current;
            }
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;
    use jahob_presburger::translate::decide_valid;

    /// A LIA oracle for the integer tests: `kept ∧ body-relation → cand'`.
    fn lia_preserved(kept: &[Form], cand: &Form, relation: &Form) -> bool {
        // Candidates are over `g`; the primed state is `g2`.
        let primed = cand.subst1(jahob_util::Symbol::intern("g"), &Form::v("g2"));
        let hyp = Form::and(
            kept.iter()
                .cloned()
                .chain(std::iter::once(relation.clone()))
                .collect(),
        );
        decide_valid(&Form::implies(hyp, primed)).unwrap_or(false)
    }

    #[test]
    fn houdini_finds_inductive_subset() {
        // Loop: g := g + 1 while g < 10. Candidates over g.
        let relation = form("g2 = g + 1 & g < 10");
        let candidates = vec![
            form("0 <= g"),  // inductive (given entry g = 0)
            form("g <= 10"), // inductive: g < 10 before step → g+1 ≤ 10
            form("g <= 5"),  // not inductive (g = 5 → 6)
            form("g = 0"),   // not inductive
        ];
        let kept = houdini(
            &candidates,
            &mut |c| decide_valid(&Form::implies(form("g = 0"), c.clone())).unwrap_or(false),
            &mut |kept, c| lia_preserved(kept, c, &relation),
        );
        assert!(kept.contains(&form("0 <= g")), "{kept:?}");
        assert!(kept.contains(&form("g <= 10")), "{kept:?}");
        assert!(!kept.contains(&form("g <= 5")), "{kept:?}");
        assert!(!kept.contains(&form("g = 0")), "{kept:?}");
    }

    #[test]
    fn houdini_mutual_dependence() {
        // 0 ≤ g is needed to keep g ≤ 10 if the relation decrements below
        // zero... construct a case where dropping one forces dropping
        // another: relation g2 = g + 1 with guard g <= 9 keeps "g <= 10"
        // only while the guard candidate... use candidates that reference
        // each other through the kept-set hypothesis.
        let relation = form("g2 = g + 1 & g <= h");
        let candidates = vec![form("g <= h + 1"), form("h = 9")];
        // h is not modified, so h = 9 is trivially preserved; g ≤ h + 1
        // needs the guard.
        let kept = houdini(&candidates, &mut |_| true, &mut |kept, c| {
            let primed = c.subst1(jahob_util::Symbol::intern("g"), &Form::v("g2"));
            let hyp = Form::and(
                kept.iter()
                    .cloned()
                    .chain(std::iter::once(relation.clone()))
                    .collect(),
            );
            decide_valid(&Form::implies(hyp, primed)).unwrap_or(false)
        });
        assert_eq!(kept.len(), 2, "{kept:?}");
    }

    #[test]
    fn vocabulary_generation() {
        let objs = vec![form("x"), form("y")];
        let sets = vec![form("S"), form("T")];
        let vocab = candidate_vocabulary(&objs, &sets, &[form("x : S")]);
        assert!(vocab.contains(&form("x ~= y")));
        assert!(vocab.contains(&form("x : S")));
        assert!(vocab.contains(&form("y ~: T")));
        assert!(vocab.contains(&form("S Int T = {}")));
        assert!(vocab.contains(&form("S = {}")));
    }

    #[test]
    fn bool_heap_domain_laws() {
        use bool_heap::*;
        let bot = AbsState::bottom(2);
        let top = AbsState::top(2);
        assert!(bot.leq(&top));
        assert_eq!(top.cubes.len(), 4);
        assert_eq!(bot.join(&top), top);
        let preds = vec![form("p"), form("q")];
        let gamma_top = top.gamma(&preds);
        // γ(⊤) is a tautology over p, q.
        for bits in 0..4u32 {
            let mut m = jahob_util::FxHashMap::default();
            m.insert(
                jahob_util::Symbol::intern("p"),
                Form::BoolLit(bits & 1 != 0),
            );
            m.insert(
                jahob_util::Symbol::intern("q"),
                Form::BoolLit(bits & 2 != 0),
            );
            let v = jahob_logic::transform::simplify(&gamma_top.subst(&m));
            assert_eq!(v, Form::tt());
        }
    }

    #[test]
    fn bool_heap_fixpoint_with_lia_oracle() {
        use bool_heap::*;
        // One predicate: p = "0 <= g". Transition g := g + 1.
        let preds = vec![form("0 <= g")];
        let mut init = AbsState::bottom(1);
        let mut cube = BitSet::new(1);
        cube.insert(0); // start with p true (g = 0).
        init.cubes.insert(cube);
        let mut oracle = |pre: &Form, post: &Form| {
            // May transition unless provably impossible under g2 = g + 1.
            let post2 = post.subst1(jahob_util::Symbol::intern("g"), &Form::v("g2"));
            let impossible = decide_valid(&Form::implies(
                Form::and(vec![pre.clone(), form("g2 = g + 1")]),
                Form::not(post2),
            ))
            .unwrap_or(false);
            !impossible
        };
        let fix = lfp(&init, &preds, &mut oracle);
        // From 0 ≤ g and g := g+1, ¬(0 ≤ g) is unreachable: the fixpoint
        // keeps exactly the p-true cube.
        assert_eq!(fix.cubes.len(), 1);
        assert!(fix.cubes.iter().next().unwrap().contains(0));
    }
}
