//! `jahob-hol`: an LCF-style proof kernel for the specification logic — the
//! Isabelle substitute.
//!
//! Jahob's specification language is "a subset of Isabelle" and the system
//! "incorporates interfaces to the Isabelle interactive theorem prover"
//! (§3). Linking Isabelle is out of scope for a from-scratch reproduction,
//! so this crate provides the part Jahob actually relied on: a *trusted
//! kernel* in which theorems can only be produced by a fixed set of
//! inference rules, plus a small goal package with tactics that automate the
//! structural reasoning Isabelle's `auto` handled for Jahob's residual
//! obligations.
//!
//! The kernel datatype [`Thm`] has no public constructor: every `Thm` value
//! witnesses a natural-deduction derivation of `hypotheses ⊢ conclusion`.
//! Soundness of everything above the kernel (tactics, automation) reduces to
//! the ~10 rules below — the LCF discipline.

use jahob_logic::transform::simplify;
use jahob_logic::{BinOp, Form};
use jahob_util::budget::{Budget, Exhaustion};
use std::fmt;

/// A theorem `hyps ⊢ concl`. Constructible only through inference rules.
#[derive(Clone, Debug, PartialEq)]
pub struct Thm {
    hyps: Vec<Form>,
    concl: Form,
}

impl fmt::Display for Thm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.hyps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, " ⊢ {}", self.concl)
    }
}

fn union_hyps(a: &[Form], b: &[Form]) -> Vec<Form> {
    let mut out = a.to_vec();
    for h in b {
        if !out.contains(h) {
            out.push(h.clone());
        }
    }
    out
}

impl Thm {
    pub fn hyps(&self) -> &[Form] {
        &self.hyps
    }

    pub fn concl(&self) -> &Form {
        &self.concl
    }

    /// Is this a theorem of `φ` with no hypotheses?
    pub fn proves(&self, phi: &Form) -> bool {
        self.hyps.is_empty() && &self.concl == phi
    }

    // ---- the kernel rules ---------------------------------------------------

    /// `φ ⊢ φ`.
    pub fn assume(phi: Form) -> Thm {
        Thm {
            hyps: vec![phi.clone()],
            concl: phi,
        }
    }

    /// `⊢ t = t` (reflexivity; also usable at bool as `φ = φ`).
    pub fn refl(t: Form) -> Thm {
        Thm {
            hyps: Vec::new(),
            concl: Form::Binop(BinOp::Eq, t.clone().into(), t.into()),
        }
    }

    /// Discharge: from `Γ, φ ⊢ ψ` infer `Γ ⊢ φ → ψ`.
    pub fn implies_intro(self, phi: &Form) -> Thm {
        let hyps = self.hyps.into_iter().filter(|h| h != phi).collect();
        Thm {
            hyps,
            concl: Form::implies(phi.clone(), self.concl),
        }
    }

    /// Modus ponens: from `Γ ⊢ φ → ψ` and `Δ ⊢ φ` infer `Γ∪Δ ⊢ ψ`.
    pub fn implies_elim(self, arg: &Thm) -> Result<Thm, KernelError> {
        match &self.concl {
            Form::Binop(BinOp::Implies, a, b) if a.as_ref() == &arg.concl => Ok(Thm {
                hyps: union_hyps(&self.hyps, &arg.hyps),
                concl: b.as_ref().clone(),
            }),
            _ => Err(KernelError(format!(
                "implies_elim: `{}` does not apply to `{}`",
                self.concl, arg.concl
            ))),
        }
    }

    /// Conjunction introduction.
    pub fn conj_intro(self, other: Thm) -> Thm {
        Thm {
            hyps: union_hyps(&self.hyps, &other.hyps),
            concl: Form::and(vec![self.concl, other.concl]),
        }
    }

    /// Conjunction elimination: project the i-th conjunct.
    pub fn conj_elim(self, index: usize) -> Result<Thm, KernelError> {
        match &self.concl {
            Form::And(parts) if index < parts.len() => Ok(Thm {
                hyps: self.hyps,
                concl: parts[index].clone(),
            }),
            _ => Err(KernelError(format!(
                "conj_elim: `{}` has no conjunct {index}",
                self.concl
            ))),
        }
    }

    /// Disjunction introduction: `Γ ⊢ φᵢ` gives `Γ ⊢ φ₁ ∨ … ∨ φₙ`.
    pub fn disj_intro(self, disjuncts: Vec<Form>) -> Result<Thm, KernelError> {
        if !disjuncts.contains(&self.concl) {
            return Err(KernelError(format!(
                "disj_intro: `{}` not among the disjuncts",
                self.concl
            )));
        }
        Ok(Thm {
            hyps: self.hyps,
            concl: Form::or(disjuncts),
        })
    }

    /// Case analysis: from `Γ ⊢ φ ∨ ψ`, `Δ, φ ⊢ χ`, `Ε, ψ ⊢ χ` infer χ.
    pub fn disj_elim(self, left: Thm, right: Thm) -> Result<Thm, KernelError> {
        let Form::Or(parts) = &self.concl else {
            return Err(KernelError(format!(
                "disj_elim: `{}` is not a disjunction",
                self.concl
            )));
        };
        if parts.len() != 2 || left.concl != right.concl {
            return Err(KernelError("disj_elim: shape mismatch".into()));
        }
        if !left.hyps.contains(&parts[0]) || !right.hyps.contains(&parts[1]) {
            return Err(KernelError(
                "disj_elim: branches must assume their disjunct".into(),
            ));
        }
        let lh: Vec<Form> = left
            .hyps
            .iter()
            .filter(|h| **h != parts[0])
            .cloned()
            .collect();
        let rh: Vec<Form> = right
            .hyps
            .iter()
            .filter(|h| **h != parts[1])
            .cloned()
            .collect();
        Ok(Thm {
            hyps: union_hyps(&union_hyps(&self.hyps, &lh), &rh),
            concl: left.concl,
        })
    }

    /// Semantic simplification rule: `Γ ⊢ φ` yields `Γ ⊢ simplify(φ)` and
    /// vice versa. `simplify` is equivalence-preserving by construction (it
    /// is the workhorse the rest of the workspace property-tests against the
    /// model evaluator), so admitting it as a kernel rule is the analogue of
    /// Isabelle's `simp` being part of the trusted basis Jahob used.
    pub fn by_simplification(phi: Form) -> Result<Thm, KernelError> {
        match simplify(&phi) {
            Form::BoolLit(true) => Ok(Thm {
                hyps: Vec::new(),
                concl: phi,
            }),
            other => Err(KernelError(format!(
                "simplification left a residue: `{other}`"
            ))),
        }
    }
}

/// Kernel rule misapplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

// ---- the goal package --------------------------------------------------------

/// A backward proof state: goals to discharge, each with local hypotheses.
#[derive(Clone, Debug)]
pub struct Goal {
    pub hyps: Vec<Form>,
    pub target: Form,
}

/// Proof search outcome for the `auto` tactic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TacticResult {
    Proved,
    Stuck(Vec<String>),
}

/// A simple `auto`: intro rules for `→`/`∧`/`ALL`-free structure, assumption
/// matching, simplification, and shallow case splits on hypothesis
/// disjunctions. Complete for the propositional structure of Jahob's
/// residual obligations; anything deeper is left to the decision procedures.
///
/// Search is budgeted: case-splitting over many disjunctive hypotheses is
/// exponential, and `auto` is the cheap front of a portfolio — it must fail
/// fast rather than search hard.
pub fn auto(goal: &Goal, depth: u32) -> TacticResult {
    auto_governed(goal, depth, &Budget::unlimited()).expect("unlimited budget cannot be exhausted")
}

/// Budgeted [`auto`]: the same search, but every expansion also charges the
/// caller's [`Budget`] so a portfolio deadline can cut the tactic short. The
/// internal 800-step fail-fast fuel is independent of the caller's budget
/// and still yields `Stuck`, not exhaustion.
pub fn auto_governed(
    goal: &Goal,
    depth: u32,
    governor: &Budget,
) -> Result<TacticResult, Exhaustion> {
    let mut budget = 800usize;
    auto_budgeted(goal, depth, &mut budget, governor)
}

fn auto_budgeted(
    goal: &Goal,
    depth: u32,
    budget: &mut usize,
    governor: &Budget,
) -> Result<TacticResult, Exhaustion> {
    governor.check()?;
    if *budget == 0 {
        return Ok(TacticResult::Stuck(vec!["budget exhausted".into()]));
    }
    *budget -= 1;
    let target = simplify(&Form::implies(
        Form::and(goal.hyps.clone()),
        goal.target.clone(),
    ));
    if target == Form::tt() {
        return Ok(TacticResult::Proved);
    }
    if depth == 0 {
        return Ok(TacticResult::Stuck(vec![format!(
            "depth limit at `{target}`"
        )]));
    }
    fn flatten_hyp(h: Form, out: &mut Vec<Form>) {
        match h {
            Form::And(parts) => {
                for p in parts {
                    flatten_hyp(p, out);
                }
            }
            other => out.push(other),
        }
    }
    let mut hyps = Vec::new();
    for h in &goal.hyps {
        flatten_hyp(h.clone(), &mut hyps);
    }
    let mut g = Goal {
        hyps,
        target: goal.target.clone(),
    };
    // intro: → moves into hypotheses (conjunctions flattened); ∧ splits.
    loop {
        match g.target.clone() {
            Form::Binop(BinOp::Implies, a, b) => {
                flatten_hyp(a.as_ref().clone(), &mut g.hyps);
                g.target = b.as_ref().clone();
            }
            Form::And(parts) => {
                let mut stuck = Vec::new();
                for p in parts {
                    let sub = Goal {
                        hyps: g.hyps.clone(),
                        target: p,
                    };
                    if let TacticResult::Stuck(mut s) =
                        auto_budgeted(&sub, depth - 1, budget, governor)?
                    {
                        stuck.append(&mut s);
                    }
                }
                return Ok(if stuck.is_empty() {
                    TacticResult::Proved
                } else {
                    TacticResult::Stuck(stuck)
                });
            }
            _ => break,
        }
    }
    // Forward chaining: modus ponens over the hypotheses to saturation.
    // Consequents are flattened *before* the freshness check: a conjunctive
    // consequent `x & y` enters the hypotheses as its parts, never as
    // itself, so testing `contains(b)` on the unflattened form would
    // re-derive it every round and the saturation loop would never reach
    // its fixpoint (hypotheses growing without bound — the tactic hangs).
    loop {
        governor.check()?;
        let mut derived: Vec<Form> = Vec::new();
        for h in &g.hyps {
            if let Form::Binop(BinOp::Implies, a, b) = h {
                if !g.hyps.contains(a) {
                    continue;
                }
                let mut parts = Vec::new();
                flatten_hyp(b.as_ref().clone(), &mut parts);
                for p in parts {
                    if !g.hyps.contains(&p) && !derived.contains(&p) {
                        derived.push(p);
                    }
                }
            }
        }
        if derived.is_empty() {
            break;
        }
        g.hyps.append(&mut derived);
    }
    // assumption / simplification.
    if g.hyps.contains(&g.target) {
        return Ok(TacticResult::Proved);
    }
    let closed = simplify(&Form::implies(Form::and(g.hyps.clone()), g.target.clone()));
    if closed == Form::tt() {
        return Ok(TacticResult::Proved);
    }
    // Case split on a disjunctive hypothesis.
    if let Some(pos) = g.hyps.iter().position(|h| matches!(h, Form::Or(_))) {
        let Form::Or(parts) = g.hyps[pos].clone() else {
            unreachable!()
        };
        let mut rest = g.hyps.clone();
        rest.remove(pos);
        let mut stuck = Vec::new();
        for p in parts {
            let mut hyps = rest.clone();
            hyps.push(p);
            let sub = Goal {
                hyps,
                target: g.target.clone(),
            };
            if let TacticResult::Stuck(mut s) = auto_budgeted(&sub, depth - 1, budget, governor)? {
                stuck.append(&mut s);
            }
        }
        return Ok(if stuck.is_empty() {
            TacticResult::Proved
        } else {
            TacticResult::Stuck(stuck)
        });
    }
    // Goal disjunction: try each disjunct.
    if let Form::Or(parts) = &g.target {
        for p in parts {
            let sub = Goal {
                hyps: g.hyps.clone(),
                target: p.clone(),
            };
            if auto_budgeted(&sub, depth - 1, budget, governor)? == TacticResult::Proved {
                return Ok(TacticResult::Proved);
            }
        }
    }
    Ok(TacticResult::Stuck(vec![format!(
        "cannot close `{}`",
        g.target
    )]))
}

/// Convenience: is `φ` provable by `auto` from no hypotheses?
pub fn auto_proves(phi: &Form) -> bool {
    auto(
        &Goal {
            hyps: Vec::new(),
            target: phi.clone(),
        },
        16,
    ) == TacticResult::Proved
}

/// Budgeted [`auto_proves`], for portfolio callers that must honor a
/// per-obligation deadline.
pub fn auto_proves_governed(phi: &Form, governor: &Budget) -> Result<bool, Exhaustion> {
    jahob_util::chaos::boundary("hol.auto", governor)?;
    Ok(auto_governed(
        &Goal {
            hyps: Vec::new(),
            target: phi.clone(),
        },
        16,
        governor,
    )? == TacticResult::Proved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    #[test]
    fn kernel_identity() {
        // ⊢ p → p via assume + implies_intro.
        let p = form("p");
        let thm = Thm::assume(p.clone()).implies_intro(&p);
        assert!(thm.proves(&form("p --> p")));
    }

    #[test]
    fn kernel_modus_ponens() {
        let imp = Thm::assume(form("p --> q"));
        let p = Thm::assume(form("p"));
        let q = imp.implies_elim(&p).unwrap();
        assert_eq!(q.concl(), &form("q"));
        assert_eq!(q.hyps().len(), 2);
    }

    #[test]
    fn kernel_conjunction() {
        let a = Thm::assume(form("a"));
        let b = Thm::assume(form("b"));
        let ab = a.conj_intro(b);
        assert_eq!(ab.concl(), &form("a & b"));
        let a2 = ab.clone().conj_elim(0).unwrap();
        assert_eq!(a2.concl(), &form("a"));
        assert!(ab.conj_elim(5).is_err());
    }

    #[test]
    fn kernel_disjunction() {
        let a = Thm::assume(form("a"));
        let ab = a.disj_intro(vec![form("a"), form("b")]).unwrap();
        assert_eq!(ab.concl(), &form("a | b"));
        // Case analysis: a ∨ a ⊢ a.
        let d = Thm::assume(form("a | b"));
        let left = Thm::assume(form("a"));
        let right = Thm::assume(form("b"))
            .disj_intro(vec![form("a"), form("b")])
            .unwrap();
        // Right branch must conclude the same as left; craft b ⊢ a is not
        // derivable, so check the error path instead.
        assert!(d.disj_elim(left, right).is_err());
    }

    #[test]
    fn kernel_rules_cannot_forge() {
        // implies_elim with mismatched antecedent fails.
        let imp = Thm::assume(form("p --> q"));
        let r = Thm::assume(form("r"));
        assert!(imp.implies_elim(&r).is_err());
    }

    #[test]
    fn simplification_rule() {
        assert!(Thm::by_simplification(form("x = x & (p --> p)")).is_ok());
        assert!(Thm::by_simplification(form("p")).is_err());
    }

    #[test]
    fn auto_structural() {
        assert!(auto_proves(&form("p --> p")));
        assert!(auto_proves(&form("p & q --> q & p")));
        assert!(auto_proves(&form("p --> p | q")));
        assert!(auto_proves(&form(
            "(p | q) --> (p --> r) --> (q --> r) --> r"
        )));
        assert!(auto_proves(&form("a & (b & c) --> c")));
        assert!(!auto_proves(&form("p --> q")));
        assert!(!auto_proves(&form("p | q --> p")));
    }

    #[test]
    fn governor_cuts_auto_short() {
        let phi = form("(p | q) --> (p --> r) --> (q --> r) --> r");
        let starved = Budget::with_fuel(1);
        assert_eq!(auto_proves_governed(&phi, &starved), Err(Exhaustion::Fuel));
        let roomy = Budget::with_fuel(1_000_000);
        assert_eq!(auto_proves_governed(&phi, &roomy), Ok(true));
    }

    #[test]
    fn forward_chaining_with_conjunctive_consequent_terminates() {
        // Regression: modus ponens on `p --> q & r` derives `q & r`, which
        // enters the hypotheses only as its flattened parts — saturation
        // used to re-derive it every round and never reach its fixpoint.
        assert!(auto_proves(&form("p & (p --> q & r) --> q")));
        assert!(!auto_proves(&form("p & (p --> q & r) --> s")));
    }

    #[test]
    fn auto_with_sets() {
        // Structural reasoning over opaque set atoms.
        assert!(auto_proves(&form(
            "x : S & S Int T = {} --> (S Int T = {} & x : S)"
        )));
    }
}
