//! `jahob-bapa`: Boolean Algebra with Presburger Arithmetic.
//!
//! Implements the decision procedure of Kuncak, Nguyen & Rinard (CADE-20,
//! [43] in the paper): formulas mixing set algebra over an unbounded finite
//! universe of objects with integer arithmetic over set cardinalities are
//! decided by *Venn-region reduction*. Every Boolean combination of the base
//! sets is a region; one non-negative integer variable stands for each
//! region's cardinality; set atoms become linear constraints over the region
//! variables; the result is a Presburger problem handed to `jahob-presburger`
//! (the Omega test on quantifier-free disjuncts, Cooper as fallback).
//!
//! Object-sorted variables (including `null`) are encoded as singleton sets
//! — the standard trick from the BAPA papers — so client verification
//! conditions such as the disjointness property of Figure 2
//! (`a..content Int b..content = {}` preserved across `add`/`remove`)
//! fall inside the fragment.
//!
//! The region count is `2^(#base sets)`: the exponential that experiment E8
//! measures. Goals with more than [`MAX_BASE_SETS`] base sets are rejected
//! (the dispatcher then tries other provers).

use jahob_logic::{BinOp, Form, Sort, UnOp};
use jahob_presburger::cooper::{self, PAtom, PForm};
use jahob_presburger::linterm::LinTerm;
use jahob_presburger::omega::{omega_sat, Constraint, OmegaResult};
use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::{trace_enabled, FxHashMap, Symbol};
use std::fmt;
use std::rc::Rc;

/// Upper bound on distinct base sets (set variables + singleton-encoded
/// object variables); regions grow as `2^n`.
pub const MAX_BASE_SETS: usize = 6;

/// Why a goal is outside the BAPA fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BapaError {
    pub message: String,
}

impl fmt::Display for BapaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not in the BAPA fragment: {}", self.message)
    }
}

impl std::error::Error for BapaError {}

fn err<T>(message: impl Into<String>) -> Result<T, BapaError> {
    Err(BapaError {
        message: message.into(),
    })
}

/// A base-set identifier during translation.
#[derive(Clone, PartialEq, Debug)]
enum Base {
    /// A set variable.
    SetVar(Symbol),
    /// The singleton for an object variable.
    ObjVar(Symbol),
    /// The singleton for `null`.
    Null,
    /// An opaque set-valued term (e.g. `List.content a`), abstracted as an
    /// unconstrained set variable — sound for validity checking.
    SetTerm(Form),
    /// An opaque object-valued term, singleton-encoded like a variable.
    ObjTerm(Form),
}

/// A set expression as a predicate on Venn regions: for region bitmask `m`
/// (bit i = the region lies inside base set i), `contains(m)` says whether
/// the region is inside this set expression.
#[derive(Clone)]
struct SetExpr {
    contains: Rc<dyn Fn(u32) -> bool>,
}

impl SetExpr {
    fn base(i: usize) -> SetExpr {
        SetExpr {
            contains: Rc::new(move |m| m & (1 << i) != 0),
        }
    }

    fn empty() -> SetExpr {
        SetExpr {
            contains: Rc::new(|_| false),
        }
    }

    fn union(a: SetExpr, b: SetExpr) -> SetExpr {
        SetExpr {
            contains: Rc::new(move |m| (a.contains)(m) || (b.contains)(m)),
        }
    }

    fn inter(a: SetExpr, b: SetExpr) -> SetExpr {
        SetExpr {
            contains: Rc::new(move |m| (a.contains)(m) && (b.contains)(m)),
        }
    }

    fn diff(a: SetExpr, b: SetExpr) -> SetExpr {
        SetExpr {
            contains: Rc::new(move |m| (a.contains)(m) && !(b.contains)(m)),
        }
    }

    fn sym_diff(a: SetExpr, b: SetExpr) -> SetExpr {
        SetExpr::union(SetExpr::diff(a.clone(), b.clone()), SetExpr::diff(b, a))
    }
}

/// The translation context: the base-set inventory.
struct Translator<'a> {
    sig: &'a FxHashMap<Symbol, Sort>,
    bases: Vec<Base>,
}

impl<'a> Translator<'a> {
    fn new(sig: &'a FxHashMap<Symbol, Sort>) -> Self {
        Translator {
            sig,
            bases: Vec::new(),
        }
    }

    fn base_index(&mut self, b: Base) -> Result<usize, BapaError> {
        if let Some(i) = self.bases.iter().position(|x| *x == b) {
            return Ok(i);
        }
        if self.bases.len() >= MAX_BASE_SETS {
            return err(format!(
                "more than {MAX_BASE_SETS} base sets (regions would explode)"
            ));
        }
        self.bases.push(b);
        Ok(self.bases.len() - 1)
    }

    fn sort_of(&self, name: Symbol) -> Option<&Sort> {
        self.sig.get(&name)
    }

    /// Classify a term as a set expression by signature and shape.
    fn is_set_term(&self, form: &Form) -> bool {
        match form {
            Form::EmptySet | Form::FiniteSet(_) => true,
            Form::Binop(BinOp::Union | BinOp::Inter | BinOp::Diff, _, _) => true,
            Form::Var(name) => matches!(self.sort_of(*name), Some(Sort::Set(_))),
            Form::App(head, _) => match head.as_ref() {
                Form::Var(f) => matches!(
                    self.sort_of(*f),
                    Some(Sort::Fun(_, ret))
                        if matches!(ret.as_ref(), Sort::Set(inner) if **inner == Sort::Obj)
                ),
                _ => false,
            },
            _ => false,
        }
    }

    fn is_obj_term(&self, form: &Form) -> bool {
        match form {
            Form::Null => true,
            Form::Var(name) => matches!(self.sort_of(*name), Some(Sort::Obj)),
            Form::App(head, _) => match head.as_ref() {
                Form::Var(f) => matches!(
                    self.sort_of(*f),
                    Some(Sort::Fun(_, ret)) if **ret == Sort::Obj
                ),
                _ => false,
            },
            _ => false,
        }
    }

    /// Translate a set term to a region predicate.
    fn set_expr(&mut self, form: &Form) -> Result<SetExpr, BapaError> {
        match form {
            Form::EmptySet => Ok(SetExpr::empty()),
            Form::Var(name) => {
                match self.sort_of(*name) {
                    Some(Sort::Set(inner)) if **inner == Sort::Obj => {}
                    Some(Sort::Set(_)) => return err("only object sets supported"),
                    Some(other) => {
                        return err(format!("`{name}` has sort {other}, expected objset"))
                    }
                    // Unknown symbols in set position: assume objset.
                    None => {}
                }
                let i = self.base_index(Base::SetVar(*name))?;
                Ok(SetExpr::base(i))
            }
            Form::FiniteSet(elems) => {
                let mut acc = SetExpr::empty();
                for e in elems {
                    let s = self.singleton(e)?;
                    acc = SetExpr::union(acc, s);
                }
                Ok(acc)
            }
            Form::Binop(BinOp::Union, lhs, rhs) => {
                Ok(SetExpr::union(self.set_expr(lhs)?, self.set_expr(rhs)?))
            }
            Form::Binop(BinOp::Inter, lhs, rhs) => {
                Ok(SetExpr::inter(self.set_expr(lhs)?, self.set_expr(rhs)?))
            }
            Form::Binop(BinOp::Diff | BinOp::Sub, lhs, rhs) => {
                Ok(SetExpr::diff(self.set_expr(lhs)?, self.set_expr(rhs)?))
            }
            app @ Form::App(head, _) => {
                // Opaque set-valued application: `List.content a`.
                let ok = match head.as_ref() {
                    Form::Var(f) => match self.sort_of(*f) {
                        Some(Sort::Fun(_, ret)) => {
                            matches!(ret.as_ref(), Sort::Set(inner) if **inner == Sort::Obj)
                        }
                        None => true,
                        _ => false,
                    },
                    _ => false,
                };
                if !ok {
                    return err(format!("set term expected, found `{app}`"));
                }
                let i = self.base_index(Base::SetTerm(app.clone()))?;
                Ok(SetExpr::base(i))
            }
            other => err(format!("set term expected, found `{other}`")),
        }
    }

    /// The singleton region predicate for an object-denoting term.
    fn singleton(&mut self, form: &Form) -> Result<SetExpr, BapaError> {
        match form {
            Form::Null => {
                let i = self.base_index(Base::Null)?;
                Ok(SetExpr::base(i))
            }
            Form::Var(name) => {
                match self.sort_of(*name) {
                    Some(Sort::Obj) | None => {}
                    Some(other) => return err(format!("`{name}` has sort {other}, expected obj")),
                }
                let i = self.base_index(Base::ObjVar(*name))?;
                Ok(SetExpr::base(i))
            }
            app @ Form::App(head, _) => {
                // Opaque object-valued application (`Node.data n`).
                let ok = match head.as_ref() {
                    Form::Var(f) => match self.sort_of(*f) {
                        Some(Sort::Fun(_, ret)) => **ret == Sort::Obj,
                        None => true,
                        _ => false,
                    },
                    _ => false,
                };
                if !ok {
                    return err(format!("object term expected, found `{app}`"));
                }
                let i = self.base_index(Base::ObjTerm(app.clone()))?;
                Ok(SetExpr::base(i))
            }
            other => err(format!("object variable expected, found `{other}`")),
        }
    }

    fn num_regions(&self) -> u32 {
        1u32 << self.bases.len()
    }

    /// Linear term: the cardinality of a set expression (sum of its
    /// regions' cardinality variables).
    fn card_of(&self, expr: &SetExpr) -> LinTerm {
        let mut t = LinTerm::constant(0);
        for m in 0..self.num_regions() {
            if (expr.contains)(m) {
                t = t.add(&LinTerm::var(region_var(m)));
            }
        }
        t
    }

    /// `expr` denotes the empty set.
    fn is_empty(&self, expr: &SetExpr) -> PForm {
        PForm::Atom(PAtom::Eq(self.card_of(expr)))
    }
}

/// Names for region-cardinality variables: `r#<mask>`.
fn region_var(mask: u32) -> Symbol {
    Symbol::intern(&format!("r#{mask}"))
}

/// A lowered atom: region predicates are kept symbolic until the base-set
/// inventory is complete, then turned into linear constraints.
enum LoweredAtom {
    Empty(SetExpr),
    IntEq(IntExpr, IntExpr),
    IntLe(IntExpr, IntExpr),
    IntLt(IntExpr, IntExpr),
}

/// A deferred integer expression (cardinalities resolved late).
enum IntExpr {
    Lin(LinTerm),
    Card(SetExpr),
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Scale(i64, Box<IntExpr>),
}

impl IntExpr {
    fn resolve(&self, tr: &Translator) -> LinTerm {
        match self {
            IntExpr::Lin(t) => t.clone(),
            IntExpr::Card(s) => tr.card_of(s),
            IntExpr::Add(a, b) => a.resolve(tr).add(&b.resolve(tr)),
            IntExpr::Sub(a, b) => a.resolve(tr).sub(&b.resolve(tr)),
            IntExpr::Scale(k, a) => a.resolve(tr).scale(*k),
        }
    }
}

/// Lowered boolean skeleton.
enum Lowered {
    True,
    False,
    Atom(LoweredAtom),
    And(Vec<Lowered>),
    Or(Vec<Lowered>),
    Not(Box<Lowered>),
}

impl Lowered {
    fn resolve(&self, tr: &Translator) -> PForm {
        match self {
            Lowered::True => PForm::True,
            Lowered::False => PForm::False,
            Lowered::And(ps) => PForm::and(ps.iter().map(|p| p.resolve(tr)).collect()),
            Lowered::Or(ps) => PForm::or(ps.iter().map(|p| p.resolve(tr)).collect()),
            Lowered::Not(p) => PForm::not(p.resolve(tr)),
            Lowered::Atom(a) => match a {
                LoweredAtom::Empty(s) => tr.is_empty(s),
                LoweredAtom::IntEq(l, r) => {
                    PForm::Atom(PAtom::Eq(l.resolve(tr).sub(&r.resolve(tr))))
                }
                LoweredAtom::IntLe(l, r) => PForm::le(l.resolve(tr), r.resolve(tr)),
                LoweredAtom::IntLt(l, r) => PForm::lt(l.resolve(tr), r.resolve(tr)),
            },
        }
    }
}

fn lower_form(form: &Form, tr: &mut Translator) -> Result<Lowered, BapaError> {
    match form {
        Form::BoolLit(true) => Ok(Lowered::True),
        Form::BoolLit(false) => Ok(Lowered::False),
        Form::And(parts) => Ok(Lowered::And(
            parts
                .iter()
                .map(|p| lower_form(p, tr))
                .collect::<Result<_, _>>()?,
        )),
        Form::Or(parts) => Ok(Lowered::Or(
            parts
                .iter()
                .map(|p| lower_form(p, tr))
                .collect::<Result<_, _>>()?,
        )),
        Form::Unop(UnOp::Not, inner) => Ok(Lowered::Not(Box::new(lower_form(inner, tr)?))),
        Form::Binop(BinOp::Implies, lhs, rhs) => Ok(Lowered::Or(vec![
            Lowered::Not(Box::new(lower_form(lhs, tr)?)),
            lower_form(rhs, tr)?,
        ])),
        Form::Binop(BinOp::Iff, lhs, rhs) => {
            let l = lower_form(lhs, tr)?;
            let r = lower_form(rhs, tr)?;
            let l2 = lower_form(lhs, tr)?;
            let r2 = lower_form(rhs, tr)?;
            Ok(Lowered::And(vec![
                Lowered::Or(vec![Lowered::Not(Box::new(l)), r]),
                Lowered::Or(vec![l2, Lowered::Not(Box::new(r2))]),
            ]))
        }
        Form::Binop(BinOp::Subseteq, lhs, rhs) => {
            let l = tr.set_expr(lhs)?;
            let r = tr.set_expr(rhs)?;
            Ok(Lowered::Atom(LoweredAtom::Empty(SetExpr::diff(l, r))))
        }
        Form::Binop(BinOp::Elem, lhs, rhs) => {
            let x = tr.singleton(lhs)?;
            let s = tr.set_expr(rhs)?;
            Ok(Lowered::Atom(LoweredAtom::Empty(SetExpr::diff(x, s))))
        }
        Form::Binop(BinOp::Eq, lhs, rhs) => {
            if tr.is_set_term(lhs) || tr.is_set_term(rhs) {
                let l = tr.set_expr(lhs)?;
                let r = tr.set_expr(rhs)?;
                Ok(Lowered::Atom(LoweredAtom::Empty(SetExpr::sym_diff(l, r))))
            } else if tr.is_obj_term(lhs) || tr.is_obj_term(rhs) {
                let l = tr.singleton(lhs)?;
                let r = tr.singleton(rhs)?;
                Ok(Lowered::Atom(LoweredAtom::Empty(SetExpr::sym_diff(l, r))))
            } else {
                let l = lower_int(lhs, tr)?;
                let r = lower_int(rhs, tr)?;
                Ok(Lowered::Atom(LoweredAtom::IntEq(l, r)))
            }
        }
        Form::Binop(BinOp::Lt, lhs, rhs) => Ok(Lowered::Atom(LoweredAtom::IntLt(
            lower_int(lhs, tr)?,
            lower_int(rhs, tr)?,
        ))),
        Form::Binop(BinOp::Le, lhs, rhs) => {
            // Pre-elaboration `<=` between set terms means subset.
            if tr.is_set_term(lhs) || tr.is_set_term(rhs) {
                let l = tr.set_expr(lhs)?;
                let r = tr.set_expr(rhs)?;
                return Ok(Lowered::Atom(LoweredAtom::Empty(SetExpr::diff(l, r))));
            }
            Ok(Lowered::Atom(LoweredAtom::IntLe(
                lower_int(lhs, tr)?,
                lower_int(rhs, tr)?,
            )))
        }
        other => err(format!("outside the BAPA fragment: `{other}`")),
    }
}

fn lower_int(form: &Form, tr: &mut Translator) -> Result<IntExpr, BapaError> {
    match form {
        Form::IntLit(n) => Ok(IntExpr::Lin(LinTerm::constant(*n))),
        Form::Var(name) => match tr.sort_of(*name) {
            Some(Sort::Int) | None => Ok(IntExpr::Lin(LinTerm::var(*name))),
            Some(other) => err(format!("`{name}` has sort {other}, expected int")),
        },
        Form::Unop(UnOp::Card, inner) => Ok(IntExpr::Card(tr.set_expr(inner)?)),
        Form::Unop(UnOp::Neg, inner) => Ok(IntExpr::Scale(-1, Box::new(lower_int(inner, tr)?))),
        Form::Binop(BinOp::Add, lhs, rhs) => Ok(IntExpr::Add(
            Box::new(lower_int(lhs, tr)?),
            Box::new(lower_int(rhs, tr)?),
        )),
        Form::Binop(BinOp::Sub, lhs, rhs) => Ok(IntExpr::Sub(
            Box::new(lower_int(lhs, tr)?),
            Box::new(lower_int(rhs, tr)?),
        )),
        Form::Binop(BinOp::Mul, lhs, rhs) => match (&**lhs, &**rhs) {
            (Form::IntLit(k), _) => Ok(IntExpr::Scale(*k, Box::new(lower_int(rhs, tr)?))),
            (_, Form::IntLit(k)) => Ok(IntExpr::Scale(*k, Box::new(lower_int(lhs, tr)?))),
            _ => err("nonlinear multiplication"),
        },
        other => err(format!("non-arithmetic term `{other}`")),
    }
}

/// Translate a quantifier-free BAPA formula to a Presburger formula over
/// region variables plus well-formedness constraints.
fn translate(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
) -> Result<(PForm, PForm, usize), BapaError> {
    let mut tr = Translator::new(sig);
    let lowered = lower_form(form, &mut tr)?;
    let matrix = lowered.resolve(&tr);
    let mut wf = Vec::new();
    for m in 0..tr.num_regions() {
        // r_m >= 0  ⇔  -r_m <= 0.
        wf.push(PForm::Atom(PAtom::Le(
            LinTerm::var(region_var(m)).scale(-1),
        )));
    }
    for (i, base) in tr.bases.iter().enumerate() {
        if matches!(base, Base::ObjVar(_) | Base::Null | Base::ObjTerm(_)) {
            let singleton = SetExpr::base(i);
            wf.push(PForm::Atom(PAtom::Eq(
                tr.card_of(&singleton).sub(&LinTerm::constant(1)),
            )));
        }
    }
    Ok((matrix, PForm::and(wf), tr.bases.len()))
}

/// Why a budgeted BAPA decision did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BapaFailure {
    /// The goal is outside the BAPA fragment — route it elsewhere.
    Fragment(BapaError),
    /// The budget ran out mid-decision.
    Exhausted(Exhaustion),
}

impl fmt::Display for BapaFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BapaFailure::Fragment(e) => e.fmt(f),
            BapaFailure::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BapaFailure {}

/// Decide validity of a quantifier-free BAPA goal: translate its negation
/// and check unsatisfiability over non-negative region cardinalities.
pub fn bapa_valid(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<bool, BapaError> {
    match bapa_valid_budgeted(form, sig, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(BapaFailure::Fragment(e)) => Err(e),
        Err(BapaFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`bapa_valid`]: fuel is charged per Venn-region disjunct and
/// per sign-enumeration branch, the two places the reduction blows up.
pub fn bapa_valid_budgeted(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    budget: &Budget,
) -> Result<bool, BapaFailure> {
    jahob_util::chaos::boundary("bapa.valid", budget).map_err(BapaFailure::Exhausted)?;
    let trace = trace_enabled();
    let negated = Form::not(form.clone());
    let (matrix, wf, bases) = translate(&negated, sig).map_err(BapaFailure::Fragment)?;
    if trace {
        eprintln!("[bapa] translated: {bases} base sets");
    }
    let full = PForm::and(vec![wf, matrix]);
    let sat = pform_sat(&full, budget).map_err(BapaFailure::Exhausted)?;
    if trace {
        eprintln!("[bapa] decided: sat={sat}");
    }
    Ok(!sat)
}

/// Decide satisfiability of a quantifier-free BAPA formula.
pub fn bapa_sat(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<bool, BapaError> {
    let (matrix, wf, _) = translate(form, sig)?;
    let full = PForm::and(vec![wf, matrix]);
    Ok(pform_sat(&full, &Budget::unlimited()).expect("unlimited budget cannot be exhausted"))
}

/// Number of base sets a goal needs (for benchmarking the Venn blowup).
pub fn base_set_count(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<usize, BapaError> {
    translate(form, sig).map(|(_, _, n)| n)
}

/// Satisfiability of a quantifier-free Presburger formula: DNF + Omega test
/// per disjunct, falling back to Cooper when DNF would explode or
/// divisibility atoms appear.
fn pform_sat(form: &PForm, budget: &Budget) -> Result<bool, Exhaustion> {
    let trace = trace_enabled();
    match dnf(form, 2048) {
        Some(disjuncts) => {
            if trace {
                eprintln!(
                    "[bapa] dnf: {} disjuncts (sizes {:?}...)",
                    disjuncts.len(),
                    disjuncts
                        .iter()
                        .take(3)
                        .map(|d| d.len())
                        .collect::<Vec<_>>()
                );
            }
            for (i, conj) in disjuncts.iter().enumerate() {
                budget.check()?;
                if trace && i % 50 == 0 {
                    eprintln!("[bapa]   conj {i}...");
                }
                if conj_sat(conj, budget)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        None => cooper::sat_budgeted(form, budget),
    }
}

fn atom_term(atom: &PAtom) -> &LinTerm {
    match atom {
        PAtom::Le(t) | PAtom::Eq(t) | PAtom::Neq(t) | PAtom::Dvd(_, t) | PAtom::NotDvd(_, t) => t,
    }
}

/// Satisfiability of one conjunction of atoms via the Omega test. `Neq`
/// atoms are split by sign enumeration; divisibility falls back to Cooper.
fn conj_sat(conj: &[PAtom], budget: &Budget) -> Result<bool, Exhaustion> {
    if conj
        .iter()
        .any(|a| matches!(a, PAtom::Dvd(_, _) | PAtom::NotDvd(_, _)))
    {
        let f = PForm::and(conj.iter().cloned().map(PForm::Atom).collect());
        return cooper::sat_budgeted(&f, budget);
    }
    let mut vars: Vec<Symbol> = Vec::new();
    for atom in conj {
        for v in atom_term(atom).vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let index = |v: Symbol| {
        vars.iter()
            .position(|&w| w == v)
            .expect("`vars` was collected from these same atoms' terms just above")
    };
    let to_coeffs = |t: &LinTerm| -> Vec<i64> {
        let mut c = vec![0i64; vars.len()];
        for (v, k) in &t.coeffs {
            c[index(*v)] = *k;
        }
        c
    };
    let mut fixed: Vec<Constraint> = Vec::new();
    let mut neqs: Vec<LinTerm> = Vec::new();
    for a in conj {
        match a {
            // t <= 0  ⇔  -t >= 0.
            PAtom::Le(t) => {
                let neg = t.scale(-1);
                fixed.push(Constraint::ge(to_coeffs(&neg), neg.konst));
            }
            PAtom::Eq(t) => fixed.push(Constraint::eq(to_coeffs(t), t.konst)),
            PAtom::Neq(t) => neqs.push(t.clone()),
            PAtom::Dvd(_, _) | PAtom::NotDvd(_, _) => unreachable!(),
        }
    }
    if neqs.len() > 10 {
        let f = PForm::and(conj.iter().cloned().map(PForm::Atom).collect());
        return cooper::sat_budgeted(&f, budget);
    }
    // t != 0 splits into t ≥ 1 or t ≤ −1; try every sign choice.
    for mask in 0u32..(1 << neqs.len()) {
        budget.check()?;
        let mut sys = fixed.clone();
        for (i, t) in neqs.iter().enumerate() {
            let t = if mask & (1 << i) != 0 {
                t.clone() // t >= 1
            } else {
                t.scale(-1) // -t >= 1
            };
            sys.push(Constraint::ge(to_coeffs(&t), t.konst - 1));
        }
        if omega_sat(&sys) == OmegaResult::Sat {
            return Ok(true);
        }
    }
    Ok(false)
}

/// DNF of a formula as lists of atoms; `None` if more than `limit` disjuncts
/// would be produced or quantifiers appear.
fn dnf(form: &PForm, limit: usize) -> Option<Vec<Vec<PAtom>>> {
    fn rec(form: &PForm, limit: usize) -> Option<Vec<Vec<PAtom>>> {
        match form {
            PForm::True => Some(vec![vec![]]),
            PForm::False => Some(vec![]),
            PForm::Atom(a) => Some(vec![vec![a.clone()]]),
            PForm::Or(ps) => {
                let mut out = Vec::new();
                for p in ps {
                    out.extend(rec(p, limit)?);
                    if out.len() > limit {
                        return None;
                    }
                }
                Some(out)
            }
            PForm::And(ps) => {
                let mut acc: Vec<Vec<PAtom>> = vec![vec![]];
                for p in ps {
                    let branches = rec(p, limit)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for b in &branches {
                            let mut c = a.clone();
                            c.extend(b.iter().cloned());
                            next.push(c);
                            if next.len() > limit {
                                return None;
                            }
                        }
                    }
                    acc = next;
                }
                Some(acc)
            }
            PForm::Not(_) | PForm::Ex(_, _) | PForm::All(_, _) => None,
        }
    }
    rec(&nnf_absorb(form), limit)
}

/// NNF with negation absorbed into atoms.
fn nnf_absorb(form: &PForm) -> PForm {
    fn rec(form: &PForm, pos: bool) -> PForm {
        match (form, pos) {
            (PForm::True, true) | (PForm::False, false) => PForm::True,
            (PForm::True, false) | (PForm::False, true) => PForm::False,
            (PForm::Atom(a), true) => PForm::Atom(a.clone()),
            (PForm::Atom(a), false) => PForm::Atom(negate_atom(a)),
            (PForm::And(ps), true) => PForm::and(ps.iter().map(|p| rec(p, true)).collect()),
            (PForm::And(ps), false) => PForm::or(ps.iter().map(|p| rec(p, false)).collect()),
            (PForm::Or(ps), true) => PForm::or(ps.iter().map(|p| rec(p, true)).collect()),
            (PForm::Or(ps), false) => PForm::and(ps.iter().map(|p| rec(p, false)).collect()),
            (PForm::Not(p), pos) => rec(p, !pos),
            (q @ (PForm::Ex(_, _) | PForm::All(_, _)), pos) => {
                if pos {
                    q.clone()
                } else {
                    PForm::Not(Box::new(q.clone()))
                }
            }
        }
    }
    rec(form, true)
}

fn negate_atom(a: &PAtom) -> PAtom {
    match a {
        PAtom::Le(t) => PAtom::Le(LinTerm::constant(1).sub(t)),
        PAtom::Eq(t) => PAtom::Neq(t.clone()),
        PAtom::Neq(t) => PAtom::Eq(t.clone()),
        PAtom::Dvd(d, t) => PAtom::NotDvd(*d, t.clone()),
        PAtom::NotDvd(d, t) => PAtom::Dvd(*d, t.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn sig_with(entries: &[(&str, Sort)]) -> FxHashMap<Symbol, Sort> {
        entries
            .iter()
            .map(|(n, s)| (Symbol::intern(n), s.clone()))
            .collect()
    }

    fn default_sig() -> FxHashMap<Symbol, Sort> {
        sig_with(&[
            ("S", Sort::objset()),
            ("T", Sort::objset()),
            ("U", Sort::objset()),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("o", Sort::Obj),
            ("k", Sort::Int),
            ("n", Sort::Int),
        ])
    }

    fn valid(src: &str) -> bool {
        bapa_valid(&form(src), &default_sig()).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    #[test]
    fn budget_halts_region_enumeration() {
        let goal = form(
            "S Int T <= S & S <= S Un T & S - T <= S & T - S <= T & \
             card (S Un T Un U) <= card S + card T + card U",
        );
        let starved = Budget::with_fuel(1);
        assert_eq!(
            bapa_valid_budgeted(&goal, &default_sig(), &starved),
            Err(BapaFailure::Exhausted(Exhaustion::Fuel))
        );
        // A generous budget agrees with the unlimited entry point.
        let roomy = Budget::with_fuel(10_000_000);
        assert_eq!(bapa_valid_budgeted(&goal, &default_sig(), &roomy), Ok(true));
    }

    #[test]
    fn set_algebra_tautologies() {
        assert!(valid("S Int T <= S"));
        assert!(valid("S <= S Un T"));
        assert!(valid("S - T <= S"));
        assert!(valid("S Int T = T Int S"));
        assert!(valid("(S Un T) Un U = S Un (T Un U)"));
        assert!(valid("S Int (T Un U) = (S Int T) Un (S Int U)"));
        assert!(!valid("S <= S Int T"));
        assert!(!valid("S Un T <= S"));
    }

    #[test]
    fn membership_reasoning() {
        assert!(valid("x : S --> x : S Un T"));
        assert!(valid("x : S Int T --> x : S & x : T"));
        assert!(valid("x : S & x ~: T --> x : S - T"));
        assert!(!valid("x : S Un T --> x : S"));
        assert!(valid("x : {y} --> x = y"));
        assert!(valid("x = y --> x : {y}"));
    }

    #[test]
    fn figure2_disjointness_preservation() {
        // The core of the List client proof: moving an element from a to b
        // keeps the two contents disjoint.
        let sig = sig_with(&[
            ("cA", Sort::objset()),
            ("cB", Sort::objset()),
            ("cA2", Sort::objset()),
            ("cB2", Sort::objset()),
            ("o", Sort::Obj),
        ]);
        let f = form(
            "cA Int cB = {} & o : cA & cA2 = cA - {o} & cB2 = cB Un {o} \
             --> cA2 Int cB2 = {}",
        );
        assert_eq!(bapa_valid(&f, &sig), Ok(true));
        // Dropping the disjointness hypothesis breaks it.
        let g = form("o : cA & cA2 = cA - {o} & cB2 = cB Un {o} --> cA2 Int cB2 = {}");
        assert_eq!(bapa_valid(&g, &sig), Ok(false));
    }

    #[test]
    fn cardinality_reasoning() {
        assert!(valid("card (S Un T) <= card S + card T"));
        assert!(valid("card (S Un T) + card (S Int T) = card S + card T"));
        assert!(valid("S <= T --> card S <= card T"));
        assert!(valid("card S = 0 --> S = {}"));
        assert!(valid("S = {} --> card S = 0"));
        assert!(!valid("card (S Un T) = card S + card T"));
        assert!(valid("x : S --> 1 <= card S"));
        assert!(valid("card {x} = 1"));
        assert!(valid("card {x, y} <= 2"));
        assert!(!valid("card {x, y} = 2"));
    }

    #[test]
    fn mixed_int_vars() {
        assert!(valid(
            "card S = k & card T = n & S Int T = {} --> card (S Un T) = k + n"
        ));
        assert!(valid("card (S Int T) <= card S"));
    }

    #[test]
    fn null_handling() {
        assert!(valid("x = null --> x : {null}"));
        assert!(valid("x ~= null --> x ~: {null}"));
    }

    #[test]
    fn empty_and_finite_sets() {
        assert!(valid("{} <= S"));
        assert!(valid("{x} Un {y} = {x, y}"));
        assert!(valid("x ~= y --> card {x, y} = 2"));
    }

    #[test]
    fn rejects_out_of_fragment() {
        let sig = default_sig();
        assert!(bapa_valid(&form("rtrancl_pt p x y"), &sig).is_err());
        assert!(bapa_valid(&form("ALL z. z : S"), &sig).is_err());
        // Opaque applications are *abstracted*, not rejected: the equality
        // below is not valid under abstraction (sound), and congruence-free
        // abstraction keeps it unprovable.
        assert_eq!(bapa_valid(&form("next x = y"), &sig), Ok(false));
    }

    #[test]
    fn differential_vs_small_models() {
        // BAPA verdicts must agree with exhaustive small-model enumeration
        // (universe of 2 objects + null) on these goals: each is either
        // valid, or refutable by a model with ≤2 proper objects.
        use jahob_logic::model::enumerate_models;
        let sig = default_sig();
        let goals = [
            "S Int T <= S",
            "S <= S Un T",
            "S Un T <= S",
            "S - T <= S",
            "S <= T --> S Int U <= T Int U",
            "x : S --> x : S Un T",
            "x : S Un T --> x : T",
            "S Int T = {} & x : S --> x ~: T",
        ];
        let syms: Vec<(Symbol, Sort)> = [
            ("S", Sort::objset()),
            ("T", Sort::objset()),
            ("U", Sort::objset()),
            ("x", Sort::Obj),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect();
        for src in goals {
            let f = form(src);
            let bapa = bapa_valid(&f, &sig).unwrap();
            let small_valid = enumerate_models(2, (0, 0), &syms, &mut |m| m.eval_bool(&f).unwrap());
            assert_eq!(
                bapa, small_valid,
                "{src}: bapa={bapa}, small-model={small_valid}"
            );
        }
    }

    #[test]
    fn base_set_counting() {
        let sig = default_sig();
        assert_eq!(base_set_count(&form("S Int T = {}"), &sig), Ok(2));
        assert_eq!(base_set_count(&form("x : S"), &sig), Ok(2));
        assert_eq!(base_set_count(&form("S = S"), &sig), Ok(1));
    }
}
