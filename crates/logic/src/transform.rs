//! Logical transformations used by the VC generator and the provers.
//!
//! * [`beta_reduce`] — contract `(% x. e) a` redexes and comprehension
//!   memberships `a : {x. P}`; this is how abstraction-function definitions
//!   disappear after unfolding.
//! * [`simplify`] — bottom-up constant folding and algebraic identities.
//! * [`nnf`] — negation normal form (no `-->`/`Iff`; `~` only on atoms).
//! * [`prenex`] — pull quantifiers to a prefix.
//! * [`skolemize`] — remove existentials (validity-preserving direction: the
//!   formula is skolemized after negation by refutation-based provers).
//! * [`split_conjuncts`] — Jahob's "simple goal decomposition technique":
//!   split a proof obligation into independently provable conjuncts, pushing
//!   the split under universal quantifiers and implications.

use crate::form::{BinOp, Form, QKind, UnOp};
use crate::sort::Sort;
use jahob_util::{FxHashMap, Symbol};
use std::rc::Rc;

/// Beta-reduce to a fixpoint: `(% xs. e) as` → `e[xs := as]` and
/// `a : {x. P}` → `P[x := a]`. Also contracts `fieldRead f x` → `f x`.
pub fn beta_reduce(form: &Form) -> Form {
    // Iterate because a contraction can expose new redexes; terminates in
    // practice because Jahob definitions are non-recursive. Bound the number
    // of sweeps defensively.
    let mut current = form.clone();
    for _ in 0..64 {
        let next = beta_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn beta_once(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
            form.clone()
        }
        Form::Tree(elems) => Form::Tree(elems.iter().map(beta_once).collect()),
        Form::FiniteSet(elems) => Form::FiniteSet(elems.iter().map(beta_once).collect()),
        Form::And(parts) => Form::and(parts.iter().map(beta_once).collect()),
        Form::Or(parts) => Form::or(parts.iter().map(beta_once).collect()),
        Form::Unop(op, inner) => Form::Unop(*op, Rc::new(beta_once(inner))),
        Form::Old(inner) => Form::Old(Rc::new(beta_once(inner))),
        Form::Binop(BinOp::Elem, lhs, rhs) => {
            let lhs = beta_once(lhs);
            let rhs = beta_once(rhs);
            if let Form::Compr(x, _, body) = &rhs {
                return body.subst1(*x, &lhs);
            }
            Form::binop(BinOp::Elem, lhs, rhs)
        }
        Form::Binop(op, lhs, rhs) => Form::binop(*op, beta_once(lhs), beta_once(rhs)),
        Form::Ite(c, t, e) => Form::Ite(
            Rc::new(beta_once(c)),
            Rc::new(beta_once(t)),
            Rc::new(beta_once(e)),
        ),
        Form::App(head, args) => {
            let head = beta_once(head);
            let args: Vec<Form> = args.iter().map(beta_once).collect();
            if let Form::Lambda(binders, body) = &head {
                if args.len() >= binders.len() {
                    let mut map = FxHashMap::default();
                    for ((name, _), arg) in binders.iter().zip(args.iter()) {
                        map.insert(*name, arg.clone());
                    }
                    let reduced = body.subst(&map);
                    let rest = args[binders.len()..].to_vec();
                    return Form::app(reduced, rest);
                }
            }
            // fieldRead f x  ==  f x
            if let Form::Var(name) = &head {
                if name.as_str() == crate::form::sym::FIELD_READ && args.len() >= 2 {
                    let f = args[0].clone();
                    let rest = args[1..].to_vec();
                    return Form::app(f, rest);
                }
            }
            Form::app(head, args)
        }
        Form::Quant(kind, binders, body) => {
            Form::Quant(*kind, binders.clone(), Rc::new(beta_once(body)))
        }
        Form::Lambda(binders, body) => Form::Lambda(binders.clone(), Rc::new(beta_once(body))),
        Form::Compr(x, sort, body) => Form::Compr(*x, sort.clone(), Rc::new(beta_once(body))),
    }
}

/// Bottom-up simplification: boolean/integer constant folding and neutral
/// element identities. Equivalence-preserving.
pub fn simplify(form: &Form) -> Form {
    match form {
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
            form.clone()
        }
        Form::Tree(elems) => Form::Tree(elems.iter().map(simplify).collect()),
        Form::FiniteSet(elems) => {
            let elems: Vec<Form> = elems.iter().map(simplify).collect();
            Form::FiniteSet(elems)
        }
        Form::And(parts) => Form::and(parts.iter().map(simplify).collect()),
        Form::Or(parts) => Form::or(parts.iter().map(simplify).collect()),
        Form::Unop(UnOp::Not, inner) => Form::not(simplify(inner)),
        Form::Unop(UnOp::Neg, inner) => match simplify(inner) {
            Form::IntLit(n) => Form::IntLit(-n),
            other => Form::Unop(UnOp::Neg, Rc::new(other)),
        },
        Form::Unop(UnOp::Card, inner) => match simplify(inner) {
            Form::EmptySet => Form::IntLit(0),
            other => Form::card(other),
        },
        Form::Old(inner) => Form::Old(Rc::new(simplify(inner))),
        Form::Binop(op, lhs, rhs) => {
            let lhs = simplify(lhs);
            let rhs = simplify(rhs);
            simplify_binop(*op, lhs, rhs)
        }
        Form::Ite(c, t, e) => {
            let c = simplify(c);
            let t = simplify(t);
            let e = simplify(e);
            match c {
                Form::BoolLit(true) => t,
                Form::BoolLit(false) => e,
                _c if t == e => t,
                c => Form::Ite(Rc::new(c), Rc::new(t), Rc::new(e)),
            }
        }
        Form::App(head, args) => Form::app(simplify(head), args.iter().map(simplify).collect()),
        Form::Quant(kind, binders, body) => {
            let body = simplify(body);
            match body {
                Form::BoolLit(b) => Form::BoolLit(b),
                body => {
                    // Drop binders that no longer occur (sound for both
                    // quantifiers because all sorts are non-empty: obj
                    // contains at least null's companion objects, int is
                    // infinite, sets contain {}).
                    let free = body.free_vars();
                    let kept: Vec<(Symbol, Sort)> = binders
                        .iter()
                        .filter(|(name, _)| free.contains(name))
                        .cloned()
                        .collect();
                    Form::quant(*kind, kept, body)
                }
            }
        }
        Form::Lambda(binders, body) => Form::Lambda(binders.clone(), Rc::new(simplify(body))),
        Form::Compr(x, sort, body) => Form::Compr(*x, sort.clone(), Rc::new(simplify(body))),
    }
}

fn simplify_binop(op: BinOp, lhs: Form, rhs: Form) -> Form {
    use BinOp::*;
    match (op, &lhs, &rhs) {
        (Implies, _, _) if lhs == rhs => Form::tt(),
        (Implies, _, _) => Form::implies(lhs, rhs),
        (Iff, Form::BoolLit(true), _) => rhs,
        (Iff, _, Form::BoolLit(true)) => lhs,
        (Iff, Form::BoolLit(false), _) => Form::not(rhs),
        (Iff, _, Form::BoolLit(false)) => Form::not(lhs),
        (Iff, _, _) if lhs == rhs => Form::tt(),
        (Eq, Form::IntLit(a), Form::IntLit(b)) => Form::BoolLit(a == b),
        (Eq, _, _) => Form::eq(lhs, rhs),
        (Elem, _, Form::EmptySet) => Form::ff(),
        (Elem, _, Form::FiniteSet(elems)) => Form::or(
            elems
                .iter()
                .map(|e| Form::eq(lhs.clone(), e.clone()))
                .collect(),
        ),
        (Lt, Form::IntLit(a), Form::IntLit(b)) => Form::BoolLit(a < b),
        (Le, Form::IntLit(a), Form::IntLit(b)) => Form::BoolLit(a <= b),
        (Subseteq, Form::EmptySet, _) => Form::tt(),
        (Subseteq, _, _) if lhs == rhs => Form::tt(),
        (Add, Form::IntLit(a), Form::IntLit(b)) => Form::IntLit(a + b),
        (Add, Form::IntLit(0), _) => rhs,
        (Add, _, Form::IntLit(0)) => lhs,
        (Sub, Form::IntLit(a), Form::IntLit(b)) => Form::IntLit(a - b),
        (Sub, _, Form::IntLit(0)) => lhs,
        (Mul, Form::IntLit(a), Form::IntLit(b)) => Form::IntLit(a * b),
        (Mul, Form::IntLit(1), _) => rhs,
        (Mul, _, Form::IntLit(1)) => lhs,
        (Mul, Form::IntLit(0), _) | (Mul, _, Form::IntLit(0)) => Form::IntLit(0),
        (Union, Form::EmptySet, _) => rhs,
        (Union, _, Form::EmptySet) => lhs,
        (Union, _, _) if lhs == rhs => lhs,
        (Inter, Form::EmptySet, _) | (Inter, _, Form::EmptySet) => Form::EmptySet,
        (Inter, _, _) if lhs == rhs => lhs,
        (Diff, _, Form::EmptySet) => lhs,
        (Diff, Form::EmptySet, _) => Form::EmptySet,
        (Diff, _, _) if lhs == rhs => Form::EmptySet,
        _ => Form::binop(op, lhs, rhs),
    }
}

/// Negation normal form: eliminates `-->` and `Iff`, pushes `~` to atoms,
/// dualizes quantifiers. The result contains `And`, `Or`, `Quant`, atoms, and
/// negated atoms only.
pub fn nnf(form: &Form) -> Form {
    nnf_pos(form)
}

fn is_atom(form: &Form) -> bool {
    !matches!(
        form,
        Form::And(_)
            | Form::Or(_)
            | Form::Unop(UnOp::Not, _)
            | Form::Binop(BinOp::Implies | BinOp::Iff, _, _)
            | Form::Quant(_, _, _)
            | Form::BoolLit(_)
    )
}

fn nnf_pos(form: &Form) -> Form {
    match form {
        Form::And(parts) => Form::and(parts.iter().map(nnf_pos).collect()),
        Form::Or(parts) => Form::or(parts.iter().map(nnf_pos).collect()),
        Form::Unop(UnOp::Not, inner) => nnf_neg(inner),
        Form::Binop(BinOp::Implies, lhs, rhs) => Form::or(vec![nnf_neg(lhs), nnf_pos(rhs)]),
        Form::Binop(BinOp::Iff, lhs, rhs) => Form::and(vec![
            Form::or(vec![nnf_neg(lhs), nnf_pos(rhs)]),
            Form::or(vec![nnf_pos(lhs), nnf_neg(rhs)]),
        ]),
        Form::Quant(kind, binders, body) => Form::quant(*kind, binders.clone(), nnf_pos(body)),
        _ => form.clone(),
    }
}

fn nnf_neg(form: &Form) -> Form {
    match form {
        Form::And(parts) => Form::or(parts.iter().map(nnf_neg).collect()),
        Form::Or(parts) => Form::and(parts.iter().map(nnf_neg).collect()),
        Form::Unop(UnOp::Not, inner) => nnf_pos(inner),
        Form::Binop(BinOp::Implies, lhs, rhs) => Form::and(vec![nnf_pos(lhs), nnf_neg(rhs)]),
        Form::Binop(BinOp::Iff, lhs, rhs) => Form::and(vec![
            Form::or(vec![nnf_pos(lhs), nnf_pos(rhs)]),
            Form::or(vec![nnf_neg(lhs), nnf_neg(rhs)]),
        ]),
        Form::Quant(kind, binders, body) => {
            Form::quant(kind.dual(), binders.clone(), nnf_neg(body))
        }
        Form::BoolLit(b) => Form::BoolLit(!b),
        atom => {
            debug_assert!(is_atom(atom), "nnf_neg reached non-atom {atom:?}");
            Form::Unop(UnOp::Not, Rc::new(atom.clone()))
        }
    }
}

/// Prenex normal form of an NNF formula: returns the quantifier prefix
/// (outermost first) and the quantifier-free matrix. Bound variables are
/// renamed apart.
pub fn prenex(form: &Form) -> (Vec<(QKind, Symbol, Sort)>, Form) {
    let nnf_form = nnf(form);
    let mut prefix = Vec::new();
    let matrix = prenex_rec(&nnf_form, &mut prefix);
    (prefix, matrix)
}

fn prenex_rec(form: &Form, prefix: &mut Vec<(QKind, Symbol, Sort)>) -> Form {
    match form {
        Form::Quant(kind, binders, body) => {
            // Rename binders apart so hoisting cannot capture.
            let mut map = FxHashMap::default();
            let mut fresh_binders = Vec::with_capacity(binders.len());
            for (name, sort) in binders {
                let fresh = Symbol::fresh(*name);
                map.insert(*name, Form::Var(fresh));
                fresh_binders.push((fresh, sort.clone()));
            }
            let renamed = body.subst(&map);
            for (name, sort) in fresh_binders {
                prefix.push((*kind, name, sort));
            }
            prenex_rec(&renamed, prefix)
        }
        Form::And(parts) => Form::and(parts.iter().map(|p| prenex_rec(p, prefix)).collect()),
        Form::Or(parts) => Form::or(parts.iter().map(|p| prenex_rec(p, prefix)).collect()),
        other => other.clone(),
    }
}

/// Skolemize an NNF formula in the *refutation* direction: existentials are
/// replaced by fresh function symbols of the enclosing universals. Used after
/// negating a goal; satisfiability is preserved. Returns the skolemized form
/// and the introduced skolem symbols with their sorts.
pub fn skolemize(form: &Form) -> (Form, Vec<(Symbol, Sort)>) {
    let nnf_form = nnf(form);
    let mut skolems = Vec::new();
    let mut universals: Vec<(Symbol, Sort)> = Vec::new();
    let result = skolemize_rec(&nnf_form, &mut universals, &mut skolems);
    (result, skolems)
}

fn skolemize_rec(
    form: &Form,
    universals: &mut Vec<(Symbol, Sort)>,
    skolems: &mut Vec<(Symbol, Sort)>,
) -> Form {
    match form {
        Form::Quant(QKind::Ex, binders, body) => {
            let mut map = FxHashMap::default();
            for (name, sort) in binders {
                let sk = Symbol::fresh(Symbol::intern(&format!("sk_{name}")));
                if universals.is_empty() {
                    skolems.push((sk, sort.clone()));
                    map.insert(*name, Form::Var(sk));
                } else {
                    let arg_sorts: Vec<Sort> = universals.iter().map(|(_, s)| s.clone()).collect();
                    skolems.push((sk, Sort::Fun(arg_sorts, Box::new(sort.clone()))));
                    let args: Vec<Form> = universals.iter().map(|(u, _)| Form::Var(*u)).collect();
                    map.insert(*name, Form::app(Form::Var(sk), args));
                }
            }
            let substituted = body.subst(&map);
            skolemize_rec(&substituted, universals, skolems)
        }
        Form::Quant(QKind::All, binders, body) => {
            let depth = universals.len();
            universals.extend(binders.iter().cloned());
            let inner = skolemize_rec(body, universals, skolems);
            universals.truncate(depth);
            Form::quant(QKind::All, binders.clone(), inner)
        }
        Form::And(parts) => Form::and(
            parts
                .iter()
                .map(|p| skolemize_rec(p, universals, skolems))
                .collect(),
        ),
        Form::Or(parts) => Form::or(
            parts
                .iter()
                .map(|p| skolemize_rec(p, universals, skolems))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Goal decomposition: split a proof obligation into independently provable
/// pieces. Handles `A & B` (split), `H --> (A & B)` (distribute), and
/// `ALL x. A & B` (distribute). Hypotheses are kept with each piece.
pub fn split_conjuncts(form: &Form) -> Vec<Form> {
    let mut out = Vec::new();
    split_rec(form, &mut out);
    if out.is_empty() {
        out.push(Form::tt());
    }
    out
}

fn split_rec(form: &Form, out: &mut Vec<Form>) {
    match form {
        Form::And(parts) => {
            for p in parts {
                split_rec(p, out);
            }
        }
        Form::Binop(BinOp::Implies, hyp, concl) => {
            // Recurse on the conclusion *without* the `[tt]` fallback of the
            // public entry point: a trivially-true conclusion must erase the
            // whole implication (`H --> true` is valid, nothing to prove),
            // not survive as a one-piece split.
            let mut pieces = Vec::new();
            split_rec(concl, &mut pieces);
            match pieces.as_slice() {
                [] => {}
                [only] if only == concl.as_ref() => out.push(form.clone()),
                _ => {
                    for piece in pieces {
                        out.push(Form::implies(hyp.as_ref().clone(), piece));
                    }
                }
            }
        }
        Form::Quant(QKind::All, binders, body) => {
            let mut pieces = Vec::new();
            split_rec(body, &mut pieces);
            match pieces.as_slice() {
                [] => {} // `ALL x. true`: trivially valid, drop it
                [only] if only == body.as_ref() => out.push(form.clone()),
                _ => {
                    for piece in pieces {
                        out.push(Form::forall(binders.clone(), piece));
                    }
                }
            }
        }
        Form::BoolLit(true) => {}
        other => out.push(other.clone()),
    }
}

/// Replace every free occurrence of defined symbols by their definitions
/// (used to unfold `vardefs` abstraction functions), then beta-reduce.
pub fn unfold_defs(form: &Form, defs: &FxHashMap<Symbol, Form>) -> Form {
    if defs.is_empty() {
        return form.clone();
    }
    // Definitions may reference each other (content is defined via nodes);
    // iterate substitution to a fixpoint, with a defensive bound against
    // accidental cycles.
    let mut current = form.clone();
    for _ in 0..16 {
        let next = beta_reduce(&current.subst(defs));
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(src: &str) -> Form {
        parse_form(src).unwrap()
    }

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn beta_lambda() {
        let f = p("(% x y. x = y) a b");
        assert_eq!(beta_reduce(&f), p("a = b"));
    }

    #[test]
    fn beta_partial_application() {
        let f = p("(% x y. x = y) a");
        let reduced = beta_reduce(&f);
        // Partial application leaves a one-argument application pending until
        // a further argument arrives.
        let completed = Form::app(reduced, vec![Form::v("b")]);
        assert_eq!(beta_reduce(&completed), p("a = b"));
    }

    #[test]
    fn beta_comprehension_membership() {
        let f = p("a : {x. x ~= null}");
        assert_eq!(beta_reduce(&f), p("a ~= null"));
    }

    #[test]
    fn beta_nested() {
        let f = p("a : {x. EX n. x = n & n : {y. y ~= null}}");
        let red = beta_reduce(&f);
        assert_eq!(red, p("EX n. a = n & n ~= null"));
    }

    #[test]
    fn simplify_folds_constants() {
        assert_eq!(simplify(&p("1 + 2 * 3")), Form::IntLit(7));
        assert_eq!(simplify(&p("1 < 2")), Form::tt());
        assert_eq!(simplify(&p("2 <= 1")), Form::ff());
        assert_eq!(simplify(&p("x + 0")), Form::v("x"));
        assert_eq!(simplify(&p("S Un {}")), Form::v("S"));
        assert_eq!(simplify(&p("a : {}")), Form::ff());
        assert_eq!(simplify(&p("card {}")), Form::IntLit(0));
    }

    #[test]
    fn simplify_finite_membership() {
        let f = simplify(&p("x : {a, b}"));
        assert_eq!(f, p("x = a | x = b"));
    }

    #[test]
    fn simplify_drops_unused_binder() {
        let f = simplify(&p("ALL x y. x = x0"));
        match f {
            Form::Quant(QKind::All, binders, _) => assert_eq!(binders.len(), 1),
            other => panic!("expected ALL, got {other:?}"),
        }
        // Fully constant bodies collapse.
        assert_eq!(simplify(&p("ALL x. True")), Form::tt());
        assert_eq!(simplify(&p("EX x. False")), Form::ff());
    }

    #[test]
    fn nnf_eliminates_implies() {
        let f = nnf(&p("a --> b"));
        assert_eq!(f, p("~a | b"));
    }

    #[test]
    fn nnf_pushes_negation_through_quantifier() {
        let f = nnf(&p("~(ALL x. x : S)"));
        match f {
            Form::Quant(QKind::Ex, _, body) => {
                assert!(matches!(body.as_ref(), Form::Unop(UnOp::Not, _)));
            }
            other => panic!("expected EX, got {other:?}"),
        }
    }

    #[test]
    fn nnf_de_morgan() {
        assert_eq!(nnf(&p("~(a & b)")), p("~a | ~b"));
        assert_eq!(nnf(&p("~(a | b)")), p("~a & ~b"));
    }

    #[test]
    fn nnf_iff_expands() {
        let f = nnf(&p("a = b --> c"));
        // a = b is an atom here (Eq, not Iff, before elaboration), so the
        // whole thing is ~(a=b) | c.
        assert_eq!(f, p("a ~= b | c"));
    }

    #[test]
    fn prenex_hoists_and_renames() {
        let (prefix, matrix) = prenex(&p("(ALL x. x : S) & (EX x. x : T)"));
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[0].0, QKind::All);
        assert_eq!(prefix[1].0, QKind::Ex);
        assert_ne!(prefix[0].1, prefix[1].1, "binders renamed apart");
        assert!(matches!(matrix, Form::And(_)));
    }

    #[test]
    fn skolemize_top_level_exists() {
        let (f, sk) = skolemize(&p("EX x. x : S"));
        assert_eq!(sk.len(), 1);
        match f {
            Form::Binop(BinOp::Elem, lhs, _) => {
                assert!(matches!(lhs.as_ref(), Form::Var(_)));
            }
            other => panic!("expected membership, got {other:?}"),
        }
    }

    #[test]
    fn skolemize_under_universal_introduces_function() {
        let (f, sk) = skolemize(&p("ALL x. EX y. x ~= y"));
        assert_eq!(sk.len(), 1);
        assert!(matches!(sk[0].1, Sort::Fun(_, _)));
        match &f {
            Form::Quant(QKind::All, _, body) => {
                // Body is x ~= sk(x): a negated equality with an application.
                let text = body.to_string();
                assert!(text.contains("sk_y"), "skolem term in {text}");
            }
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn split_basic_conjunction() {
        let parts = split_conjuncts(&p("a & b & c"));
        assert_eq!(parts, vec![p("a"), p("b"), p("c")]);
    }

    #[test]
    fn split_under_implication_and_quantifier() {
        let parts = split_conjuncts(&p("h --> (ALL x. p x & q x)"));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], p("h --> (ALL x. p x)"));
        assert_eq!(parts[1], p("h --> (ALL x. q x)"));
    }

    #[test]
    fn split_keeps_disjunction_whole() {
        let parts = split_conjuncts(&p("a | b"));
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn split_drops_implication_of_true() {
        // Built raw: the `Form::implies` smart constructor collapses
        // `H --> true` itself, but substitution and WP compute produce the
        // raw `Binop` shape, which the splitter must erase.
        let trivial = Form::Binop(BinOp::Implies, Rc::new(p("h")), Rc::new(Form::tt()));
        assert_eq!(split_conjuncts(&trivial), vec![Form::tt()]);
        // …and alongside real pieces, only the real piece survives.
        let mixed = Form::And(vec![trivial, p("a")]);
        assert_eq!(split_conjuncts(&mixed), vec![p("a")]);
    }

    #[test]
    fn split_drops_quantified_true() {
        let trivial = Form::Quant(QKind::All, vec![(s("x"), Sort::Obj)], Rc::new(Form::tt()));
        assert_eq!(split_conjuncts(&trivial), vec![Form::tt()]);
        let mixed = Form::And(vec![p("b"), trivial]);
        assert_eq!(split_conjuncts(&mixed), vec![p("b")]);
    }

    #[test]
    fn split_drops_nested_trivial_pieces() {
        // `h --> (ALL x. true & (g --> true))` is trivially valid through
        // two levels of structure; the splitter must yield no pieces.
        let inner = Form::And(vec![
            Form::tt(),
            Form::Binop(BinOp::Implies, Rc::new(p("g")), Rc::new(Form::tt())),
        ]);
        let all = Form::Quant(QKind::All, vec![(s("x"), Sort::Obj)], Rc::new(inner));
        let outer = Form::Binop(BinOp::Implies, Rc::new(p("h")), Rc::new(all));
        assert_eq!(split_conjuncts(&outer), vec![Form::tt()]);
        // A non-trivial sibling conjunct under the quantifier still splits
        // out on its own, without the trivial siblings.
        let inner = Form::And(vec![Form::tt(), p("p x")]);
        let all = Form::Quant(QKind::All, vec![(s("x"), Sort::Obj)], Rc::new(inner));
        let outer = Form::Binop(BinOp::Implies, Rc::new(p("h")), Rc::new(all));
        let expected = Form::implies(p("h"), Form::forall(vec![(s("x"), Sort::Obj)], p("p x")));
        assert_eq!(split_conjuncts(&outer), vec![expected]);
    }

    #[test]
    fn unfold_defs_chain() {
        // content defined in terms of nodes, as in Figure 3.
        let mut defs = FxHashMap::default();
        defs.insert(s("nodesU"), p("{n. n ~= null}"));
        defs.insert(s("contentU"), p("{x. EX n. x = data n & n : nodesU}"));
        let goal = p("a : contentU");
        let unfolded = unfold_defs(&goal, &defs);
        assert_eq!(unfolded, p("EX n. a = data n & n ~= null"));
    }

    #[test]
    fn nnf_roundtrip_equivalence_spotcheck() {
        // NNF preserves meaning on a propositional example: check all
        // valuations by substitution + simplify.
        let f = p("(a --> b) & ~(c | a)");
        let g = nnf(&f);
        for bits in 0..8u32 {
            let mut map = FxHashMap::default();
            map.insert(s("a"), Form::BoolLit(bits & 1 != 0));
            map.insert(s("b"), Form::BoolLit(bits & 2 != 0));
            map.insert(s("c"), Form::BoolLit(bits & 4 != 0));
            let fv = simplify(&f.subst(&map));
            let gv = simplify(&g.subst(&map));
            assert_eq!(fv, gv, "NNF changed meaning at valuation {bits:03b}");
        }
    }
}
