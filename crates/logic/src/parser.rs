//! Parser for the annotation formula syntax (Pratt / precedence-climbing).
//!
//! Grammar sketch, loosest binding first:
//!
//! ```text
//! form     ::= 'ALL' binders '.' form | 'EX' binders '.' form
//!            | '%' binders '.' form
//!            | implic
//! implic   ::= disj ('-->' implic)?                  (right assoc)
//! disj     ::= conj ('|' conj)*
//! conj     ::= cmp ('&' cmp)*
//! cmp      ::= addsub (cmpop addsub)*                (= ~= : ~: < <= > >=)
//! addsub   ::= mul (('+' | '-' | 'Un') mul)*
//! mul      ::= prefix (('*' | 'Int') prefix)*
//! prefix   ::= '~' prefix | '-' prefix | postfix
//! postfix  ::= app ('..' IDENT)*
//! app      ::= atom atom*                            (juxtaposition)
//! atom     ::= IDENT | INT | 'True' | 'False' | 'null' | 'old' atom
//!            | 'card' atom | 'tree' '[' IDENT, ... ']'
//!            | '(' form ')' | '{' '}' | '{' form (',' form)* '}'
//!            | '{' IDENT '.' form '}'
//! binders  ::= (IDENT ('::' sort)?)+
//! sort     ::= base ('=>' sort)? ;  base ::= bool|int|obj|objset|intset|'(' sort ')'
//! ```
//!
//! `>`/`>=` are normalized to `<`/`<=` with swapped operands; `~=`/`~:` to
//! negated `=`/`:`; `x..f` to the application `f x`.

use crate::form::{BinOp, Form, UnOp};
use crate::lexer::{lex, LexError, Token};
use crate::sort::Sort;
use jahob_util::Symbol;
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Sentinel for "sort not yet inferred" on binders produced by the parser.
/// [`crate::infer`] replaces these with concrete sorts.
pub fn unknown_sort() -> Sort {
    Sort::Var(u32::MAX)
}

/// Parse a formula/term from the annotation syntax.
pub fn parse_form(src: &str) -> Result<Form, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let f = p.form()?;
    p.expect_eof()?;
    Ok(f)
}

/// Parse a sort (`objset`, `obj => bool`, ...).
pub fn parse_sort(src: &str) -> Result<Sort, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let s = p.sort()?;
    p.expect_eof()?;
    Ok(s)
}

pub(crate) struct Parser {
    pub(crate) toks: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{t}`")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.err(&format!("trailing input starting at `{t}`"))),
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        let ctx: Vec<String> = self.toks
            [self.pos.min(self.toks.len())..(self.pos + 5).min(self.toks.len())]
            .iter()
            .map(|t| t.to_string())
            .collect();
        ParseError {
            message: format!("{msg} (at token {} near `{}`)", self.pos, ctx.join(" ")),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    // ---- formulas -----------------------------------------------------------

    pub(crate) fn form(&mut self) -> Result<Form, ParseError> {
        match self.peek_ident() {
            Some("ALL") => {
                self.pos += 1;
                let binders = self.binders()?;
                self.expect(&Token::Dot)?;
                let body = self.form()?;
                return Ok(Form::forall(binders, body));
            }
            Some("EX") => {
                self.pos += 1;
                let binders = self.binders()?;
                self.expect(&Token::Dot)?;
                let body = self.form()?;
                return Ok(Form::exists(binders, body));
            }
            _ => {}
        }
        if self.peek() == Some(&Token::Percent) {
            self.pos += 1;
            let binders = self.binders()?;
            self.expect(&Token::Dot)?;
            let body = self.form()?;
            return Ok(Form::Lambda(binders, std::rc::Rc::new(body)));
        }
        self.implication()
    }

    fn binders(&mut self) -> Result<Vec<(Symbol, Sort)>, ParseError> {
        let mut binders = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(name)) if !is_keyword(name) => {
                    let name = name.clone();
                    self.pos += 1;
                    let sort = if self.eat(&Token::ColonColon) {
                        self.sort()?
                    } else {
                        unknown_sort()
                    };
                    binders.push((Symbol::intern(&name), sort));
                }
                _ => break,
            }
        }
        if binders.is_empty() {
            return Err(self.err("expected at least one binder"));
        }
        Ok(binders)
    }

    fn implication(&mut self) -> Result<Form, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat(&Token::Arrow) {
            let rhs = self.form_arrow_rhs()?;
            Ok(Form::binop(BinOp::Implies, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    /// The right-hand side of `-->` may itself start a quantifier.
    fn form_arrow_rhs(&mut self) -> Result<Form, ParseError> {
        self.form()
    }

    fn disjunction(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.eat(&Token::Bar) {
            parts.push(self.conjunction()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Form::Or(parts))
        }
    }

    fn conjunction(&mut self) -> Result<Form, ParseError> {
        let mut parts = vec![self.comparison()?];
        while self.eat(&Token::Amp) {
            parts.push(self.comparison()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().unwrap())
        } else {
            Ok(Form::And(parts))
        }
    }

    fn comparison(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let form = match self.peek() {
                Some(Token::Eq) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Eq, lhs, rhs)
                }
                Some(Token::NotEq) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::not(Form::binop(BinOp::Eq, lhs, rhs))
                }
                Some(Token::Colon) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Elem, lhs, rhs)
                }
                Some(Token::NotColon) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::not(Form::binop(BinOp::Elem, lhs, rhs))
                }
                Some(Token::Le) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Le, lhs, rhs)
                }
                Some(Token::Lt) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Lt, lhs, rhs)
                }
                Some(Token::Ge) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Le, rhs, lhs)
                }
                Some(Token::Gt) => {
                    self.pos += 1;
                    let rhs = self.additive()?;
                    Form::binop(BinOp::Lt, rhs, lhs)
                }
                _ => break,
            };
            lhs = form;
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Ident(s)) if s == "Un" => BinOp::Union,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Form::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Form, ParseError> {
        let mut lhs = self.prefix()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Ident(s)) if s == "Int" => BinOp::Inter,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.prefix()?;
            lhs = Form::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Form, ParseError> {
        if self.eat(&Token::Tilde) {
            let inner = self.prefix()?;
            return Ok(Form::not(inner));
        }
        if self.eat(&Token::Minus) {
            let inner = self.prefix()?;
            return Ok(match inner {
                Form::IntLit(n) => Form::IntLit(-n),
                other => Form::Unop(UnOp::Neg, std::rc::Rc::new(other)),
            });
        }
        self.application()
    }

    fn application(&mut self) -> Result<Form, ParseError> {
        let head = self.postfix()?;
        let mut args = Vec::new();
        while self.starts_atom() {
            args.push(self.postfix()?);
        }
        Ok(Form::app(head, args))
    }

    /// Would the next token start an atom (an application argument)?
    fn starts_atom(&self) -> bool {
        match self.peek() {
            Some(Token::Ident(s)) => !is_infix_keyword(s) && !is_binder_keyword(s),
            Some(Token::Int(_)) | Some(Token::LParen) | Some(Token::LBrace) => true,
            _ => false,
        }
    }

    fn postfix(&mut self) -> Result<Form, ParseError> {
        let mut e = self.atom()?;
        while self.eat(&Token::DotDot) {
            match self.next() {
                Some(Token::Ident(field)) => {
                    e = Form::app(Form::v(&field), vec![e]);
                }
                _ => return Err(self.err("expected field name after `..`")),
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Form, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Form::IntLit(n))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let f = self.form()?;
                self.expect(&Token::RParen)?;
                Ok(f)
            }
            Some(Token::LBrace) => self.set_display(),
            Some(Token::Percent) => {
                // Lambdas are atoms only when parenthesized, but accept bare
                // ones in argument-free positions for convenience.
                self.form()
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "True" => Ok(Form::tt()),
                    "False" => Ok(Form::ff()),
                    "null" => Ok(Form::Null),
                    "old" => {
                        let inner = self.postfix()?;
                        Ok(Form::Old(std::rc::Rc::new(inner)))
                    }
                    "card" => {
                        let inner = self.postfix()?;
                        Ok(Form::card(inner))
                    }
                    "tree" => {
                        self.expect(&Token::LBracket)?;
                        let mut fields = Vec::new();
                        loop {
                            match self.next() {
                                Some(Token::Ident(f)) => fields.push(Form::v(&f)),
                                _ => return Err(self.err("expected field name in tree [...]")),
                            }
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RBracket)?;
                        Ok(Form::Tree(fields))
                    }
                    _ => Ok(Form::v(&name)),
                }
            }
            Some(t) => Err(self.err(&format!("unexpected token `{t}`"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// `{}` | `{e1, ..., en}` | `{x. P}`.
    fn set_display(&mut self) -> Result<Form, ParseError> {
        self.expect(&Token::LBrace)?;
        if self.eat(&Token::RBrace) {
            return Ok(Form::EmptySet);
        }
        // Comprehension: `{ IDENT . form }` — detect by lookahead before
        // committing to expression parsing.
        if let (Some(Token::Ident(name)), Some(Token::Dot)) = (self.peek(), self.peek2()) {
            let name = name.clone();
            self.pos += 2;
            let body = self.form()?;
            self.expect(&Token::RBrace)?;
            return Ok(Form::Compr(
                Symbol::intern(&name),
                unknown_sort(),
                std::rc::Rc::new(body),
            ));
        }
        let mut elems = vec![self.form()?];
        while self.eat(&Token::Comma) {
            elems.push(self.form()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(Form::FiniteSet(elems))
    }

    // ---- sorts --------------------------------------------------------------

    pub(crate) fn sort(&mut self) -> Result<Sort, ParseError> {
        let first = self.sort_base()?;
        if self.eat(&Token::FatArrow) {
            let rest = self.sort()?;
            Ok(match rest {
                Sort::Fun(mut args, ret) => {
                    args.insert(0, first);
                    Sort::Fun(args, ret)
                }
                other => Sort::Fun(vec![first], Box::new(other)),
            })
        } else {
            Ok(first)
        }
    }

    fn sort_base(&mut self) -> Result<Sort, ParseError> {
        match self.next() {
            Some(Token::Ident(name)) => match name.as_str() {
                "bool" => Ok(Sort::Bool),
                "int" => Ok(Sort::Int),
                "obj" => Ok(Sort::Obj),
                "objset" => Ok(Sort::objset()),
                "intset" => Ok(Sort::intset()),
                other => Err(self.err(&format!("unknown sort `{other}`"))),
            },
            Some(Token::LParen) => {
                let s = self.sort()?;
                self.expect(&Token::RParen)?;
                Ok(s)
            }
            _ => Err(self.err("expected a sort")),
        }
    }
}

/// Keywords that may not be used as plain variables in binder positions.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "ALL" | "EX" | "Un" | "Int" | "True" | "False" | "null" | "old" | "card" | "tree"
    )
}

/// Identifiers acting as infix operators.
fn is_infix_keyword(s: &str) -> bool {
    matches!(s, "Un" | "Int")
}

/// Identifiers that begin binding forms (cannot start an application arg).
fn is_binder_keyword(s: &str) -> bool {
    matches!(s, "ALL" | "EX")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::{sym, QKind};

    fn p(src: &str) -> Form {
        parse_form(src).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    #[test]
    fn atoms() {
        assert_eq!(p("True"), Form::tt());
        assert_eq!(p("False"), Form::ff());
        assert_eq!(p("null"), Form::Null);
        assert_eq!(p("{}"), Form::EmptySet);
        assert_eq!(p("42"), Form::IntLit(42));
        assert_eq!(p("-7"), Form::IntLit(-7));
        assert_eq!(p("content"), Form::v("content"));
    }

    #[test]
    fn figure1_ensures_add() {
        // ensures "content = old content Un {o}"
        let f = p("content = old content Un {o}");
        let expected = Form::binop(
            BinOp::Eq,
            Form::v("content"),
            Form::binop(
                BinOp::Union,
                Form::Old(std::rc::Rc::new(Form::v("content"))),
                Form::FiniteSet(vec![Form::v("o")]),
            ),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn figure1_requires_add() {
        let f = p("o ~: content & o ~= null");
        let expected = Form::And(vec![
            Form::not(Form::elem(Form::v("o"), Form::v("content"))),
            Form::ne(Form::v("o"), Form::Null),
        ]);
        assert_eq!(f, expected);
    }

    #[test]
    fn figure1_result_iff() {
        let f = p("result = (content = {})");
        let expected = Form::binop(
            BinOp::Eq,
            Form::v("result"),
            Form::binop(BinOp::Eq, Form::v("content"), Form::EmptySet),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn figure2_invariant() {
        let f = p("init --> a ~= null & b ~= null & a..List.content Int b..List.content = {}");
        match f {
            Form::Binop(BinOp::Implies, lhs, rhs) => {
                assert_eq!(*lhs, Form::v("init"));
                match rhs.as_ref() {
                    Form::And(parts) => {
                        assert_eq!(parts.len(), 3);
                        // Third conjunct: (content a) Int (content b) = {}
                        match &parts[2] {
                            Form::Binop(BinOp::Eq, l, r) => {
                                assert_eq!(r.as_ref(), &Form::EmptySet);
                                match l.as_ref() {
                                    Form::Binop(BinOp::Inter, x, _) => {
                                        assert!(x
                                            .as_app_of(Symbol::intern("List.content"))
                                            .is_some());
                                    }
                                    other => panic!("expected Int, got {other:?}"),
                                }
                            }
                            other => panic!("expected equality, got {other:?}"),
                        }
                    }
                    other => panic!("expected conjunction, got {other:?}"),
                }
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn figure3_nodes_comprehension() {
        let f = p("{ n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}");
        match &f {
            Form::Compr(x, _, body) => {
                assert_eq!(x.as_str(), "n");
                match body.as_ref() {
                    Form::And(parts) => {
                        assert_eq!(parts.len(), 2);
                        let args = parts[1]
                            .as_app_of(Symbol::intern(sym::RTRANCL))
                            .expect("rtrancl_pt application");
                        assert_eq!(args.len(), 3);
                        assert!(matches!(args[0], Form::Lambda(_, _)));
                        assert_eq!(args[1], Form::v("first"));
                        assert_eq!(args[2], Form::v("n"));
                    }
                    other => panic!("expected conjunction, got {other:?}"),
                }
            }
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn figure3_content_comprehension() {
        let f = p("{x. EX n. x = n..Node.data & n : nodes}");
        match &f {
            Form::Compr(x, _, body) => {
                assert_eq!(x.as_str(), "x");
                assert!(matches!(body.as_ref(), Form::Quant(QKind::Ex, _, _)));
            }
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn figure3_tree_invariant() {
        let f = p("tree [List.first, Node.next]");
        assert_eq!(
            f,
            Form::Tree(vec![Form::v("List.first"), Form::v("Node.next")])
        );
    }

    #[test]
    fn figure3_first_invariant() {
        let f = p("first = null | (first : Object.alloc & \
                   (ALL n. n..Node.next ~= first & \
                   (n ~= this --> n..List.first ~= first)))");
        match &f {
            Form::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected disjunction, got {other:?}"),
        }
    }

    #[test]
    fn figure3_no_sharing_invariant() {
        let f = p("ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1=n2");
        match &f {
            Form::Quant(QKind::All, binders, body) => {
                assert_eq!(binders.len(), 2);
                assert!(matches!(body.as_ref(), Form::Binop(BinOp::Implies, _, _)));
            }
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = p("a | b & c");
        assert_eq!(
            f,
            Form::Or(vec![
                Form::v("a"),
                Form::And(vec![Form::v("b"), Form::v("c")])
            ])
        );
    }

    #[test]
    fn implication_right_assoc() {
        let f = p("a --> b --> c");
        match f {
            Form::Binop(BinOp::Implies, _, rhs) => {
                assert!(matches!(rhs.as_ref(), Form::Binop(BinOp::Implies, _, _)));
            }
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn quantifier_scopes_to_end() {
        let f = p("ALL x. x : S --> x : T");
        match f {
            Form::Quant(QKind::All, _, body) => {
                assert!(matches!(body.as_ref(), Form::Binop(BinOp::Implies, _, _)));
            }
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn sorted_binder() {
        let f = p("ALL k::int. k <= k");
        match f {
            Form::Quant(QKind::All, binders, _) => {
                assert_eq!(binders[0].1, Sort::Int);
            }
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn gt_ge_normalized() {
        assert_eq!(p("a > b"), p("b < a"));
        assert_eq!(p("a >= b"), p("b <= a"));
    }

    #[test]
    fn card_and_arith() {
        let f = p("card (S Un T) <= card S + card T");
        match f {
            Form::Binop(BinOp::Le, lhs, rhs) => {
                assert!(matches!(lhs.as_ref(), Form::Unop(UnOp::Card, _)));
                assert!(matches!(rhs.as_ref(), Form::Binop(BinOp::Add, _, _)));
            }
            other => panic!("expected <=, got {other:?}"),
        }
    }

    #[test]
    fn finite_set_multiple() {
        let f = p("{a, b, c}");
        assert_eq!(
            f,
            Form::FiniteSet(vec![Form::v("a"), Form::v("b"), Form::v("c")])
        );
    }

    #[test]
    fn application_juxtaposition() {
        let f = p("f x y");
        match f {
            Form::App(head, args) => {
                assert_eq!(*head, Form::v("f"));
                assert_eq!(args, vec![Form::v("x"), Form::v("y")]);
            }
            other => panic!("expected application, got {other:?}"),
        }
    }

    #[test]
    fn subset_via_le() {
        // Parser keeps Le; elaboration will turn it into Subseteq.
        let f = p("S <= T");
        assert_eq!(f, Form::binop(BinOp::Le, Form::v("S"), Form::v("T")));
    }

    #[test]
    fn sorts() {
        assert_eq!(parse_sort("objset").unwrap(), Sort::objset());
        assert_eq!(parse_sort("bool").unwrap(), Sort::Bool);
        assert_eq!(
            parse_sort("obj => obj => bool").unwrap(),
            Sort::Fun(vec![Sort::Obj, Sort::Obj], Box::new(Sort::Bool))
        );
        assert_eq!(parse_sort("(obj => int)").unwrap(), Sort::field(Sort::Int));
        assert!(parse_sort("wibble").is_err());
    }

    #[test]
    fn error_messages() {
        assert!(parse_form("a &").is_err());
        assert!(parse_form("(a").is_err());
        assert!(parse_form("{a, }").is_err());
        assert!(parse_form("ALL . x").is_err());
    }

    #[test]
    fn old_binds_tightly() {
        // old content Un {o}  ==  (old content) Un {o}
        let f = p("old content Un {o}");
        match f {
            Form::Binop(BinOp::Union, lhs, _) => {
                assert!(matches!(lhs.as_ref(), Form::Old(_)));
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn old_of_field_access() {
        // old (x..Node.next)
        let f = p("old (x..Node.next)");
        match f {
            Form::Old(inner) => {
                assert!(inner.as_app_of(Symbol::intern("Node.next")).is_some());
            }
            other => panic!("expected old, got {other:?}"),
        }
    }
}
