//! The Jahob specification logic: a subset of Isabelle/HOL.
//!
//! Jahob annotations (preconditions, postconditions, invariants, abstraction
//! functions) are formulas in a simply-typed higher-order logic whose concrete
//! syntax follows Isabelle conventions: `&`, `|`, `-->`, `~`, `ALL x. P`,
//! `EX x. P`, set operators `Un`, `Int`, `-`, membership `:` / `~:`,
//! comprehensions `{x. P}`, lambdas `% x y. e`, field dereference `x..f`,
//! reflexive-transitive closure `rtrancl_pt`, and the `tree [f1, f2]`
//! backbone predicate.
//!
//! This crate provides:
//!
//! * the term AST ([`form::Form`]) and sort language ([`sort::Sort`]),
//! * a lexer/parser for the annotation syntax ([`parser`]),
//! * a pretty-printer that round-trips with the parser ([`printer`]),
//! * sort inference ([`infer`]) with the builtin signature of the logic,
//! * logical transformations ([`transform`]): beta reduction, simplification,
//!   negation normal form, prenexing, skolemization, conjunct splitting,
//! * a finite-model evaluator ([`model`]) giving the logic its reference
//!   semantics — used as a differential-testing oracle for every decision
//!   procedure in the workspace and as the counterexample checker of the
//!   bounded model finder.

pub mod form;
pub mod infer;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod printer;
pub mod sequent;
pub mod sort;
pub mod transform;

pub use form::{BinOp, Form, QKind, UnOp};
pub use infer::{SortCx, SortError};
pub use model::{Model, Value};
pub use parser::{parse_form, parse_sort, ParseError};
pub use sort::Sort;

use jahob_util::Symbol;

/// Convenience: parse a formula from the annotation syntax, panicking on
/// error. Intended for tests and examples, not production parsing.
pub fn form(src: &str) -> Form {
    parse_form(src).unwrap_or_else(|e| panic!("parse error in {src:?}: {e}"))
}

/// Convenience: a variable term.
pub fn var(name: &str) -> Form {
    Form::Var(Symbol::intern(name))
}
