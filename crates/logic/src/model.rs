//! Finite-model semantics for the specification logic.
//!
//! A [`Model`] interprets symbols over a finite universe of objects
//! (`0` is `null`, `1..=universe` are proper objects) and a bounded integer
//! range for integer quantification. Evaluation implements the standard
//! semantics of the logic, including `rtrancl_pt` (by graph search),
//! `fieldWrite` (function update), comprehensions (by enumeration), and the
//! `tree` backbone predicate (forest check).
//!
//! The evaluator is the *reference semantics* for every decision procedure in
//! the workspace: property tests sample random small models and check that
//! whenever a prover claims validity, no sampled model falsifies the formula,
//! and exhaustive enumeration over tiny universes ([`enumerate_models`])
//! provides completeness spot checks. It is also the counterexample checker
//! of the bounded model finder (`jahob-models`).

use crate::form::{sym, BinOp, Form, QKind, UnOp};
use crate::sort::Sort;
use jahob_util::{FxHashMap, Symbol};
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A first-order "key" value: what can be a set element or a function-table
/// argument. Totally ordered so sets are canonical.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Key {
    Bool(bool),
    Int(i64),
    /// Object id; `0` is null.
    Obj(u32),
    Set(BTreeSet<Key>),
}

/// A semantic value.
#[derive(Clone, Debug)]
pub enum Value {
    Bool(bool),
    Int(i64),
    /// Object id; `0` is null.
    Obj(u32),
    Set(BTreeSet<Key>),
    Fun(Rc<FunV>),
}

/// A function value.
#[derive(Clone, Debug)]
pub enum FunV {
    /// Explicit table with a default result.
    Table {
        arity: usize,
        map: FxHashMap<Vec<Key>, Value>,
        default: Box<Value>,
    },
    /// A lambda closure over an environment.
    Closure {
        binders: Vec<(Symbol, Sort)>,
        body: Form,
        env: Vec<(Symbol, Value)>,
    },
    /// `fieldWrite base at := val`.
    Update {
        base: Rc<FunV>,
        at: Vec<Key>,
        val: Value,
    },
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol had no interpretation.
    Unbound(Symbol),
    /// A value of the wrong kind reached an operation.
    Kind(&'static str),
    /// Quantification domain too large to enumerate.
    TooBig(&'static str),
    /// Construct outside the evaluable fragment.
    Unsupported(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(s) => write!(f, "symbol `{s}` has no interpretation"),
            EvalError::Kind(what) => write!(f, "kind error: {what}"),
            EvalError::TooBig(what) => write!(f, "domain too large: {what}"),
            EvalError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Value {
    /// Convert to a first-order key. Functions are not keys.
    pub fn key(&self) -> Result<Key, EvalError> {
        match self {
            Value::Bool(b) => Ok(Key::Bool(*b)),
            Value::Int(n) => Ok(Key::Int(*n)),
            Value::Obj(o) => Ok(Key::Obj(*o)),
            Value::Set(s) => Ok(Key::Set(s.clone())),
            Value::Fun(_) => Err(EvalError::Kind("function used as first-order value")),
        }
    }

    fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(EvalError::Kind("expected bool")),
        }
    }

    fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(n) => Ok(*n),
            _ => Err(EvalError::Kind("expected int")),
        }
    }

    fn as_obj(&self) -> Result<u32, EvalError> {
        match self {
            Value::Obj(o) => Ok(*o),
            _ => Err(EvalError::Kind("expected obj")),
        }
    }

    fn as_set(&self) -> Result<&BTreeSet<Key>, EvalError> {
        match self {
            Value::Set(s) => Ok(s),
            _ => Err(EvalError::Kind("expected set")),
        }
    }
}

/// A finite interpretation.
#[derive(Clone, Debug)]
pub struct Model {
    /// Number of proper (non-null) objects; object ids are `0..=universe`
    /// with `0` = null.
    pub universe: u32,
    /// Inclusive range that integer quantifiers/comprehensions enumerate.
    pub int_range: (i64, i64),
    /// Interpretations of free symbols (including fields as `Fun`s).
    pub interp: FxHashMap<Symbol, Value>,
    /// Interpretations for the pre-state (`old e`); falls back to `interp`.
    pub old_interp: Option<FxHashMap<Symbol, Value>>,
}

impl Model {
    /// An empty model over `universe` proper objects.
    pub fn new(universe: u32) -> Self {
        Model {
            universe,
            int_range: (-4, 4),
            interp: FxHashMap::default(),
            old_interp: None,
        }
    }

    /// Set the interpretation of a symbol.
    pub fn set(&mut self, name: &str, value: Value) -> &mut Self {
        self.interp.insert(Symbol::intern(name), value);
        self
    }

    /// Interpret a unary object field by a vector `table[i] = f(i)` over all
    /// object ids `0..=universe` (entry 0 is `f(null)`).
    pub fn set_obj_field(&mut self, name: &str, table: &[u32]) -> &mut Self {
        assert_eq!(table.len() as u32, self.universe + 1);
        let mut map = FxHashMap::default();
        for (i, &target) in table.iter().enumerate() {
            map.insert(vec![Key::Obj(i as u32)], Value::Obj(target));
        }
        self.set(
            name,
            Value::Fun(Rc::new(FunV::Table {
                arity: 1,
                map,
                default: Box::new(Value::Obj(0)),
            })),
        )
    }

    /// Interpret a set-of-objects symbol.
    pub fn set_objset(&mut self, name: &str, elems: &[u32]) -> &mut Self {
        let set: BTreeSet<Key> = elems.iter().map(|&o| Key::Obj(o)).collect();
        self.set(name, Value::Set(set))
    }

    /// All object ids including null.
    fn objs(&self) -> impl Iterator<Item = u32> + '_ {
        0..=self.universe
    }

    /// Evaluate a closed formula to a boolean.
    pub fn eval_bool(&self, form: &Form) -> Result<bool, EvalError> {
        self.eval(form)?.as_bool()
    }

    /// Evaluate a closed term.
    pub fn eval(&self, form: &Form) -> Result<Value, EvalError> {
        let mut env = Vec::new();
        self.eval_in(form, &mut env, false)
    }

    fn lookup(
        &self,
        name: Symbol,
        env: &[(Symbol, Value)],
        in_old: bool,
    ) -> Result<Value, EvalError> {
        for (binder, value) in env.iter().rev() {
            if *binder == name {
                return Ok(value.clone());
            }
        }
        if in_old {
            if let Some(old) = &self.old_interp {
                if let Some(v) = old.get(&name) {
                    return Ok(v.clone());
                }
            }
        }
        self.interp
            .get(&name)
            .cloned()
            .ok_or(EvalError::Unbound(name))
    }

    /// Domain of a sort, as values, for quantifier enumeration.
    fn domain(&self, sort: &Sort) -> Result<Vec<Value>, EvalError> {
        match sort {
            Sort::Bool => Ok(vec![Value::Bool(false), Value::Bool(true)]),
            Sort::Obj => Ok(self.objs().map(Value::Obj).collect()),
            Sort::Int => {
                let (lo, hi) = self.int_range;
                if hi - lo > 64 {
                    return Err(EvalError::TooBig("int range"));
                }
                Ok((lo..=hi).map(Value::Int).collect())
            }
            Sort::Set(inner) => {
                let base = self.domain(inner)?;
                if base.len() > 12 {
                    return Err(EvalError::TooBig("powerset"));
                }
                let keys: Vec<Key> = base.iter().map(|v| v.key()).collect::<Result<_, _>>()?;
                let mut out = Vec::with_capacity(1 << keys.len());
                for mask in 0u32..(1 << keys.len()) {
                    let set: BTreeSet<Key> = keys
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, k)| k.clone())
                        .collect();
                    out.push(Value::Set(set));
                }
                Ok(out)
            }
            Sort::Fun(_, _) => Err(EvalError::Unsupported("quantification over functions")),
            // Unelaborated binders default to `obj`, matching sort inference.
            Sort::Var(_) => Ok(self.objs().map(Value::Obj).collect()),
        }
    }

    fn eval_in(
        &self,
        form: &Form,
        env: &mut Vec<(Symbol, Value)>,
        in_old: bool,
    ) -> Result<Value, EvalError> {
        match form {
            Form::Var(name) => self.lookup(*name, env, in_old),
            Form::IntLit(n) => Ok(Value::Int(*n)),
            Form::BoolLit(b) => Ok(Value::Bool(*b)),
            Form::Null => Ok(Value::Obj(0)),
            Form::EmptySet => Ok(Value::Set(BTreeSet::new())),
            Form::FiniteSet(elems) => {
                let mut set = BTreeSet::new();
                for e in elems {
                    set.insert(self.eval_in(e, env, in_old)?.key()?);
                }
                Ok(Value::Set(set))
            }
            Form::Unop(op, inner) => {
                let v = self.eval_in(inner, env, in_old)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                    UnOp::Neg => Ok(Value::Int(-v.as_int()?)),
                    UnOp::Card => Ok(Value::Int(v.as_set()?.len() as i64)),
                }
            }
            Form::And(parts) => {
                for p in parts {
                    if !self.eval_in(p, env, in_old)?.as_bool()? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Form::Or(parts) => {
                for p in parts {
                    if self.eval_in(p, env, in_old)?.as_bool()? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Form::Binop(op, lhs, rhs) => self.eval_binop(*op, lhs, rhs, env, in_old),
            Form::Old(inner) => self.eval_in(inner, env, true),
            Form::Ite(c, t, e) => {
                if self.eval_in(c, env, in_old)?.as_bool()? {
                    self.eval_in(t, env, in_old)
                } else {
                    self.eval_in(e, env, in_old)
                }
            }
            Form::App(head, args) => {
                // Interpreted heads first.
                if let Form::Var(name) = head.as_ref() {
                    match name.as_str() {
                        sym::RTRANCL if args.len() == 3 => {
                            return self.eval_rtrancl(&args[0], &args[1], &args[2], env, in_old);
                        }
                        sym::FIELD_WRITE if args.len() >= 3 => {
                            let f = self.eval_in(&args[0], env, in_old)?;
                            let at = self.eval_in(&args[1], env, in_old)?.key()?;
                            let val = self.eval_in(&args[2], env, in_old)?;
                            let base = match f {
                                Value::Fun(fun) => fun,
                                _ => return Err(EvalError::Kind("fieldWrite of non-function")),
                            };
                            let updated = Value::Fun(Rc::new(FunV::Update {
                                base,
                                at: vec![at],
                                val,
                            }));
                            if args.len() == 3 {
                                return Ok(updated);
                            }
                            // Over-application: apply the updated function to
                            // the remaining arguments.
                            let rest: Vec<Value> = args[3..]
                                .iter()
                                .map(|a| self.eval_in(a, env, in_old))
                                .collect::<Result<_, _>>()?;
                            return self.apply(&updated, &rest, in_old);
                        }
                        sym::FIELD_READ if args.len() >= 2 => {
                            let f = self.eval_in(&args[0], env, in_old)?;
                            let rest: Vec<Value> = args[1..]
                                .iter()
                                .map(|a| self.eval_in(a, env, in_old))
                                .collect::<Result<_, _>>()?;
                            return self.apply(&f, &rest, in_old);
                        }
                        _ => {}
                    }
                }
                let f = self.eval_in(head, env, in_old)?;
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_in(a, env, in_old))
                    .collect::<Result<_, _>>()?;
                self.apply(&f, &vals, in_old)
            }
            Form::Quant(kind, binders, body) => self.eval_quant(*kind, binders, body, env, in_old),
            Form::Lambda(binders, body) => Ok(Value::Fun(Rc::new(FunV::Closure {
                binders: binders.clone(),
                body: body.as_ref().clone(),
                env: env.clone(),
            }))),
            Form::Compr(x, sort, body) => {
                let mut set = BTreeSet::new();
                for v in self.domain(sort)? {
                    env.push((*x, v.clone()));
                    let holds = self.eval_in(body, env, in_old)?.as_bool()?;
                    env.pop();
                    if holds {
                        set.insert(v.key()?);
                    }
                }
                Ok(Value::Set(set))
            }
            Form::Tree(fields) => self.eval_tree(fields, env, in_old),
        }
    }

    fn eval_binop(
        &self,
        op: BinOp,
        lhs: &Form,
        rhs: &Form,
        env: &mut Vec<(Symbol, Value)>,
        in_old: bool,
    ) -> Result<Value, EvalError> {
        // Short-circuiting forms first.
        match op {
            BinOp::Implies => {
                let l = self.eval_in(lhs, env, in_old)?.as_bool()?;
                if !l {
                    return Ok(Value::Bool(true));
                }
                return self.eval_in(rhs, env, in_old);
            }
            BinOp::Iff => {
                let l = self.eval_in(lhs, env, in_old)?.as_bool()?;
                let r = self.eval_in(rhs, env, in_old)?.as_bool()?;
                return Ok(Value::Bool(l == r));
            }
            _ => {}
        }
        let l = self.eval_in(lhs, env, in_old)?;
        let r = self.eval_in(rhs, env, in_old)?;
        match op {
            BinOp::Eq => self.values_equal(&l, &r, in_old).map(Value::Bool),
            BinOp::Elem => Ok(Value::Bool(r.as_set()?.contains(&l.key()?))),
            BinOp::Lt => Ok(Value::Bool(l.as_int()? < r.as_int()?)),
            BinOp::Le => {
                // Tolerate pre-elaboration terms: `<=` on sets is subset.
                match (&l, &r) {
                    (Value::Set(a), Value::Set(b)) => Ok(Value::Bool(a.is_subset(b))),
                    _ => Ok(Value::Bool(l.as_int()? <= r.as_int()?)),
                }
            }
            BinOp::Subseteq => Ok(Value::Bool(l.as_set()?.is_subset(r.as_set()?))),
            BinOp::Add => Ok(Value::Int(l.as_int()? + r.as_int()?)),
            BinOp::Sub => match (&l, &r) {
                (Value::Set(a), Value::Set(b)) => {
                    Ok(Value::Set(a.difference(b).cloned().collect()))
                }
                _ => Ok(Value::Int(l.as_int()? - r.as_int()?)),
            },
            BinOp::Mul => Ok(Value::Int(l.as_int()? * r.as_int()?)),
            BinOp::Union => Ok(Value::Set(
                l.as_set()?.union(r.as_set()?).cloned().collect(),
            )),
            BinOp::Inter => Ok(Value::Set(
                l.as_set()?.intersection(r.as_set()?).cloned().collect(),
            )),
            BinOp::Diff => Ok(Value::Set(
                l.as_set()?.difference(r.as_set()?).cloned().collect(),
            )),
            BinOp::Implies | BinOp::Iff => unreachable!("handled above"),
        }
    }

    /// Equality; functions compare extensionally over the object domain
    /// (unary functions only — sufficient for field framing conditions).
    fn values_equal(&self, l: &Value, r: &Value, in_old: bool) -> Result<bool, EvalError> {
        match (l, r) {
            (Value::Fun(_), Value::Fun(_)) => {
                for o in self.objs() {
                    let a = self.apply(l, &[Value::Obj(o)], in_old)?;
                    let b = self.apply(r, &[Value::Obj(o)], in_old)?;
                    if !self.values_equal(&a, &b, in_old)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            _ => Ok(l.key()? == r.key()?),
        }
    }

    fn apply(&self, f: &Value, args: &[Value], in_old: bool) -> Result<Value, EvalError> {
        let fun = match f {
            Value::Fun(fun) => fun,
            _ => return Err(EvalError::Kind("application of non-function")),
        };
        self.apply_fun(fun, args, in_old)
    }

    fn apply_fun(&self, fun: &FunV, args: &[Value], in_old: bool) -> Result<Value, EvalError> {
        match fun {
            FunV::Table {
                arity,
                map,
                default,
            } => {
                if args.len() != *arity {
                    return Err(EvalError::Kind("arity mismatch in table application"));
                }
                let keys: Vec<Key> = args.iter().map(Value::key).collect::<Result<_, _>>()?;
                Ok(map
                    .get(&keys)
                    .cloned()
                    .unwrap_or_else(|| (**default).clone()))
            }
            FunV::Closure { binders, body, env } => {
                if args.len() < binders.len() {
                    return Err(EvalError::Unsupported("partial application of closure"));
                }
                let mut inner_env = env.clone();
                for ((name, _), arg) in binders.iter().zip(args.iter()) {
                    inner_env.push((*name, arg.clone()));
                }
                let result = self.eval_in(body, &mut inner_env, in_old)?;
                if args.len() == binders.len() {
                    Ok(result)
                } else {
                    self.apply(&result, &args[binders.len()..], in_old)
                }
            }
            FunV::Update { base, at, val } => {
                let keys: Vec<Key> = args.iter().map(Value::key).collect::<Result<_, _>>()?;
                if keys == *at {
                    Ok(val.clone())
                } else {
                    self.apply_fun(base, args, in_old)
                }
            }
        }
    }

    fn eval_rtrancl(
        &self,
        pred: &Form,
        from: &Form,
        to: &Form,
        env: &mut Vec<(Symbol, Value)>,
        in_old: bool,
    ) -> Result<Value, EvalError> {
        let p = self.eval_in(pred, env, in_old)?;
        let a = self.eval_in(from, env, in_old)?.as_obj()?;
        let b = self.eval_in(to, env, in_old)?.as_obj()?;
        if a == b {
            return Ok(Value::Bool(true));
        }
        // BFS over object ids.
        let n = (self.universe + 1) as usize;
        let mut seen = vec![false; n];
        let mut stack = vec![a];
        seen[a as usize] = true;
        while let Some(x) = stack.pop() {
            for y in self.objs() {
                if seen[y as usize] {
                    continue;
                }
                let related = self
                    .apply(&p, &[Value::Obj(x), Value::Obj(y)], in_old)?
                    .as_bool()?;
                if related {
                    if y == b {
                        return Ok(Value::Bool(true));
                    }
                    seen[y as usize] = true;
                    stack.push(y);
                }
            }
        }
        Ok(Value::Bool(false))
    }

    /// `tree [f1, ..., fk]`: the union graph of the fields (ignoring edges
    /// from or to null) is a forest: no node has two incoming edges and there
    /// are no cycles.
    fn eval_tree(
        &self,
        fields: &[Form],
        env: &mut Vec<(Symbol, Value)>,
        in_old: bool,
    ) -> Result<Value, EvalError> {
        let n = (self.universe + 1) as usize;
        let mut indegree = vec![0u32; n];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for field in fields {
            let f = self.eval_in(field, env, in_old)?;
            for x in self.objs() {
                if x == 0 {
                    continue;
                }
                let y = self.apply(&f, &[Value::Obj(x)], in_old)?.as_obj()?;
                if y != 0 {
                    indegree[y as usize] += 1;
                    edges.push((x, y));
                }
            }
        }
        if indegree.iter().any(|&d| d > 1) {
            return Ok(Value::Bool(false));
        }
        // Cycle check: repeatedly remove nodes with indegree zero.
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(x, y) in &edges {
            out[x as usize].push(y);
        }
        let mut queue: Vec<u32> = (1..=self.universe)
            .filter(|&x| indegree[x as usize] == 0)
            .collect();
        let mut removed = 0u32;
        while let Some(x) = queue.pop() {
            removed += 1;
            for &y in &out[x as usize] {
                indegree[y as usize] -= 1;
                if indegree[y as usize] == 0 {
                    queue.push(y);
                }
            }
        }
        Ok(Value::Bool(removed == self.universe))
    }

    fn eval_quant(
        &self,
        kind: QKind,
        binders: &[(Symbol, Sort)],
        body: &Form,
        env: &mut Vec<(Symbol, Value)>,
        in_old: bool,
    ) -> Result<Value, EvalError> {
        fn rec(
            model: &Model,
            kind: QKind,
            binders: &[(Symbol, Sort)],
            body: &Form,
            env: &mut Vec<(Symbol, Value)>,
            in_old: bool,
        ) -> Result<bool, EvalError> {
            let Some(((name, sort), rest)) = binders.split_first() else {
                return model.eval_in(body, env, in_old)?.as_bool();
            };
            for v in model.domain(sort)? {
                env.push((*name, v));
                let inner = rec(model, kind, rest, body, env, in_old)?;
                env.pop();
                match kind {
                    QKind::All if !inner => return Ok(false),
                    QKind::Ex if inner => return Ok(true),
                    _ => {}
                }
            }
            Ok(kind == QKind::All)
        }
        rec(self, kind, binders, body, env, in_old).map(Value::Bool)
    }
}

/// A tiny deterministic PRNG (xorshift64*) so model sampling needs no
/// external crates and is reproducible from a seed.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

/// Generate a random value of `sort` over the model's domains.
pub fn random_value(rng: &mut Rng64, universe: u32, int_range: (i64, i64), sort: &Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(rng.chance(1, 2)),
        Sort::Int => {
            let (lo, hi) = int_range;
            Value::Int(lo + rng.below((hi - lo + 1) as u64) as i64)
        }
        Sort::Obj => Value::Obj(rng.below(universe as u64 + 1) as u32),
        Sort::Set(inner) => {
            let mut set = BTreeSet::new();
            let candidates: Vec<Key> = match inner.as_ref() {
                Sort::Obj => (0..=universe).map(Key::Obj).collect(),
                Sort::Int => (int_range.0..=int_range.1).map(Key::Int).collect(),
                _ => Vec::new(),
            };
            for k in candidates {
                if rng.chance(1, 2) {
                    set.insert(k);
                }
            }
            Value::Set(set)
        }
        Sort::Fun(args, ret) => {
            // Materialize a table over all argument combinations (only
            // feasible for small arities/universes — the usage here).
            let mut combos: Vec<Vec<Key>> = vec![Vec::new()];
            for arg_sort in args {
                let domain: Vec<Key> = match arg_sort {
                    Sort::Obj => (0..=universe).map(Key::Obj).collect(),
                    Sort::Int => (int_range.0..=int_range.1).map(Key::Int).collect(),
                    Sort::Bool => vec![Key::Bool(false), Key::Bool(true)],
                    _ => vec![],
                };
                let mut next = Vec::new();
                for combo in &combos {
                    for d in &domain {
                        let mut c = combo.clone();
                        c.push(d.clone());
                        next.push(c);
                    }
                }
                combos = next;
            }
            let mut map = FxHashMap::default();
            for combo in combos {
                map.insert(combo, random_value(rng, universe, int_range, ret));
            }
            let default = random_value(rng, universe, int_range, ret);
            Value::Fun(Rc::new(FunV::Table {
                arity: args.len(),
                map,
                default: Box::new(default),
            }))
        }
        Sort::Var(_) => Value::Obj(0),
    }
}

/// Build a random model interpreting the given symbols.
pub fn random_model(seed: u64, universe: u32, symbols: &[(Symbol, Sort)]) -> Model {
    let mut rng = Rng64::new(seed);
    let mut model = Model::new(universe);
    for (name, sort) in symbols {
        let v = random_value(&mut rng, universe, model.int_range, sort);
        model.interp.insert(*name, v);
    }
    // Object.alloc defaults to all proper objects.
    model
        .interp
        .entry(Symbol::intern(sym::ALLOC))
        .or_insert_with(|| Value::Set((1..=universe).map(Key::Obj).collect()));
    model
}

/// Exhaustively enumerate all interpretations of `symbols` over a tiny
/// universe, invoking `visit` on each; stops early (returning `false`) when
/// `visit` returns `false`. Integer symbols range over `int_range`.
///
/// The number of models is the product of per-symbol domain sizes — callers
/// keep `universe` ≤ 2 and symbol counts small.
pub fn enumerate_models(
    universe: u32,
    int_range: (i64, i64),
    symbols: &[(Symbol, Sort)],
    visit: &mut dyn FnMut(&Model) -> bool,
) -> bool {
    let mut model = Model::new(universe);
    model.int_range = int_range;
    fn domain_values(universe: u32, int_range: (i64, i64), sort: &Sort) -> Vec<Value> {
        let m = {
            let mut m = Model::new(universe);
            m.int_range = int_range;
            m
        };
        match sort {
            Sort::Fun(args, ret) => {
                // All functions as tables: |ret|^(|arg1|*...*|argk|).
                let arg_domains: Vec<Vec<Key>> = args
                    .iter()
                    .map(|a| {
                        domain_values(universe, int_range, a)
                            .iter()
                            .map(|v| v.key().expect("first-order arg"))
                            .collect()
                    })
                    .collect();
                let mut combos: Vec<Vec<Key>> = vec![Vec::new()];
                for d in &arg_domains {
                    let mut next = Vec::new();
                    for combo in &combos {
                        for k in d {
                            let mut c = combo.clone();
                            c.push(k.clone());
                            next.push(c);
                        }
                    }
                    combos = next;
                }
                let ret_domain = domain_values(universe, int_range, ret);
                let mut tables: Vec<FxHashMap<Vec<Key>, Value>> = vec![FxHashMap::default()];
                for combo in &combos {
                    let mut next = Vec::new();
                    for table in &tables {
                        for rv in &ret_domain {
                            let mut t = table.clone();
                            t.insert(combo.clone(), rv.clone());
                            next.push(t);
                        }
                    }
                    tables = next;
                }
                tables
                    .into_iter()
                    .map(|map| {
                        Value::Fun(Rc::new(FunV::Table {
                            arity: args.len(),
                            map,
                            default: Box::new(Value::Obj(0)),
                        }))
                    })
                    .collect()
            }
            _ => m.domain(sort).expect("enumerable domain"),
        }
    }

    fn rec(
        model: &mut Model,
        universe: u32,
        int_range: (i64, i64),
        symbols: &[(Symbol, Sort)],
        visit: &mut dyn FnMut(&Model) -> bool,
    ) -> bool {
        let Some(((name, sort), rest)) = symbols.split_first() else {
            return visit(model);
        };
        for v in domain_values(universe, int_range, sort) {
            model.interp.insert(*name, v);
            if !rec(model, universe, int_range, rest, visit) {
                return false;
            }
        }
        model.interp.remove(name);
        true
    }
    rec(&mut model, universe, int_range, symbols, visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(src: &str) -> Form {
        parse_form(src).unwrap()
    }

    #[test]
    fn basic_boolean_evaluation() {
        let m = Model::new(2);
        assert!(m.eval_bool(&p("True")).unwrap());
        assert!(!m.eval_bool(&p("False")).unwrap());
        assert!(m.eval_bool(&p("True & (False --> True)")).unwrap());
        assert!(m.eval_bool(&p("1 + 1 = 2")).unwrap());
        assert!(m.eval_bool(&p("3 * 3 > 8")).unwrap());
    }

    #[test]
    fn set_operations() {
        let mut m = Model::new(3);
        m.set_objset("S", &[1, 2]);
        m.set_objset("T", &[2, 3]);
        assert!(m.eval_bool(&p("card (S Un T) = 3")).unwrap());
        assert!(m.eval_bool(&p("card (S Int T) = 1")).unwrap());
        assert!(m.eval_bool(&p("S Int T <= S")).unwrap());
        assert!(m.eval_bool(&p("S - T = {o1}")).is_err(), "o1 unbound");
        m.set("o1", Value::Obj(1));
        assert!(m.eval_bool(&p("S - T = {o1}")).unwrap());
    }

    #[test]
    fn quantifiers_over_objects_include_null() {
        let mut m = Model::new(2);
        m.set_objset("S", &[0, 1, 2]);
        assert!(m.eval_bool(&p("ALL x. x : S")).unwrap());
        m.set_objset("S", &[1, 2]);
        assert!(!m.eval_bool(&p("ALL x. x : S")).unwrap());
        assert!(m.eval_bool(&p("EX x. x ~: S")).unwrap());
    }

    #[test]
    fn integer_quantifiers_bounded() {
        let mut m = Model::new(0);
        m.int_range = (0, 3);
        assert!(m.eval_bool(&p("ALL k::int. k <= 3")).unwrap());
        assert!(m.eval_bool(&p("EX k::int. k = 2")).unwrap());
        assert!(!m.eval_bool(&p("EX k::int. k = 9")).unwrap());
    }

    #[test]
    fn field_access_and_rtrancl() {
        // List 1 -> 2 -> 3 -> null, with first = 1.
        let mut m = Model::new(3);
        m.set_obj_field("next", &[0, 2, 3, 0]);
        m.set("first", Value::Obj(1));
        let reach = p("rtrancl_pt (% x y. x..next = y) first n");
        for (target, expected) in [(0u32, false), (1, true), (2, true), (3, true)] {
            let mut m2 = m.clone();
            m2.set("n", Value::Obj(target));
            // Note: from 3 we step to null (0) — null IS reachable here.
            let expected = expected || target == 0;
            assert_eq!(
                m2.eval_bool(&reach).unwrap(),
                expected,
                "reachability of {target}"
            );
        }
    }

    #[test]
    fn comprehension_evaluates() {
        let mut m = Model::new(3);
        m.set_obj_field("next", &[0, 2, 3, 0]);
        m.set("first", Value::Obj(1));
        let nodes = p("{ n. n ~= null & rtrancl_pt (% x y. x..next = y) first n}");
        match m.eval(&nodes).unwrap() {
            Value::Set(s) => {
                assert_eq!(
                    s,
                    [Key::Obj(1), Key::Obj(2), Key::Obj(3)]
                        .into_iter()
                        .collect()
                );
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn figure3_content_abstraction() {
        // nodes {1,2}; data: 1->3, 2->4. content should be {3,4}.
        let mut m = Model::new(4);
        m.set_obj_field("next", &[0, 2, 0, 0, 0]);
        m.set_obj_field("data", &[0, 3, 4, 0, 0]);
        m.set("first", Value::Obj(1));
        m.set_objset("nodes", &[1, 2]);
        let content = p("{x. EX n. x = n..data & n : nodes}");
        match m.eval(&content).unwrap() {
            Value::Set(s) => assert_eq!(s, [Key::Obj(3), Key::Obj(4)].into_iter().collect()),
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn field_write_semantics() {
        let mut m = Model::new(2);
        m.set_obj_field("next", &[0, 2, 0]);
        m.set("a", Value::Obj(1));
        m.set("b", Value::Obj(2));
        // (fieldWrite next a b) applied elsewhere unchanged, at a gives b.
        assert!(m.eval_bool(&p("fieldWrite next a null a = null")).unwrap());
        assert!(m.eval_bool(&p("fieldWrite next a b b = null")).unwrap());
        assert!(m.eval_bool(&p("fieldWrite next a b a = b")).unwrap());
    }

    #[test]
    fn tree_predicate() {
        // Proper list: 1 -> 2 -> 3.
        let mut m = Model::new(3);
        m.set_obj_field("next", &[0, 2, 3, 0]);
        assert!(m.eval_bool(&p("tree [next]")).unwrap());
        // Cycle: 1 -> 2 -> 1.
        m.set_obj_field("next", &[0, 2, 1, 0]);
        assert!(!m.eval_bool(&p("tree [next]")).unwrap());
        // Sharing: 1 -> 3 and 2 -> 3.
        m.set_obj_field("next", &[0, 3, 3, 0]);
        assert!(!m.eval_bool(&p("tree [next]")).unwrap());
        // Two fields with sharing across them.
        m.set_obj_field("f", &[0, 3, 0, 0]);
        m.set_obj_field("g", &[0, 0, 3, 0]);
        assert!(!m.eval_bool(&p("tree [f, g]")).unwrap());
        // Two fields forming a forest.
        m.set_obj_field("g", &[0, 0, 0, 0]);
        assert!(m.eval_bool(&p("tree [f, g]")).unwrap());
    }

    #[test]
    fn old_evaluation() {
        let mut m = Model::new(2);
        m.set_objset("content", &[1, 2]);
        let mut old = FxHashMap::default();
        old.insert(
            Symbol::intern("content"),
            Value::Set([Key::Obj(1)].into_iter().collect()),
        );
        m.old_interp = Some(old);
        m.set("o", Value::Obj(2));
        // content = old content Un {o}: {1,2} = {1} Un {2}.
        assert!(m.eval_bool(&p("content = old content Un {o}")).unwrap());
        assert!(!m.eval_bool(&p("content = old content")).unwrap());
    }

    #[test]
    fn function_equality_extensional() {
        let mut m = Model::new(2);
        m.set_obj_field("f", &[0, 2, 0]);
        m.set_obj_field("g", &[0, 2, 0]);
        m.set_obj_field("h", &[0, 1, 0]);
        assert!(m.eval_bool(&p("f = g")).unwrap());
        assert!(!m.eval_bool(&p("f = h")).unwrap());
        // Update makes them differ / agree.
        assert!(m.eval_bool(&p("fieldWrite f null null = g")).unwrap());
    }

    #[test]
    fn random_models_are_reproducible() {
        let syms = vec![
            (Symbol::intern("S"), Sort::objset()),
            (Symbol::intern("x"), Sort::Obj),
            (Symbol::intern("next"), Sort::field(Sort::Obj)),
        ];
        let m1 = random_model(42, 3, &syms);
        let m2 = random_model(42, 3, &syms);
        let f = p("x : S | x ~: S");
        assert!(m1.eval_bool(&f).unwrap());
        // Same seed, same verdicts on a nontrivial formula.
        let g = p("x : S & (x..next ~= x | x : S)");
        assert_eq!(m1.eval_bool(&g).unwrap(), m2.eval_bool(&g).unwrap());
    }

    #[test]
    fn enumerate_small_models_validity() {
        // x : S Un T  <->  x : S | x : T  is valid: true in every model.
        let syms = vec![
            (Symbol::intern("S"), Sort::objset()),
            (Symbol::intern("T"), Sort::objset()),
            (Symbol::intern("x"), Sort::Obj),
        ];
        let lhs = p("x : S Un T");
        let rhs = p("x : S | x : T");
        let f = Form::iff(lhs, rhs);
        let all_true = enumerate_models(1, (0, 0), &syms, &mut |m| m.eval_bool(&f).unwrap());
        assert!(all_true);
        // x : S is NOT valid: some model falsifies it.
        let g = p("x : S");
        let all_true = enumerate_models(1, (0, 0), &syms, &mut |m| m.eval_bool(&g).unwrap());
        assert!(!all_true);
    }

    #[test]
    fn lambda_closure_captures_environment() {
        let mut m = Model::new(2);
        m.set("c", Value::Obj(1));
        // EX z. (% w. w = c) z  — the closure must see c.
        let f = p("EX z. (% w. w = c) z");
        assert!(m.eval_bool(&f).unwrap());
    }

    #[test]
    fn ite_value() {
        let m = Model::new(0);
        let t = Form::Ite(
            Rc::new(p("1 < 2")),
            Rc::new(Form::IntLit(10)),
            Rc::new(Form::IntLit(20)),
        );
        match m.eval(&t).unwrap() {
            Value::Int(10) => {}
            other => panic!("expected 10, got {other:?}"),
        }
    }
}
