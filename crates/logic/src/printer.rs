//! Pretty-printer for the annotation syntax.
//!
//! The printer emits concrete syntax that the parser accepts, with minimal
//! parenthesization. For terms built by the parser (binder sorts still
//! unknown), `parse(print(t)) == t` — this round-trip is property-tested.
//!
//! Elaborated operators print with their surface spelling (`Subseteq` as
//! `<=`, `Diff` as `-`, `Iff` as `=`), so a printed elaborated term reparses
//! to the *pre-elaboration* form of the same formula.

use crate::form::{BinOp, Form, QKind, UnOp};
use crate::parser::unknown_sort;
use crate::sort::Sort;
use std::fmt;

/// Precedence levels, loosest to tightest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Body = 0,
    Implies = 1,
    Or = 2,
    And = 3,
    Cmp = 4,
    Add = 5,
    Mul = 6,
    Prefix = 7,
    App = 8,
    Atom = 9,
}

/// Wrapper whose `Display` prints a term in concrete syntax.
pub struct Pretty<'a>(pub &'a Form);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_at(self.0, Prec::Body, f)
    }
}

impl fmt::Display for Form {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_at(self, Prec::Body, f)
    }
}

/// Render a term to a `String` in concrete syntax.
pub fn print_form(form: &Form) -> String {
    Pretty(form).to_string()
}

fn parens_if(
    cond: bool,
    f: &mut fmt::Formatter<'_>,
    inner: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if cond {
        write!(f, "(")?;
        inner(f)?;
        write!(f, ")")
    } else {
        inner(f)
    }
}

fn binders_to_string(binders: &[(jahob_util::Symbol, Sort)]) -> String {
    binders
        .iter()
        .map(|(name, sort)| {
            if *sort == unknown_sort() {
                name.to_string()
            } else {
                format!("{name}::{sort}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn print_at(form: &Form, min: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match form {
        Form::Var(s) => write!(f, "{s}"),
        Form::IntLit(n) => {
            // Negative literals need parens in argument position so they do
            // not read as a subtraction.
            parens_if(*n < 0 && min > Prec::Prefix, f, |f| write!(f, "{n}"))
        }
        Form::BoolLit(true) => write!(f, "True"),
        Form::BoolLit(false) => write!(f, "False"),
        Form::Null => write!(f, "null"),
        Form::EmptySet => write!(f, "{{}}"),
        Form::FiniteSet(elems) => {
            write!(f, "{{")?;
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_at(e, Prec::Body, f)?;
            }
            write!(f, "}}")
        }
        Form::Compr(x, _, body) => {
            write!(f, "{{{x}. ")?;
            print_at(body, Prec::Body, f)?;
            write!(f, "}}")
        }
        Form::Tree(fields) => {
            write!(f, "tree [")?;
            for (i, field) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                print_at(field, Prec::Body, f)?;
            }
            write!(f, "]")
        }
        Form::Unop(UnOp::Not, inner) => {
            // Special spellings for ~= and ~: .
            if let Form::Binop(op @ (BinOp::Eq | BinOp::Elem), lhs, rhs) = inner.as_ref() {
                let sym = if *op == BinOp::Eq { "~=" } else { "~:" };
                return parens_if(min > Prec::Cmp, f, |f| {
                    print_at(lhs, Prec::Add, f)?;
                    write!(f, " {sym} ")?;
                    print_at(rhs, Prec::Add, f)
                });
            }
            parens_if(min > Prec::Prefix, f, |f| {
                write!(f, "~")?;
                print_at(inner, Prec::Prefix, f)
            })
        }
        Form::Unop(UnOp::Neg, inner) => parens_if(min > Prec::Prefix, f, |f| {
            write!(f, "-")?;
            print_at(inner, Prec::Prefix, f)
        }),
        Form::Unop(UnOp::Card, inner) => parens_if(min > Prec::App, f, |f| {
            write!(f, "card ")?;
            print_at(inner, Prec::Atom, f)
        }),
        Form::Old(inner) => parens_if(min > Prec::App, f, |f| {
            write!(f, "old ")?;
            print_at(inner, Prec::Atom, f)
        }),
        Form::And(parts) => parens_if(min > Prec::And, f, |f| {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                print_at(part, Prec::Cmp, f)?;
            }
            Ok(())
        }),
        Form::Or(parts) => parens_if(min > Prec::Or, f, |f| {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                print_at(part, Prec::And, f)?;
            }
            Ok(())
        }),
        Form::Binop(op, lhs, rhs) => {
            let (text, level, left_arg, right_arg) = match op {
                BinOp::Implies => ("-->", Prec::Implies, Prec::Or, Prec::Implies),
                BinOp::Iff | BinOp::Eq => ("=", Prec::Cmp, Prec::Add, Prec::Add),
                BinOp::Elem => (":", Prec::Cmp, Prec::Add, Prec::Add),
                BinOp::Lt => ("<", Prec::Cmp, Prec::Add, Prec::Add),
                BinOp::Le | BinOp::Subseteq => ("<=", Prec::Cmp, Prec::Add, Prec::Add),
                BinOp::Add => ("+", Prec::Add, Prec::Add, Prec::Mul),
                BinOp::Sub | BinOp::Diff => ("-", Prec::Add, Prec::Add, Prec::Mul),
                BinOp::Union => ("Un", Prec::Add, Prec::Add, Prec::Mul),
                BinOp::Mul => ("*", Prec::Mul, Prec::Mul, Prec::Prefix),
                BinOp::Inter => ("Int", Prec::Mul, Prec::Mul, Prec::Prefix),
            };
            parens_if(min > level, f, |f| {
                print_at(lhs, left_arg, f)?;
                write!(f, " {text} ")?;
                print_at(rhs, right_arg, f)
            })
        }
        Form::App(head, args) => parens_if(min > Prec::App, f, |f| {
            print_at(head, Prec::Atom, f)?;
            for a in args {
                write!(f, " ")?;
                print_at(a, Prec::Atom, f)?;
            }
            Ok(())
        }),
        Form::Quant(kind, binders, body) => parens_if(min > Prec::Body, f, |f| {
            let kw = match kind {
                QKind::All => "ALL",
                QKind::Ex => "EX",
            };
            write!(f, "{kw} {}. ", binders_to_string(binders))?;
            print_at(body, Prec::Body, f)
        }),
        Form::Lambda(binders, body) => parens_if(min > Prec::Body, f, |f| {
            write!(f, "% {}. ", binders_to_string(binders))?;
            print_at(body, Prec::Body, f)
        }),
        Form::Ite(c, t, e) => {
            // Internal node; printed as an application of the `ite` symbol,
            // which reparses as a plain application.
            parens_if(min > Prec::App, f, |f| {
                write!(f, "ite ")?;
                print_at(c, Prec::Atom, f)?;
                write!(f, " ")?;
                print_at(t, Prec::Atom, f)?;
                write!(f, " ")?;
                print_at(e, Prec::Atom, f)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn roundtrip(src: &str) {
        let f1 = parse_form(src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let printed = print_form(&f1);
        let f2 =
            parse_form(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(
            f1, f2,
            "round trip failed:\n  src: {src}\n  printed: {printed}"
        );
    }

    #[test]
    fn roundtrip_paper_formulas() {
        for src in [
            "content = {}",
            "o ~: content & o ~= null",
            "content = old content Un {o}",
            "result = (content = {})",
            "result : content",
            "content ~= {}",
            "content = old content - {o}",
            "init --> a ~= null & b ~= null & a..List.content Int b..List.content = {}",
            "a..List.content = {}",
            "{ n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}",
            "{x. EX n. x = n..Node.data & n : nodes}",
            "tree [List.first, Node.next]",
            "first = null | (first : Object.alloc & (ALL n. n..Node.next ~= first & \
             (n ~= this --> n..List.first ~= first)))",
            "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1=n2",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn roundtrip_arith_and_sets() {
        for src in [
            "card (S Un T) <= card S + card T",
            "x + y * z = z * y + x",
            "x - y - z < 0",
            "S Un T Int U = (S Un (T Int U))",
            "{a, b} Un {c}",
            "ALL k::int. EX m::int. k < m",
            "~ (a & b) = (~a | ~b)",
            "-x <= x * x",
            "f (g x) (h y z)",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn minimal_parens() {
        let f = parse_form("a & b & c").unwrap();
        assert_eq!(print_form(&f), "a & b & c");
        let g = parse_form("a & (b | c)").unwrap();
        assert_eq!(print_form(&g), "a & (b | c)");
        let h = parse_form("(a & b) | c").unwrap();
        assert_eq!(print_form(&h), "a & b | c");
    }

    #[test]
    fn special_negations() {
        let f = parse_form("x ~= null").unwrap();
        assert_eq!(print_form(&f), "x ~= null");
        let g = parse_form("o ~: content").unwrap();
        assert_eq!(print_form(&g), "o ~: content");
    }

    #[test]
    fn quantifier_in_operand_parenthesized() {
        let f = Form::and(vec![
            Form::v("p"),
            Form::forall(
                vec![(jahob_util::Symbol::intern("x"), unknown_sort())],
                Form::eq(Form::v("x"), Form::v("x0")),
            ),
        ]);
        roundtrip(&print_form(&f));
    }

    #[test]
    fn sorted_binders_print() {
        let src = "ALL k::int. k <= k";
        let f = parse_form(src).unwrap();
        assert_eq!(print_form(&f), "ALL k::int. k <= k");
    }

    #[test]
    fn negative_literal_in_app() {
        let f = Form::app(Form::v("f"), vec![Form::IntLit(-3)]);
        let printed = print_form(&f);
        let back = parse_form(&printed).unwrap();
        assert_eq!(f, back);
    }
}
