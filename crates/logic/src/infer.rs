//! Sort inference and elaboration.
//!
//! Jahob's surface syntax overloads a few operators (`<=` is integer
//! comparison or subset, `-` is subtraction or set difference, `=` is
//! equality at any sort including `bool`, where it means "iff"). This module
//! infers sorts Hindley–Milner style (unification over [`Sort::Var`]) and
//! *elaborates* formulas so that downstream passes see unambiguous operators:
//!
//! * `Le` at a set sort becomes [`BinOp::Subseteq`],
//! * `Sub` at a set sort becomes [`BinOp::Diff`],
//! * `Eq` at `bool` becomes [`BinOp::Iff`],
//! * every binder receives a ground sort (unconstrained binders default to
//!   `obj`, the sort Jahob quantifiers range over when unannotated).
//!
//! Symbols not present in the signature are auto-declared with fresh sorts;
//! the frontend pre-declares all program symbols so this only fires in
//! ad-hoc uses (tests, the `prove` example CLI).

use crate::form::{sym, BinOp, Form, UnOp};
use crate::parser::unknown_sort;
use crate::sort::{Sort, SortTable, UnifyError};
use jahob_util::{FxHashMap, Symbol};
use std::fmt;
use std::rc::Rc;

/// A sort-checking failure.
#[derive(Debug, Clone)]
pub enum SortError {
    /// Unification failure, with the offending subterm pretty-printed.
    Mismatch { term: String, error: UnifyError },
    /// A non-function term was applied to arguments.
    NotAFunction { term: String },
    /// `tree [...]` referenced a field that is not `obj => obj`.
    BadTreeField { field: Symbol },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::Mismatch { term, error } => write!(f, "in `{term}`: {error}"),
            SortError::NotAFunction { term } => {
                write!(f, "`{term}` is applied to arguments but is not a function")
            }
            SortError::BadTreeField { field } => {
                write!(f, "`tree` field `{field}` must have sort obj => obj")
            }
        }
    }
}

impl std::error::Error for SortError {}

/// Marker prefix for pending overload decisions (internal to this module).
const MARKER: &str = "#ov#";

/// A sort-inference context: a signature of known symbols plus a persistent
/// unification table, so constraints accumulate across multiple formulas
/// that mention the same symbols (e.g. all invariants of one class).
pub struct SortCx {
    sig: FxHashMap<Symbol, Sort>,
    table: SortTable,
}

impl Default for SortCx {
    fn default() -> Self {
        Self::new()
    }
}

impl SortCx {
    /// A context primed with the builtin signature of the logic.
    pub fn new() -> Self {
        let mut cx = SortCx {
            sig: FxHashMap::default(),
            table: SortTable::new(),
        };
        // rtrancl_pt : (obj => obj => bool) => obj => obj => bool
        cx.declare(
            Symbol::intern(sym::RTRANCL),
            Sort::Fun(
                vec![
                    Sort::Fun(vec![Sort::Obj, Sort::Obj], Box::new(Sort::Bool)),
                    Sort::Obj,
                    Sort::Obj,
                ],
                Box::new(Sort::Bool),
            ),
        );
        // Object.alloc : objset
        cx.declare(Symbol::intern(sym::ALLOC), Sort::objset());
        // this : obj
        cx.declare(Symbol::intern(sym::THIS), Sort::Obj);
        cx
    }

    /// Declare (or re-declare) a symbol's sort.
    pub fn declare(&mut self, name: Symbol, sort: Sort) {
        self.sig.insert(name, sort);
    }

    /// The resolved sort of a declared symbol, if known.
    pub fn sort_of(&self, name: Symbol) -> Option<Sort> {
        self.sig.get(&name).map(|s| self.table.resolve_default(s))
    }

    /// Snapshot of the whole signature with all sorts resolved (unconstrained
    /// variables defaulted). Passed along with verification conditions so
    /// provers can make sort-directed decisions.
    pub fn resolved_sig(&self) -> FxHashMap<Symbol, Sort> {
        self.sig
            .iter()
            .map(|(k, v)| (*k, self.table.resolve_default(v)))
            .collect()
    }

    /// Infer the sort of `form` and elaborate it. Returns the elaborated term
    /// and its (resolved) sort.
    pub fn infer(&mut self, form: &Form) -> Result<(Form, Sort), SortError> {
        let mut env: Vec<(Symbol, Sort)> = Vec::new();
        let (marked, sort) = self.infer_rec(form, &mut env)?;
        let finalized = self.finalize(&marked);
        Ok((finalized, self.table.resolve_default(&sort)))
    }

    /// Infer and require sort `bool` (the common case for specifications).
    pub fn check_bool(&mut self, form: &Form) -> Result<Form, SortError> {
        let mut env: Vec<(Symbol, Sort)> = Vec::new();
        let (marked, sort) = self.infer_rec(form, &mut env)?;
        self.unify(form, &sort, &Sort::Bool)?;
        Ok(self.finalize(&marked))
    }

    fn unify(&mut self, at: &Form, a: &Sort, b: &Sort) -> Result<(), SortError> {
        self.table.unify(a, b).map_err(|error| SortError::Mismatch {
            term: at.to_string(),
            error,
        })
    }

    fn lookup(&mut self, name: Symbol, env: &[(Symbol, Sort)]) -> Sort {
        for (binder, sort) in env.iter().rev() {
            if *binder == name {
                return sort.clone();
            }
        }
        match name.as_str() {
            // Polymorphic builtins: instantiate fresh at each use.
            sym::FIELD_WRITE => {
                let a = self.table.fresh();
                Sort::Fun(
                    vec![Sort::field(a.clone()), Sort::Obj, a.clone()],
                    Box::new(Sort::field(a)),
                )
            }
            sym::FIELD_READ => {
                let a = self.table.fresh();
                Sort::Fun(vec![Sort::field(a.clone()), Sort::Obj], Box::new(a))
            }
            sym::ARRAY_READ => {
                let a = self.table.fresh();
                Sort::Fun(
                    vec![
                        Sort::Fun(vec![Sort::Obj, Sort::Int], Box::new(a.clone())),
                        Sort::Obj,
                        Sort::Int,
                    ],
                    Box::new(a),
                )
            }
            sym::ARRAY_WRITE => {
                let a = self.table.fresh();
                let arr = Sort::Fun(vec![Sort::Obj, Sort::Int], Box::new(a.clone()));
                Sort::Fun(vec![arr.clone(), Sort::Obj, Sort::Int, a], Box::new(arr))
            }
            _ => {
                if let Some(sort) = self.sig.get(&name) {
                    sort.clone()
                } else {
                    let fresh = self.table.fresh();
                    self.sig.insert(name, fresh.clone());
                    fresh
                }
            }
        }
    }

    fn fresh_binders(&mut self, binders: &[(Symbol, Sort)]) -> Vec<(Symbol, Sort)> {
        binders
            .iter()
            .map(|(name, sort)| {
                let sort = if *sort == unknown_sort() {
                    self.table.fresh()
                } else {
                    sort.clone()
                };
                (*name, sort)
            })
            .collect()
    }

    /// Pass 1: unification + rebuild with overload markers and sort-variable
    /// binder annotations.
    fn infer_rec(
        &mut self,
        form: &Form,
        env: &mut Vec<(Symbol, Sort)>,
    ) -> Result<(Form, Sort), SortError> {
        match form {
            Form::Var(name) => {
                let sort = self.lookup(*name, env);
                Ok((form.clone(), sort))
            }
            Form::IntLit(_) => Ok((form.clone(), Sort::Int)),
            Form::BoolLit(_) => Ok((form.clone(), Sort::Bool)),
            Form::Null => Ok((form.clone(), Sort::Obj)),
            Form::EmptySet => {
                let a = self.table.fresh();
                Ok((form.clone(), Sort::Set(Box::new(a))))
            }
            Form::FiniteSet(elems) => {
                let a = self.table.fresh();
                let mut new_elems = Vec::with_capacity(elems.len());
                for e in elems {
                    let (ne, es) = self.infer_rec(e, env)?;
                    self.unify(e, &es, &a)?;
                    new_elems.push(ne);
                }
                Ok((Form::FiniteSet(new_elems), Sort::Set(Box::new(a))))
            }
            Form::Unop(op, inner) => {
                let (ni, is) = self.infer_rec(inner, env)?;
                let (req, out) = match op {
                    UnOp::Not => (Sort::Bool, Sort::Bool),
                    UnOp::Neg => (Sort::Int, Sort::Int),
                    UnOp::Card => {
                        let a = self.table.fresh();
                        (Sort::Set(Box::new(a)), Sort::Int)
                    }
                };
                self.unify(inner, &is, &req)?;
                Ok((Form::Unop(*op, Rc::new(ni)), out))
            }
            Form::And(parts) | Form::Or(parts) => {
                let mut new_parts = Vec::with_capacity(parts.len());
                for p in parts {
                    let (np, ps) = self.infer_rec(p, env)?;
                    self.unify(p, &ps, &Sort::Bool)?;
                    new_parts.push(np);
                }
                let rebuilt = if matches!(form, Form::And(_)) {
                    Form::And(new_parts)
                } else {
                    Form::Or(new_parts)
                };
                Ok((rebuilt, Sort::Bool))
            }
            Form::Binop(op, lhs, rhs) => {
                let (nl, ls) = self.infer_rec(lhs, env)?;
                let (nr, rs) = self.infer_rec(rhs, env)?;
                match op {
                    BinOp::Implies | BinOp::Iff => {
                        self.unify(lhs, &ls, &Sort::Bool)?;
                        self.unify(rhs, &rs, &Sort::Bool)?;
                        Ok((Form::binop(*op, nl, nr), Sort::Bool))
                    }
                    BinOp::Eq => {
                        self.unify(form, &ls, &rs)?;
                        // Pending: Eq at bool becomes Iff. Record the shared
                        // sort variable in a marker.
                        Ok((self.marker("eq", &ls, nl, nr), Sort::Bool))
                    }
                    BinOp::Elem => {
                        self.unify(form, &rs, &Sort::Set(Box::new(ls)))?;
                        Ok((Form::binop(BinOp::Elem, nl, nr), Sort::Bool))
                    }
                    BinOp::Lt => {
                        self.unify(lhs, &ls, &Sort::Int)?;
                        self.unify(rhs, &rs, &Sort::Int)?;
                        Ok((Form::binop(BinOp::Lt, nl, nr), Sort::Bool))
                    }
                    BinOp::Le | BinOp::Subseteq => {
                        self.unify(form, &ls, &rs)?;
                        Ok((self.marker("le", &ls, nl, nr), Sort::Bool))
                    }
                    BinOp::Sub | BinOp::Diff => {
                        self.unify(form, &ls, &rs)?;
                        Ok((self.marker("sub", &ls, nl, nr), ls))
                    }
                    BinOp::Add | BinOp::Mul => {
                        self.unify(lhs, &ls, &Sort::Int)?;
                        self.unify(rhs, &rs, &Sort::Int)?;
                        Ok((Form::binop(*op, nl, nr), Sort::Int))
                    }
                    BinOp::Union | BinOp::Inter => {
                        let a = self.table.fresh();
                        let set = Sort::Set(Box::new(a));
                        self.unify(lhs, &ls, &set)?;
                        self.unify(rhs, &rs, &set)?;
                        Ok((Form::binop(*op, nl, nr), set))
                    }
                }
            }
            Form::App(head, args) => {
                let (nh, hs) = self.infer_rec(head, env)?;
                let mut new_args = Vec::with_capacity(args.len());
                let mut arg_sorts = Vec::with_capacity(args.len());
                for a in args {
                    let (na, asort) = self.infer_rec(a, env)?;
                    new_args.push(na);
                    arg_sorts.push(asort);
                }
                let ret = self.apply_sort(form, hs, &arg_sorts)?;
                Ok((Form::app(nh, new_args), ret))
            }
            Form::Quant(kind, binders, body) => {
                let new_binders = self.fresh_binders(binders);
                let depth = env.len();
                env.extend(new_binders.iter().cloned());
                let (nb, bs) = self.infer_rec(body, env)?;
                env.truncate(depth);
                self.unify(body, &bs, &Sort::Bool)?;
                Ok((Form::Quant(*kind, new_binders, Rc::new(nb)), Sort::Bool))
            }
            Form::Lambda(binders, body) => {
                let new_binders = self.fresh_binders(binders);
                let depth = env.len();
                env.extend(new_binders.iter().cloned());
                let (nb, bs) = self.infer_rec(body, env)?;
                env.truncate(depth);
                let sorts = new_binders.iter().map(|(_, s)| s.clone()).collect();
                Ok((
                    Form::Lambda(new_binders, Rc::new(nb)),
                    Sort::Fun(sorts, Box::new(bs)),
                ))
            }
            Form::Compr(x, sort, body) => {
                let xsort = if *sort == unknown_sort() {
                    self.table.fresh()
                } else {
                    sort.clone()
                };
                env.push((*x, xsort.clone()));
                let (nb, bs) = self.infer_rec(body, env)?;
                env.pop();
                self.unify(body, &bs, &Sort::Bool)?;
                Ok((
                    Form::Compr(*x, xsort.clone(), Rc::new(nb)),
                    Sort::Set(Box::new(xsort)),
                ))
            }
            Form::Old(inner) => {
                let (ni, is) = self.infer_rec(inner, env)?;
                Ok((Form::Old(Rc::new(ni)), is))
            }
            Form::Ite(c, t, e) => {
                let (nc, cs) = self.infer_rec(c, env)?;
                let (nt, ts) = self.infer_rec(t, env)?;
                let (ne, es) = self.infer_rec(e, env)?;
                self.unify(c, &cs, &Sort::Bool)?;
                self.unify(form, &ts, &es)?;
                Ok((Form::Ite(Rc::new(nc), Rc::new(nt), Rc::new(ne)), ts))
            }
            Form::Tree(fields) => {
                let mut new_fields = Vec::with_capacity(fields.len());
                for field in fields {
                    let (nf, fsort) = self.infer_rec(field, env)?;
                    if self.table.unify(&fsort, &Sort::field(Sort::Obj)).is_err() {
                        return Err(SortError::BadTreeField {
                            field: Symbol::intern(&field.to_string()),
                        });
                    }
                    new_fields.push(nf);
                }
                Ok((Form::Tree(new_fields), Sort::Bool))
            }
        }
    }

    /// Apply a head sort to argument sorts, supporting partial application
    /// and curried (`Fun` returning `Fun`) heads.
    fn apply_sort(&mut self, at: &Form, head: Sort, args: &[Sort]) -> Result<Sort, SortError> {
        if args.is_empty() {
            return Ok(head);
        }
        let head = self.table.resolve(&head);
        match head {
            Sort::Fun(params, ret) => {
                let flat = flatten_fun(params, *ret);
                let (params, ret) = match flat {
                    Sort::Fun(p, r) => (p, *r),
                    other => (vec![], other),
                };
                if params.len() < args.len() {
                    return Err(SortError::NotAFunction {
                        term: at.to_string(),
                    });
                }
                for (p, a) in params.iter().zip(args.iter()) {
                    self.unify(at, p, a)?;
                }
                if params.len() == args.len() {
                    Ok(ret)
                } else {
                    Ok(Sort::Fun(params[args.len()..].to_vec(), Box::new(ret)))
                }
            }
            Sort::Var(_) => {
                let ret = self.table.fresh();
                let expect = Sort::Fun(args.to_vec(), Box::new(ret.clone()));
                self.unify(at, &head, &expect)?;
                Ok(ret)
            }
            _ => Err(SortError::NotAFunction {
                term: at.to_string(),
            }),
        }
    }

    /// Build an overload marker carrying the deciding sort. The sort is
    /// stored by embedding a fresh variable that we bind to it, so finalize
    /// can resolve the decision after all constraints are in.
    fn marker(&mut self, op: &str, deciding: &Sort, lhs: Form, rhs: Form) -> Form {
        let v = match self.table.resolve(deciding) {
            Sort::Var(v) => v,
            ground => {
                // Already ground: no need to defer, but keep uniform handling
                // by allocating a variable bound to the ground sort.
                let fresh = self.table.fresh();
                let v = match fresh {
                    Sort::Var(v) => v,
                    _ => unreachable!(),
                };
                self.table.unify(&Sort::Var(v), &ground).expect("fresh var");
                v
            }
        };
        let name = Symbol::intern(&format!("{MARKER}{op}#{v}"));
        Form::App(Rc::new(Form::Var(name)), vec![lhs, rhs])
    }

    /// Pass 2: resolve overload markers and ground binder sorts.
    fn finalize(&self, form: &Form) -> Form {
        match form {
            Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
                form.clone()
            }
            Form::Tree(fields) => Form::Tree(fields.iter().map(|f| self.finalize(f)).collect()),
            Form::FiniteSet(elems) => {
                Form::FiniteSet(elems.iter().map(|e| self.finalize(e)).collect())
            }
            Form::And(parts) => Form::And(parts.iter().map(|p| self.finalize(p)).collect()),
            Form::Or(parts) => Form::Or(parts.iter().map(|p| self.finalize(p)).collect()),
            Form::Unop(op, inner) => Form::Unop(*op, Rc::new(self.finalize(inner))),
            Form::Old(inner) => Form::Old(Rc::new(self.finalize(inner))),
            Form::Binop(op, lhs, rhs) => Form::Binop(
                *op,
                Rc::new(self.finalize(lhs)),
                Rc::new(self.finalize(rhs)),
            ),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(self.finalize(c)),
                Rc::new(self.finalize(t)),
                Rc::new(self.finalize(e)),
            ),
            Form::App(head, args) => {
                if let Form::Var(name) = head.as_ref() {
                    let text = name.as_str();
                    if let Some(rest) = text.strip_prefix(MARKER) {
                        let (op, var_text) = rest.split_once('#').expect("marker format");
                        let v: u32 = var_text.parse().expect("marker var");
                        let sort = self.table.resolve_default(&Sort::Var(v));
                        let lhs = self.finalize(&args[0]);
                        let rhs = self.finalize(&args[1]);
                        let is_set = matches!(sort, Sort::Set(_));
                        let resolved = match (op, is_set, &sort) {
                            ("eq", _, Sort::Bool) => BinOp::Iff,
                            ("eq", _, _) => BinOp::Eq,
                            ("le", true, _) => BinOp::Subseteq,
                            ("le", false, _) => BinOp::Le,
                            ("sub", true, _) => BinOp::Diff,
                            ("sub", false, _) => BinOp::Sub,
                            _ => unreachable!("unknown marker op {op}"),
                        };
                        return Form::binop(resolved, lhs, rhs);
                    }
                }
                Form::app(
                    self.finalize(head),
                    args.iter().map(|a| self.finalize(a)).collect(),
                )
            }
            Form::Quant(kind, binders, body) => Form::Quant(
                *kind,
                binders
                    .iter()
                    .map(|(n, s)| (*n, self.table.resolve_default(s)))
                    .collect(),
                Rc::new(self.finalize(body)),
            ),
            Form::Lambda(binders, body) => Form::Lambda(
                binders
                    .iter()
                    .map(|(n, s)| (*n, self.table.resolve_default(s)))
                    .collect(),
                Rc::new(self.finalize(body)),
            ),
            Form::Compr(x, sort, body) => Form::Compr(
                *x,
                self.table.resolve_default(sort),
                Rc::new(self.finalize(body)),
            ),
        }
    }
}

/// Flatten curried function sorts: `Fun([a], Fun([b], c))` → `Fun([a,b], c)`.
fn flatten_fun(mut params: Vec<Sort>, ret: Sort) -> Sort {
    let mut ret = ret;
    loop {
        match ret {
            Sort::Fun(more, inner) => {
                params.extend(more);
                ret = *inner;
            }
            other => return Sort::Fun(params, Box::new(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn elaborate(cx: &mut SortCx, src: &str) -> Form {
        let f = parse_form(src).unwrap();
        cx.check_bool(&f).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn subset_elaborates_on_sets() {
        let mut cx = SortCx::new();
        cx.declare(s("S1"), Sort::objset());
        cx.declare(s("T1"), Sort::objset());
        let f = elaborate(&mut cx, "S1 <= T1");
        assert_eq!(
            f,
            Form::binop(BinOp::Subseteq, Form::v("S1"), Form::v("T1"))
        );
    }

    #[test]
    fn le_stays_on_ints() {
        let mut cx = SortCx::new();
        cx.declare(s("i1"), Sort::Int);
        cx.declare(s("j1"), Sort::Int);
        let f = elaborate(&mut cx, "i1 <= j1");
        assert_eq!(f, Form::binop(BinOp::Le, Form::v("i1"), Form::v("j1")));
    }

    #[test]
    fn le_defaults_to_int_when_unconstrained() {
        let mut cx = SortCx::new();
        // Unknown symbols, no other constraints: treat <= as integer.
        let f = elaborate(&mut cx, "u1 <= u2");
        assert_eq!(f, Form::binop(BinOp::Le, Form::v("u1"), Form::v("u2")));
    }

    #[test]
    fn eq_at_bool_becomes_iff() {
        let mut cx = SortCx::new();
        cx.declare(s("resultB"), Sort::Bool);
        cx.declare(s("contentE"), Sort::objset());
        let f = elaborate(&mut cx, "resultB = (contentE = {})");
        match &f {
            Form::Binop(BinOp::Iff, lhs, rhs) => {
                assert_eq!(lhs.as_ref(), &Form::v("resultB"));
                assert!(matches!(rhs.as_ref(), Form::Binop(BinOp::Eq, _, _)));
            }
            other => panic!("expected Iff, got {other:?}"),
        }
    }

    #[test]
    fn minus_elaborates_to_diff_on_sets() {
        let mut cx = SortCx::new();
        cx.declare(s("contentD"), Sort::objset());
        let f = elaborate(&mut cx, "contentD = old contentD - {o9}");
        match &f {
            Form::Binop(BinOp::Eq, _, rhs) => {
                assert!(matches!(rhs.as_ref(), Form::Binop(BinOp::Diff, _, _)));
            }
            other => panic!("expected Eq, got {other:?}"),
        }
        // The element variable picked up sort obj.
        assert_eq!(cx.sort_of(s("o9")), Some(Sort::Obj));
    }

    #[test]
    fn binders_grounded() {
        let mut cx = SortCx::new();
        cx.declare(s("nodesB"), Sort::objset());
        let f = elaborate(&mut cx, "ALL n. n : nodesB --> n ~= null");
        match &f {
            Form::Quant(_, binders, _) => assert_eq!(binders[0].1, Sort::Obj),
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_binder_defaults_to_obj() {
        let mut cx = SortCx::new();
        let f = elaborate(&mut cx, "ALL z. z = z");
        match &f {
            Form::Quant(_, binders, _) => assert_eq!(binders[0].1, Sort::Obj),
            other => panic!("expected ALL, got {other:?}"),
        }
    }

    #[test]
    fn figure3_nodes_vardef_sorts() {
        let mut cx = SortCx::new();
        cx.declare(s("Node.next"), Sort::field(Sort::Obj));
        cx.declare(s("first"), Sort::Obj);
        let f =
            parse_form("{ n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}").unwrap();
        let (elab, sort) = cx.infer(&f).unwrap();
        assert_eq!(sort, Sort::objset());
        match &elab {
            Form::Compr(_, binder_sort, _) => assert_eq!(*binder_sort, Sort::Obj),
            other => panic!("expected comprehension, got {other:?}"),
        }
    }

    #[test]
    fn figure3_content_vardef_sorts() {
        let mut cx = SortCx::new();
        cx.declare(s("Node.data"), Sort::field(Sort::Obj));
        cx.declare(s("nodesC"), Sort::objset());
        let f = parse_form("{x. EX n. x = n..Node.data & n : nodesC}").unwrap();
        let (_, sort) = cx.infer(&f).unwrap();
        assert_eq!(sort, Sort::objset());
    }

    #[test]
    fn tree_requires_obj_fields() {
        let mut cx = SortCx::new();
        cx.declare(s("List.first2"), Sort::field(Sort::Obj));
        cx.declare(s("Node.next2"), Sort::field(Sort::Obj));
        let f = parse_form("tree [List.first2, Node.next2]").unwrap();
        assert!(cx.check_bool(&f).is_ok());

        let mut cx2 = SortCx::new();
        cx2.declare(s("badfield"), Sort::field(Sort::Int));
        let g = parse_form("tree [badfield]").unwrap();
        assert!(cx2.check_bool(&g).is_err());
    }

    #[test]
    fn sort_errors_reported() {
        let mut cx = SortCx::new();
        cx.declare(s("iv"), Sort::Int);
        cx.declare(s("sv"), Sort::objset());
        let f = parse_form("iv = sv").unwrap();
        assert!(cx.check_bool(&f).is_err());
        // Applying a non-function.
        let g = parse_form("5 6").unwrap();
        assert!(cx.check_bool(&g).is_err());
    }

    #[test]
    fn field_write_polymorphic() {
        let mut cx = SortCx::new();
        cx.declare(s("Node.nextW"), Sort::field(Sort::Obj));
        cx.declare(s("n1w"), Sort::Obj);
        cx.declare(s("n2w"), Sort::Obj);
        let f = parse_form("fieldWrite Node.nextW n1w n2w n1w = n2w").unwrap();
        // (fieldWrite next n1 n2) n1 = n2 : the updated function applied.
        assert!(cx.check_bool(&f).is_ok());
    }

    #[test]
    fn signature_constraints_accumulate() {
        let mut cx = SortCx::new();
        // First formula forces `mystery` to objset...
        elaborate(&mut cx, "x1m : mystery");
        // ...so the second elaborates <= as subset.
        cx.declare(s("othera"), Sort::objset());
        let f = elaborate(&mut cx, "mystery <= othera");
        assert!(matches!(f, Form::Binop(BinOp::Subseteq, _, _)));
        assert_eq!(cx.sort_of(s("mystery")), Some(Sort::objset()));
    }

    #[test]
    fn card_forces_set() {
        let mut cx = SortCx::new();
        let f = elaborate(&mut cx, "card freshset <= 3");
        assert!(matches!(f, Form::Binop(BinOp::Le, _, _)));
        assert!(matches!(cx.sort_of(s("freshset")), Some(Sort::Set(_))));
    }

    #[test]
    fn ite_branches_unify() {
        let mut cx = SortCx::new();
        let t = Form::Ite(
            Rc::new(Form::v("c_it")),
            Rc::new(Form::IntLit(1)),
            Rc::new(Form::IntLit(2)),
        );
        let (_, sort) = cx.infer(&t).unwrap();
        assert_eq!(sort, Sort::Int);
        assert_eq!(cx.sort_of(s("c_it")), Some(Sort::Bool));
    }
}
