//! Lexer for the annotation formula syntax.
//!
//! Identifiers may be *qualified*: `List.content` and `Node.next` lex as
//! single identifier tokens. A `.` continues an identifier only when it is
//! immediately followed by a letter or underscore — so the binder dot in
//! `{x. P}` or `ALL n. P` (always followed by whitespace in Jahob sources)
//! and the `..` field-dereference operator lex as their own tokens.

use std::fmt;

/// A token of the formula language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier, possibly qualified (`Node.next`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    /// `.` — binder separator.
    Dot,
    /// `..` — field dereference.
    DotDot,
    /// `:` — set membership.
    Colon,
    /// `::` — sort ascription.
    ColonColon,
    /// `:=` — ghost assignment (used by the frontend, not by formulas).
    ColonEq,
    /// `~:` — negated membership.
    NotColon,
    /// `~=` — disequality.
    NotEq,
    /// `~` — negation.
    Tilde,
    /// `=`.
    Eq,
    /// `&`.
    Amp,
    /// `|`.
    Bar,
    /// `-->`.
    Arrow,
    /// `=>` — sort arrow.
    FatArrow,
    /// `<=`.
    Le,
    /// `<`.
    Lt,
    /// `>=`.
    Ge,
    /// `>`.
    Gt,
    Plus,
    Minus,
    Star,
    /// `%` — lambda.
    Percent,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::Colon => write!(f, ":"),
            Token::ColonColon => write!(f, "::"),
            Token::ColonEq => write!(f, ":="),
            Token::NotColon => write!(f, "~:"),
            Token::NotEq => write!(f, "~="),
            Token::Tilde => write!(f, "~"),
            Token::Eq => write!(f, "="),
            Token::Amp => write!(f, "&"),
            Token::Bar => write!(f, "|"),
            Token::Arrow => write!(f, "-->"),
            Token::FatArrow => write!(f, "=>"),
            Token::Le => write!(f, "<="),
            Token::Lt => write!(f, "<"),
            Token::Ge => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Percent => write!(f, "%"),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// A lexing failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '$'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '\''
}

/// Tokenize `src` into formula tokens.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            '{' => {
                toks.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                toks.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                toks.push(Token::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Token::Star);
                i += 1;
            }
            '%' => {
                toks.push(Token::Percent);
                i += 1;
            }
            '&' => {
                toks.push(Token::Amp);
                i += 1;
            }
            '|' => {
                toks.push(Token::Bar);
                i += 1;
            }
            '.' => {
                if i + 1 < n && bytes[i + 1] == '.' {
                    toks.push(Token::DotDot);
                    i += 2;
                } else {
                    toks.push(Token::Dot);
                    i += 1;
                }
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == ':' {
                    toks.push(Token::ColonColon);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::ColonEq);
                    i += 2;
                } else {
                    toks.push(Token::Colon);
                    i += 1;
                }
            }
            '~' => {
                if i + 1 < n && bytes[i + 1] == ':' {
                    toks.push(Token::NotColon);
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::NotEq);
                    i += 2;
                } else {
                    toks.push(Token::Tilde);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    toks.push(Token::FatArrow);
                    i += 2;
                } else {
                    toks.push(Token::Eq);
                    i += 1;
                }
            }
            '-' => {
                if i + 2 < n && bytes[i + 1] == '-' && bytes[i + 2] == '>' {
                    toks.push(Token::Arrow);
                    i += 3;
                } else {
                    toks.push(Token::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::Le);
                    i += 2;
                } else {
                    toks.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::Ge);
                    i += 2;
                } else {
                    toks.push(Token::Gt);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    offset: start,
                    message: format!("integer literal out of range: {text}"),
                })?;
                toks.push(Token::Int(value));
            }
            c if is_ident_start(c) => {
                let start = i;
                i += 1;
                loop {
                    while i < n && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    // A '.' continues the identifier (qualified name) only if
                    // immediately followed by an identifier-start character
                    // and not part of a `..` operator.
                    if i + 1 < n
                        && bytes[i] == '.'
                        && is_ident_start(bytes[i + 1])
                        && bytes[i + 1] != '.'
                    {
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                toks.push(Token::Ident(text));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(toks: &[Token]) -> Vec<&str> {
        toks.iter()
            .filter_map(|t| match t {
                Token::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn qualified_identifier_single_token() {
        let toks = lex("List.content").unwrap();
        assert_eq!(toks, vec![Token::Ident("List.content".into())]);
    }

    #[test]
    fn dotdot_separates() {
        let toks = lex("x..Node.next").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::DotDot,
                Token::Ident("Node.next".into())
            ]
        );
    }

    #[test]
    fn binder_dot_is_own_token() {
        let toks = lex("{x. P}").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LBrace,
                Token::Ident("x".into()),
                Token::Dot,
                Token::Ident("P".into()),
                Token::RBrace
            ]
        );
    }

    #[test]
    fn paper_precondition() {
        // From Figure 1: requires "o ~: content & o ~= null"
        let toks = lex("o ~: content & o ~= null").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("o".into()),
                Token::NotColon,
                Token::Ident("content".into()),
                Token::Amp,
                Token::Ident("o".into()),
                Token::NotEq,
                Token::Ident("null".into()),
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(lex("-->").unwrap(), vec![Token::Arrow]);
        assert_eq!(lex("a - b").unwrap()[1], Token::Minus);
        assert_eq!(
            lex("init --> a").unwrap(),
            vec![
                Token::Ident("init".into()),
                Token::Arrow,
                Token::Ident("a".into())
            ]
        );
    }

    #[test]
    fn colon_family() {
        assert_eq!(lex("::").unwrap(), vec![Token::ColonColon]);
        assert_eq!(lex(":=").unwrap(), vec![Token::ColonEq]);
        assert_eq!(lex(":").unwrap(), vec![Token::Colon]);
        assert_eq!(lex("~:").unwrap(), vec![Token::NotColon]);
    }

    #[test]
    fn paper_vardef() {
        let toks = lex("nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}");
        // `==` lexes as two Eq tokens; the frontend splits vardefs on them.
        let toks = toks.unwrap();
        assert_eq!(toks[1], Token::Eq);
        assert_eq!(toks[2], Token::Eq);
        assert!(idents(&toks).contains(&"rtrancl_pt"));
        assert!(idents(&toks).contains(&"Node.next"));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("card S <= 10").unwrap(),
            vec![
                Token::Ident("card".into()),
                Token::Ident("S".into()),
                Token::Le,
                Token::Int(10)
            ]
        );
    }

    #[test]
    fn tree_invariant() {
        let toks = lex("tree [List.first, Node.next]").unwrap();
        assert_eq!(toks[0], Token::Ident("tree".into()));
        assert_eq!(toks[1], Token::LBracket);
        assert_eq!(toks[3], Token::Comma);
        assert_eq!(toks[5], Token::RBracket);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a ? b").is_err());
        let err = lex("#").unwrap_err();
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn primed_names_allowed() {
        // Fresh variables from alpha-renaming print as x'0 and must re-lex.
        let toks = lex("x'0").unwrap();
        assert_eq!(toks, vec![Token::Ident("x'0".into())]);
    }
}
