//! The sort (type) language of the specification logic, with unification.
//!
//! Jahob's logic is simply typed. The base sorts are `bool`, `int`, and `obj`
//! (heap objects, including `null`); sets and functions are built on top.
//! The annotation surface syntax names `Set(Obj)` as `objset` and `Set(Int)`
//! as `intset`.
//!
//! Sort inference ([`crate::infer`]) works over sorts containing inference
//! variables ([`Sort::Var`]), resolved by the [`SortTable`] unifier here.

use std::fmt;

/// A sort (type) of the logic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Truth values.
    Bool,
    /// Mathematical integers.
    Int,
    /// Heap objects (including the distinguished `null`).
    Obj,
    /// Sets of elements of the given sort. Only `Set(Obj)` and `Set(Int)`
    /// appear in well-sorted Jahob programs, but the unifier is generic.
    Set(Box<Sort>),
    /// Total functions. Fields are `Fun([Obj], T)`; binary predicates passed
    /// to `rtrancl_pt` are `Fun([Obj, Obj], Bool)`.
    Fun(Vec<Sort>, Box<Sort>),
    /// A sort-inference variable (only during inference).
    Var(u32),
}

impl Sort {
    /// The sort of object sets, `objset` in the surface syntax.
    pub fn objset() -> Sort {
        Sort::Set(Box::new(Sort::Obj))
    }

    /// The sort of integer sets, `intset` in the surface syntax.
    pub fn intset() -> Sort {
        Sort::Set(Box::new(Sort::Int))
    }

    /// A field sort `obj => t`.
    pub fn field(target: Sort) -> Sort {
        Sort::Fun(vec![Sort::Obj], Box::new(target))
    }

    /// Does this sort contain any inference variables?
    pub fn is_ground(&self) -> bool {
        match self {
            Sort::Bool | Sort::Int | Sort::Obj => true,
            Sort::Set(e) => e.is_ground(),
            Sort::Fun(args, ret) => args.iter().all(Sort::is_ground) && ret.is_ground(),
            Sort::Var(_) => false,
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "bool"),
            Sort::Int => write!(f, "int"),
            Sort::Obj => write!(f, "obj"),
            Sort::Set(e) => match **e {
                Sort::Obj => write!(f, "objset"),
                Sort::Int => write!(f, "intset"),
                ref other => write!(f, "({other} set)"),
            },
            Sort::Fun(args, ret) => {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " => ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, " => {ret})")
            }
            Sort::Var(v) => write!(f, "?s{v}"),
        }
    }
}

/// A union-find style substitution table for sort variables.
#[derive(Default, Debug, Clone)]
pub struct SortTable {
    /// `bindings[v]` is the sort bound to variable `v`, if any.
    bindings: Vec<Option<Sort>>,
}

/// A sort unification failure: the two sorts that clashed (after resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnifyError {
    pub left: Sort,
    pub right: Sort,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sort mismatch: {} vs {}", self.left, self.right)
    }
}

impl SortTable {
    /// Fresh empty table.
    pub fn new() -> Self {
        SortTable::default()
    }

    /// Allocate a fresh inference variable.
    pub fn fresh(&mut self) -> Sort {
        let v = self.bindings.len() as u32;
        self.bindings.push(None);
        Sort::Var(v)
    }

    /// Resolve the outermost binding of `s` (shallow).
    fn shallow(&self, mut s: Sort) -> Sort {
        while let Sort::Var(v) = s {
            match &self.bindings[v as usize] {
                Some(bound) => s = bound.clone(),
                None => return Sort::Var(v),
            }
        }
        s
    }

    /// Fully resolve `s`, substituting all bound variables recursively.
    /// Unbound variables default to `Obj` — the only sort Jahob quantifiers
    /// range over when unannotated (e.g. `ALL n. ...` over heap nodes).
    pub fn resolve_default(&self, s: &Sort) -> Sort {
        match self.shallow(s.clone()) {
            Sort::Var(_) => Sort::Obj,
            Sort::Bool => Sort::Bool,
            Sort::Int => Sort::Int,
            Sort::Obj => Sort::Obj,
            Sort::Set(e) => Sort::Set(Box::new(self.resolve_default(&e))),
            Sort::Fun(args, ret) => Sort::Fun(
                args.iter().map(|a| self.resolve_default(a)).collect(),
                Box::new(self.resolve_default(&ret)),
            ),
        }
    }

    /// Fully resolve `s`, keeping unbound variables as variables.
    pub fn resolve(&self, s: &Sort) -> Sort {
        match self.shallow(s.clone()) {
            Sort::Var(v) => Sort::Var(v),
            Sort::Bool => Sort::Bool,
            Sort::Int => Sort::Int,
            Sort::Obj => Sort::Obj,
            Sort::Set(e) => Sort::Set(Box::new(self.resolve(&e))),
            Sort::Fun(args, ret) => Sort::Fun(
                args.iter().map(|a| self.resolve(a)).collect(),
                Box::new(self.resolve(&ret)),
            ),
        }
    }

    /// Does variable `v` occur in `s` (after resolution)? Guards against
    /// infinite sorts.
    fn occurs(&self, v: u32, s: &Sort) -> bool {
        match self.shallow(s.clone()) {
            Sort::Var(w) => w == v,
            Sort::Bool | Sort::Int | Sort::Obj => false,
            Sort::Set(e) => self.occurs(v, &e),
            Sort::Fun(args, ret) => args.iter().any(|a| self.occurs(v, a)) || self.occurs(v, &ret),
        }
    }

    /// Unify two sorts, extending the binding table.
    pub fn unify(&mut self, a: &Sort, b: &Sort) -> Result<(), UnifyError> {
        let a = self.shallow(a.clone());
        let b = self.shallow(b.clone());
        match (a, b) {
            (Sort::Var(v), Sort::Var(w)) if v == w => Ok(()),
            (Sort::Var(v), other) | (other, Sort::Var(v)) => {
                if self.occurs(v, &other) {
                    return Err(UnifyError {
                        left: Sort::Var(v),
                        right: other,
                    });
                }
                self.bindings[v as usize] = Some(other);
                Ok(())
            }
            (Sort::Bool, Sort::Bool) | (Sort::Int, Sort::Int) | (Sort::Obj, Sort::Obj) => Ok(()),
            (Sort::Set(x), Sort::Set(y)) => self.unify(&x, &y),
            (Sort::Fun(a1, r1), Sort::Fun(a2, r2)) => {
                if a1.len() != a2.len() {
                    return Err(UnifyError {
                        left: Sort::Fun(a1, r1),
                        right: Sort::Fun(a2, r2),
                    });
                }
                for (x, y) in a1.iter().zip(a2.iter()) {
                    self.unify(x, y)?;
                }
                self.unify(&r1, &r2)
            }
            (l, r) => Err(UnifyError {
                left: self.resolve(&l),
                right: self.resolve(&r),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Sort::objset().to_string(), "objset");
        assert_eq!(Sort::intset().to_string(), "intset");
        assert_eq!(Sort::field(Sort::Obj).to_string(), "(obj => obj)");
        assert_eq!(
            Sort::Fun(vec![Sort::Obj, Sort::Obj], Box::new(Sort::Bool)).to_string(),
            "(obj => obj => bool)"
        );
    }

    #[test]
    fn unify_base() {
        let mut t = SortTable::new();
        assert!(t.unify(&Sort::Int, &Sort::Int).is_ok());
        assert!(t.unify(&Sort::Int, &Sort::Obj).is_err());
    }

    #[test]
    fn unify_via_variable() {
        let mut t = SortTable::new();
        let v = t.fresh();
        t.unify(&v, &Sort::objset()).unwrap();
        assert_eq!(t.resolve(&v), Sort::objset());
        // Now v is objset, so unifying with intset must fail.
        assert!(t.unify(&v, &Sort::intset()).is_err());
    }

    #[test]
    fn unify_functions() {
        let mut t = SortTable::new();
        let v = t.fresh();
        let f1 = Sort::Fun(vec![Sort::Obj], Box::new(v.clone()));
        let f2 = Sort::field(Sort::Int);
        t.unify(&f1, &f2).unwrap();
        assert_eq!(t.resolve(&v), Sort::Int);
    }

    #[test]
    fn occurs_check() {
        let mut t = SortTable::new();
        let v = t.fresh();
        let s = Sort::Set(Box::new(v.clone()));
        assert!(t.unify(&v, &s).is_err());
    }

    #[test]
    fn default_resolution_is_obj() {
        let mut t = SortTable::new();
        let v = t.fresh();
        assert_eq!(t.resolve_default(&v), Sort::Obj);
        let s = Sort::Set(Box::new(v));
        assert_eq!(t.resolve_default(&s), Sort::objset());
    }

    #[test]
    fn chain_resolution() {
        let mut t = SortTable::new();
        let a = t.fresh();
        let b = t.fresh();
        t.unify(&a, &b).unwrap();
        t.unify(&b, &Sort::Int).unwrap();
        assert_eq!(t.resolve(&a), Sort::Int);
    }
}
