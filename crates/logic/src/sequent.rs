//! Explicit sequents and goal-directed relevance slicing.
//!
//! A proof obligation piece leaving [`crate::transform::split_conjuncts`]
//! is an implication chain `H1 --> H2 --> ... --> G`. This module gives
//! that shape a first-class representation — a [`Sequent`] of named
//! hypotheses and a goal — and implements Jahob's assumption-filtering
//! approximation on top of it: compute the **symbol cone** of the goal
//! (iterated free-symbol reachability through the hypotheses), drop every
//! hypothesis outside the cone, and hand the prover the smallest sequent
//! that can plausibly discharge the goal.
//!
//! Soundness is structural. Dropping hypotheses only ever makes a sequent
//! *harder* to prove (`H, H' ⊢ G` follows from `H ⊢ G` by weakening), so
//! `Proved` on a slice transfers to the full sequent. Nothing else
//! transfers: a counter-model of a slice may satisfy a dropped hypothesis
//! vacuously and says nothing about the full sequent, and `Unknown` on a
//! slice may just mean the needed assumption was sliced away. The
//! [`relevance_ladder`] therefore always ends with the unmodified input
//! formula, and callers must treat non-final counter-models as suspect
//! (the dispatcher re-confirms them against the full sequent and widens
//! when they do not survive).

use crate::form::{BinOp, Form};
use jahob_util::{FxHashSet, Symbol};

/// One named hypothesis. Names are positional (`h0`, `h1`, …) in source
/// order — stable across runs, so slices are content-determined.
#[derive(Clone, Debug, PartialEq)]
pub struct Hyp {
    pub name: String,
    pub form: Form,
}

/// A sequent `h0, h1, ..., hn ⊢ goal`, peeled from an implication chain.
/// Conjunctive hypotheses are flattened to conjunct granularity, matching
/// the per-prover fragment filtering: one irrelevant conjunct must not
/// drag the rest of its conjunction into the slice.
#[derive(Clone, Debug, PartialEq)]
pub struct Sequent {
    pub hyps: Vec<Hyp>,
    pub goal: Form,
}

impl Sequent {
    /// Decompose an implication chain into named hypotheses and a goal.
    /// Non-implications become a sequent with no hypotheses.
    pub fn of(form: &Form) -> Sequent {
        let mut hyps = Vec::new();
        let mut current = form.clone();
        loop {
            match current {
                Form::Binop(BinOp::Implies, h, c) => {
                    match h.as_ref() {
                        Form::And(parts) => {
                            for p in parts {
                                hyps.push(p.clone());
                            }
                        }
                        other => hyps.push(other.clone()),
                    }
                    current = c.as_ref().clone();
                }
                goal => {
                    let hyps = hyps
                        .into_iter()
                        .enumerate()
                        .map(|(i, form)| Hyp {
                            name: format!("h{i}"),
                            form,
                        })
                        .collect();
                    return Sequent { hyps, goal };
                }
            }
        }
    }

    /// Refold into an implication chain `h0 --> h1 --> ... --> goal`.
    /// Note this normalizes shape: conjunctive hypotheses that [`Sequent::of`]
    /// flattened come back as separate chain links.
    pub fn to_form(&self) -> Form {
        self.hyps.iter().rev().fold(self.goal.clone(), |acc, h| {
            Form::implies(h.form.clone(), acc)
        })
    }

    /// Which hypotheses fall inside the goal's symbol cone after `depth`
    /// rounds of reachability? Round one admits every hypothesis sharing a
    /// free symbol with the goal; each admitted hypothesis contributes its
    /// own free symbols to the cone for the next round. Returns a keep-mask
    /// over `self.hyps`. Closed hypotheses (no free symbols) are never
    /// reached by the cone — only the full sequent retains them.
    pub fn cone_mask(&self, depth: usize) -> Vec<bool> {
        let frees: Vec<FxHashSet<Symbol>> = self.hyps.iter().map(|h| h.form.free_vars()).collect();
        let mut cone: FxHashSet<Symbol> = self.goal.free_vars();
        let mut keep = vec![false; self.hyps.len()];
        for _ in 0..depth {
            let mut grew = false;
            // Collect the round's additions separately so `depth` counts
            // whole rounds, independent of hypothesis order.
            let mut added: Vec<usize> = Vec::new();
            for (i, hyp_frees) in frees.iter().enumerate() {
                if keep[i] {
                    continue;
                }
                if hyp_frees.iter().any(|s| cone.contains(s)) {
                    added.push(i);
                }
            }
            for i in added {
                keep[i] = true;
                cone.extend(frees[i].iter().copied());
                grew = true;
            }
            if !grew {
                break;
            }
        }
        keep
    }

    /// The slice keeping only hypotheses inside the depth-`depth` cone.
    pub fn slice(&self, depth: usize) -> Sequent {
        let mask = self.cone_mask(depth);
        Sequent {
            hyps: self
                .hyps
                .iter()
                .zip(&mask)
                .filter(|(_, keep)| **keep)
                .map(|(h, _)| h.clone())
                .collect(),
            goal: self.goal.clone(),
        }
    }
}

/// One rung of the widening ladder: the formula to dispatch plus how many
/// hypotheses the slice kept and dropped (for the `slice.*` events).
#[derive(Clone, Debug, PartialEq)]
pub struct Rung {
    pub form: Form,
    pub kept: usize,
    pub dropped: usize,
}

impl Rung {
    /// The final rung dispatches the caller's formula unchanged.
    pub fn is_full(&self) -> bool {
        self.dropped == 0
    }
}

/// Build the widening ladder for a piece: successively wider slices of its
/// sequent (cone depth 1, 2, … up to `max_sliced` rungs, deduplicated),
/// always ending with the *unmodified* input formula. The last rung is the
/// caller's own form — not a refold of the full sequent — so a ladder that
/// falls all the way through dispatches bit-for-bit what an unsliced
/// dispatch would have. When slicing drops nothing at any depth the ladder
/// is just `[form]`.
pub fn relevance_ladder(form: &Form, max_sliced: usize) -> Vec<Rung> {
    let seq = Sequent::of(form);
    let total = seq.hyps.len();
    let mut rungs: Vec<Rung> = Vec::new();
    if total > 0 {
        let mut prev_kept = usize::MAX;
        for depth in 1..=max_sliced {
            let mask = seq.cone_mask(depth);
            let kept = mask.iter().filter(|k| **k).count();
            // A slice that keeps everything is the full sequent; a slice
            // that stopped growing will never grow again.
            if kept == total || kept == prev_kept {
                break;
            }
            prev_kept = kept;
            let sliced = Sequent {
                hyps: seq
                    .hyps
                    .iter()
                    .zip(&mask)
                    .filter(|(_, keep)| **keep)
                    .map(|(h, _)| h.clone())
                    .collect(),
                goal: seq.goal.clone(),
            };
            rungs.push(Rung {
                form: sliced.to_form(),
                kept,
                dropped: total - kept,
            });
        }
    }
    rungs.push(Rung {
        form: form.clone(),
        kept: total,
        dropped: 0,
    });
    rungs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_form;

    fn p(src: &str) -> Form {
        parse_form(src).unwrap()
    }

    #[test]
    fn of_peels_chain_and_flattens_conjunctions() {
        let seq = Sequent::of(&p("(a & b) --> c --> goal"));
        let names: Vec<&str> = seq.hyps.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["h0", "h1", "h2"]);
        assert_eq!(seq.hyps[0].form, p("a"));
        assert_eq!(seq.hyps[1].form, p("b"));
        assert_eq!(seq.hyps[2].form, p("c"));
        assert_eq!(seq.goal, p("goal"));
    }

    #[test]
    fn to_form_refolds_chain() {
        let seq = Sequent::of(&p("a --> b --> goal"));
        assert_eq!(seq.to_form(), p("a --> b --> goal"));
    }

    #[test]
    fn cone_keeps_symbol_connected_hypotheses() {
        // goal mentions x; `x = y` connects y in round one; `y < z`
        // joins only in round two; `u = v` is never reachable.
        let seq = Sequent::of(&p("x = y --> y < z --> u = v --> x < 5"));
        assert_eq!(seq.cone_mask(1), vec![true, false, false]);
        assert_eq!(seq.cone_mask(2), vec![true, true, false]);
        assert_eq!(seq.cone_mask(9), vec![true, true, false]);
    }

    #[test]
    fn slice_is_weakening() {
        let seq = Sequent::of(&p("x = y --> u = v --> x < 5"));
        let sliced = seq.slice(1);
        assert_eq!(sliced.hyps.len(), 1);
        assert_eq!(sliced.to_form(), p("x = y --> x < 5"));
    }

    #[test]
    fn ladder_ends_with_unmodified_form() {
        let f = p("x = y --> y < z --> u = v --> x < 5");
        let rungs = relevance_ladder(&f, 3);
        assert_eq!(rungs.len(), 3);
        assert_eq!(rungs[0].form, p("x = y --> x < 5"));
        assert_eq!(rungs[0].kept, 1);
        assert_eq!(rungs[0].dropped, 2);
        assert_eq!(rungs[1].form, p("x = y --> y < z --> x < 5"));
        assert!(!rungs[1].is_full());
        assert_eq!(rungs.last().unwrap().form, f);
        assert!(rungs.last().unwrap().is_full());
    }

    #[test]
    fn ladder_collapses_when_everything_is_relevant() {
        // Both hypotheses mention goal symbols directly: the depth-1 cone
        // already keeps everything, so the ladder is just the full rung.
        let f = p("x = y --> x < y + 1 --> x < 5");
        let rungs = relevance_ladder(&f, 3);
        assert_eq!(rungs.len(), 1);
        assert_eq!(rungs[0].form, f);
        assert!(rungs[0].is_full());
    }

    #[test]
    fn ladder_on_hypothesis_free_goal_is_singleton() {
        let f = p("x < 5");
        let rungs = relevance_ladder(&f, 3);
        assert_eq!(rungs.len(), 1);
        assert_eq!(rungs[0].form, f);
    }

    #[test]
    fn disconnected_hypotheses_only_return_on_the_full_rung() {
        // The contradiction `j <= k & k + 1 <= j` shares no symbol with
        // the goal: every sliced rung is the bare (falsifiable) goal, and
        // only the full rung restores validity.
        let f = p("j <= k --> k + 1 <= j --> y < 0");
        let rungs = relevance_ladder(&f, 3);
        assert_eq!(rungs.len(), 2);
        assert_eq!(rungs[0].form, p("y < 0"));
        assert_eq!(rungs[0].dropped, 2);
        assert_eq!(rungs[1].form, f);
    }
}
