//! The term AST of the specification logic.
//!
//! A single [`Form`] type represents both formulas (boolean-sorted terms) and
//! terms of other sorts, as in HOL. Structural sharing uses `Rc`; all
//! operations are pure and return new terms.
//!
//! Two interpreted higher-order symbols are kept as ordinary applications and
//! recognized by name throughout the workspace:
//!
//! * `rtrancl_pt p a b` — reflexive transitive closure of the binary
//!   predicate `p` relates `a` to `b` (used by abstraction functions to define
//!   reachability along `next` fields),
//! * `fieldWrite f x v` — the function `f` updated at `x` to `v` (introduced
//!   by the VC generator for heap assignments), and its read-side companion
//!   `fieldRead f x` (≡ `f x`, kept applied),
//! * `arrayRead a i` / `arrayWrite a i v` — one-dimensional array access.

use crate::sort::Sort;
use jahob_util::{FxHashMap, FxHashSet, Symbol};
use std::rc::Rc;

/// Quantifier kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QKind {
    /// Universal, `ALL x. P`.
    All,
    /// Existential, `EX x. P`.
    Ex,
}

impl QKind {
    /// The dual quantifier.
    pub fn dual(self) -> QKind {
        match self {
            QKind::All => QKind::Ex,
            QKind::Ex => QKind::All,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `~`.
    Not,
    /// Integer negation.
    Neg,
    /// Set cardinality `card S`.
    Card,
}

/// Binary operators.
///
/// `Le` and `Sub` are produced by the parser for both the integer and the set
/// readings of `<=` and `-`; sort elaboration ([`crate::infer`]) rewrites the
/// set readings into `Subseteq` and `Diff`, and `Eq` between booleans into
/// `Iff`, so downstream passes see unambiguous operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Implication `-->` (right associative).
    Implies,
    /// Boolean equivalence (written `=` at sort `bool` in the surface syntax).
    Iff,
    /// Equality at any sort.
    Eq,
    /// Set membership `x : S`.
    Elem,
    /// `<` on integers.
    Lt,
    /// `<=`: integers before elaboration; may elaborate to [`BinOp::Subseteq`].
    Le,
    /// Subset-or-equal on sets (elaborated form of `<=`).
    Subseteq,
    /// Integer addition.
    Add,
    /// `-`: integer subtraction before elaboration; may elaborate to
    /// [`BinOp::Diff`].
    Sub,
    /// Integer multiplication (linear uses only in the decidable fragments).
    Mul,
    /// Set union `Un`.
    Union,
    /// Set intersection `Int`.
    Inter,
    /// Set difference (elaborated form of `-`).
    Diff,
}

/// A term of the logic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Form {
    /// A variable or uninterpreted constant/function symbol, referenced by
    /// interned name. Qualified names like `List.content` or `Node.next` are
    /// single symbols.
    Var(Symbol),
    /// Integer literal.
    IntLit(i64),
    /// `True` / `False`.
    BoolLit(bool),
    /// The null object.
    Null,
    /// The empty set `{}` (element sort resolved by inference).
    EmptySet,
    /// A finite set display `{e1, ..., en}` (non-empty; `{}` is
    /// [`Form::EmptySet`]).
    FiniteSet(Vec<Form>),
    /// Unary operator application.
    Unop(UnOp, Rc<Form>),
    /// Binary operator application.
    Binop(BinOp, Rc<Form>, Rc<Form>),
    /// N-ary conjunction. `And(vec![])` is `True`.
    And(Vec<Form>),
    /// N-ary disjunction. `Or(vec![])` is `False`.
    Or(Vec<Form>),
    /// Application `f a1 ... an` of a (usually variable) head to arguments.
    App(Rc<Form>, Vec<Form>),
    /// `ALL`/`EX` quantification over one or more sorted binders.
    Quant(QKind, Vec<(Symbol, Sort)>, Rc<Form>),
    /// Lambda abstraction `% x y. e`.
    Lambda(Vec<(Symbol, Sort)>, Rc<Form>),
    /// Set comprehension `{x. P}`.
    Compr(Symbol, Sort, Rc<Form>),
    /// `old e` — the value of `e` in the method pre-state. Eliminated by the
    /// VC generator before formulas reach any prover.
    Old(Rc<Form>),
    /// If-then-else at any sort (introduced by the VC generator).
    Ite(Rc<Form>, Rc<Form>, Rc<Form>),
    /// The `tree [f1, ..., fn]` backbone predicate: the given field *terms*
    /// (each `obj => obj`) form a forest (acyclic, no sharing). Holding
    /// terms rather than names lets field updates (`fieldWrite`) flow into
    /// the invariant under weakest preconditions.
    Tree(Vec<Form>),
}

impl Form {
    // ---- smart constructors -------------------------------------------------

    /// `True`.
    pub fn tt() -> Form {
        Form::BoolLit(true)
    }

    /// `False`.
    pub fn ff() -> Form {
        Form::BoolLit(false)
    }

    /// Negation with double-negation and literal collapsing.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Form) -> Form {
        match f {
            Form::BoolLit(b) => Form::BoolLit(!b),
            Form::Unop(UnOp::Not, inner) => inner.as_ref().clone(),
            other => Form::Unop(UnOp::Not, Rc::new(other)),
        }
    }

    /// Flattening n-ary conjunction; drops `True`, collapses on `False`.
    pub fn and(conjuncts: Vec<Form>) -> Form {
        let mut out = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            match c {
                Form::BoolLit(true) => {}
                Form::BoolLit(false) => return Form::ff(),
                Form::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Form::tt(),
            1 => out.pop().unwrap(),
            _ => Form::And(out),
        }
    }

    /// Flattening n-ary disjunction; drops `False`, collapses on `True`.
    pub fn or(disjuncts: Vec<Form>) -> Form {
        let mut out = Vec::with_capacity(disjuncts.len());
        for d in disjuncts {
            match d {
                Form::BoolLit(false) => {}
                Form::BoolLit(true) => return Form::tt(),
                Form::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Form::ff(),
            1 => out.pop().unwrap(),
            _ => Form::Or(out),
        }
    }

    /// Implication with trivial-case collapsing.
    pub fn implies(lhs: Form, rhs: Form) -> Form {
        match (&lhs, &rhs) {
            (Form::BoolLit(true), _) => rhs,
            (Form::BoolLit(false), _) => Form::tt(),
            (_, Form::BoolLit(true)) => Form::tt(),
            (_, Form::BoolLit(false)) => Form::not(lhs),
            _ => Form::Binop(BinOp::Implies, Rc::new(lhs), Rc::new(rhs)),
        }
    }

    /// Equivalence.
    pub fn iff(lhs: Form, rhs: Form) -> Form {
        Form::Binop(BinOp::Iff, Rc::new(lhs), Rc::new(rhs))
    }

    /// Equality; collapses syntactically identical sides to `True`.
    pub fn eq(lhs: Form, rhs: Form) -> Form {
        if lhs == rhs {
            return Form::tt();
        }
        Form::Binop(BinOp::Eq, Rc::new(lhs), Rc::new(rhs))
    }

    /// Disequality.
    pub fn ne(lhs: Form, rhs: Form) -> Form {
        Form::not(Form::eq(lhs, rhs))
    }

    /// Set membership `x : s`.
    pub fn elem(x: Form, s: Form) -> Form {
        Form::Binop(BinOp::Elem, Rc::new(x), Rc::new(s))
    }

    /// Binary operator, no simplification.
    pub fn binop(op: BinOp, lhs: Form, rhs: Form) -> Form {
        Form::Binop(op, Rc::new(lhs), Rc::new(rhs))
    }

    /// Application; flattens nested applications and vanishes on zero args.
    pub fn app(head: Form, mut args: Vec<Form>) -> Form {
        if args.is_empty() {
            return head;
        }
        match head {
            Form::App(inner_head, mut inner_args) => {
                inner_args.append(&mut args);
                Form::App(inner_head, inner_args)
            }
            other => Form::App(Rc::new(other), args),
        }
    }

    /// `ALL binders. body` (no-op when `binders` is empty).
    pub fn forall(binders: Vec<(Symbol, Sort)>, body: Form) -> Form {
        Form::quant(QKind::All, binders, body)
    }

    /// `EX binders. body` (no-op when `binders` is empty).
    pub fn exists(binders: Vec<(Symbol, Sort)>, body: Form) -> Form {
        Form::quant(QKind::Ex, binders, body)
    }

    /// Quantification; merges directly nested same-kind quantifiers.
    pub fn quant(kind: QKind, mut binders: Vec<(Symbol, Sort)>, body: Form) -> Form {
        if binders.is_empty() {
            return body;
        }
        match body {
            Form::Quant(inner_kind, inner_binders, inner_body) if inner_kind == kind => {
                binders.extend(inner_binders);
                Form::Quant(kind, binders, inner_body)
            }
            other => Form::Quant(kind, binders, Rc::new(other)),
        }
    }

    /// A named variable.
    pub fn v(name: &str) -> Form {
        Form::Var(Symbol::intern(name))
    }

    /// Integer literal.
    pub fn int(value: i64) -> Form {
        Form::IntLit(value)
    }

    /// `card s`.
    pub fn card(s: Form) -> Form {
        Form::Unop(UnOp::Card, Rc::new(s))
    }

    /// `rtrancl_pt p a b`.
    pub fn rtrancl(p: Form, a: Form, b: Form) -> Form {
        Form::app(Form::v(sym::RTRANCL), vec![p, a, b])
    }

    /// `fieldWrite f x v`.
    pub fn field_write(f: Form, x: Form, v: Form) -> Form {
        Form::app(Form::v(sym::FIELD_WRITE), vec![f, x, v])
    }

    // ---- queries ------------------------------------------------------------

    /// Is this term an application whose head is the named symbol? Returns the
    /// arguments if so.
    pub fn as_app_of(&self, name: Symbol) -> Option<&[Form]> {
        if let Form::App(head, args) = self {
            if let Form::Var(sym) = head.as_ref() {
                if *sym == name {
                    return Some(args);
                }
            }
        }
        None
    }

    /// Free variables (symbols not bound by an enclosing binder).
    pub fn free_vars(&self) -> FxHashSet<Symbol> {
        let mut free = FxHashSet::default();
        let mut bound = Vec::new();
        self.collect_free(&mut bound, &mut free);
        free
    }

    fn collect_free(&self, bound: &mut Vec<Symbol>, free: &mut FxHashSet<Symbol>) {
        match self {
            Form::Var(s) => {
                if !bound.contains(s) {
                    free.insert(*s);
                }
            }
            Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {}
            Form::FiniteSet(elems) | Form::And(elems) | Form::Or(elems) | Form::Tree(elems) => {
                for e in elems {
                    e.collect_free(bound, free);
                }
            }
            Form::Unop(_, a) | Form::Old(a) => a.collect_free(bound, free),
            Form::Binop(_, a, b) => {
                a.collect_free(bound, free);
                b.collect_free(bound, free);
            }
            Form::Ite(c, t, e) => {
                c.collect_free(bound, free);
                t.collect_free(bound, free);
                e.collect_free(bound, free);
            }
            Form::App(head, args) => {
                head.collect_free(bound, free);
                for a in args {
                    a.collect_free(bound, free);
                }
            }
            Form::Quant(_, binders, body) | Form::Lambda(binders, body) => {
                let n = bound.len();
                bound.extend(binders.iter().map(|(s, _)| *s));
                body.collect_free(bound, free);
                bound.truncate(n);
            }
            Form::Compr(x, _, body) => {
                bound.push(*x);
                body.collect_free(bound, free);
                bound.pop();
            }
        }
    }

    /// Capture-avoiding simultaneous substitution of free variables.
    pub fn subst(&self, map: &FxHashMap<Symbol, Form>) -> Form {
        if map.is_empty() {
            return self.clone();
        }
        // Precompute the free variables of the replacement terms once; binders
        // clashing with these must be renamed.
        let mut replacement_frees = FxHashSet::default();
        for f in map.values() {
            replacement_frees.extend(f.free_vars());
        }
        self.subst_inner(map, &replacement_frees)
    }

    fn subst_inner(
        &self,
        map: &FxHashMap<Symbol, Form>,
        replacement_frees: &FxHashSet<Symbol>,
    ) -> Form {
        match self {
            Form::Var(s) => map.get(s).cloned().unwrap_or_else(|| self.clone()),
            Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => self.clone(),
            Form::Tree(elems) => Form::Tree(
                elems
                    .iter()
                    .map(|e| e.subst_inner(map, replacement_frees))
                    .collect(),
            ),
            Form::FiniteSet(elems) => Form::FiniteSet(
                elems
                    .iter()
                    .map(|e| e.subst_inner(map, replacement_frees))
                    .collect(),
            ),
            Form::And(elems) => Form::and(
                elems
                    .iter()
                    .map(|e| e.subst_inner(map, replacement_frees))
                    .collect(),
            ),
            Form::Or(elems) => Form::or(
                elems
                    .iter()
                    .map(|e| e.subst_inner(map, replacement_frees))
                    .collect(),
            ),
            Form::Unop(op, a) => Form::Unop(*op, Rc::new(a.subst_inner(map, replacement_frees))),
            Form::Old(a) => Form::Old(Rc::new(a.subst_inner(map, replacement_frees))),
            Form::Binop(op, a, b) => Form::Binop(
                *op,
                Rc::new(a.subst_inner(map, replacement_frees)),
                Rc::new(b.subst_inner(map, replacement_frees)),
            ),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(c.subst_inner(map, replacement_frees)),
                Rc::new(t.subst_inner(map, replacement_frees)),
                Rc::new(e.subst_inner(map, replacement_frees)),
            ),
            Form::App(head, args) => Form::app(
                head.subst_inner(map, replacement_frees),
                args.iter()
                    .map(|a| a.subst_inner(map, replacement_frees))
                    .collect(),
            ),
            Form::Quant(kind, binders, body) => {
                let (binders, body) = subst_under_binders(binders, body, map, replacement_frees);
                Form::Quant(*kind, binders, Rc::new(body))
            }
            Form::Lambda(binders, body) => {
                let (binders, body) = subst_under_binders(binders, body, map, replacement_frees);
                Form::Lambda(binders, Rc::new(body))
            }
            Form::Compr(x, sort, body) => {
                let binders = vec![(*x, sort.clone())];
                let (binders, body) = subst_under_binders(&binders, body, map, replacement_frees);
                let (x, sort) = binders.into_iter().next().unwrap();
                Form::Compr(x, sort, Rc::new(body))
            }
        }
    }

    /// Substitute a single variable.
    pub fn subst1(&self, var: Symbol, replacement: &Form) -> Form {
        let mut map = FxHashMap::default();
        map.insert(var, replacement.clone());
        self.subst(&map)
    }

    /// Count of AST nodes (for prover triage heuristics and benchmarks).
    pub fn size(&self) -> usize {
        let mut n = 1;
        match self {
            Form::Var(_)
            | Form::IntLit(_)
            | Form::BoolLit(_)
            | Form::Null
            | Form::EmptySet
            | Form::Tree(_) => {}
            Form::FiniteSet(elems) | Form::And(elems) | Form::Or(elems) => {
                n += elems.iter().map(Form::size).sum::<usize>();
            }
            Form::Unop(_, a) | Form::Old(a) => n += a.size(),
            Form::Binop(_, a, b) => n += a.size() + b.size(),
            Form::Ite(c, t, e) => n += c.size() + t.size() + e.size(),
            Form::App(head, args) => {
                n += head.size() + args.iter().map(Form::size).sum::<usize>();
            }
            Form::Quant(_, _, body) | Form::Lambda(_, body) | Form::Compr(_, _, body) => {
                n += body.size();
            }
        }
        n
    }

    /// Does `old` occur anywhere in the term?
    pub fn contains_old(&self) -> bool {
        match self {
            Form::Old(_) => true,
            Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
                false
            }
            Form::FiniteSet(elems) | Form::And(elems) | Form::Or(elems) | Form::Tree(elems) => {
                elems.iter().any(Form::contains_old)
            }

            Form::Unop(_, a) => a.contains_old(),
            Form::Binop(_, a, b) => a.contains_old() || b.contains_old(),
            Form::Ite(c, t, e) => c.contains_old() || t.contains_old() || e.contains_old(),
            Form::App(head, args) => head.contains_old() || args.iter().any(Form::contains_old),
            Form::Quant(_, _, body) | Form::Lambda(_, body) | Form::Compr(_, _, body) => {
                body.contains_old()
            }
        }
    }
}

/// Substitution under a binder list: drop shadowed entries from the map and
/// alpha-rename binders that would capture free variables of replacements.
fn subst_under_binders(
    binders: &[(Symbol, Sort)],
    body: &Form,
    map: &FxHashMap<Symbol, Form>,
    replacement_frees: &FxHashSet<Symbol>,
) -> (Vec<(Symbol, Sort)>, Form) {
    let mut inner_map: FxHashMap<Symbol, Form> = map
        .iter()
        .filter(|(k, _)| !binders.iter().any(|(b, _)| b == *k))
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let mut new_binders = Vec::with_capacity(binders.len());
    for (name, sort) in binders {
        if replacement_frees.contains(name) {
            // Capture risk: rename this binder.
            let fresh = Symbol::fresh(*name);
            inner_map.insert(*name, Form::Var(fresh));
            new_binders.push((fresh, sort.clone()));
        } else {
            new_binders.push((*name, sort.clone()));
        }
    }
    let new_body = if inner_map.is_empty() {
        body.clone()
    } else {
        body.subst(&inner_map)
    };
    (new_binders, new_body)
}

/// Well-known interpreted symbol names.
pub mod sym {
    /// Reflexive-transitive closure of a binary predicate.
    pub const RTRANCL: &str = "rtrancl_pt";
    /// Heap function update.
    pub const FIELD_WRITE: &str = "fieldWrite";
    /// Explicit heap function read (normally plain application is used).
    pub const FIELD_READ: &str = "fieldRead";
    /// Array read.
    pub const ARRAY_READ: &str = "arrayRead";
    /// Array write.
    pub const ARRAY_WRITE: &str = "arrayWrite";
    /// The set of allocated objects (`Object.alloc` in annotations).
    pub const ALLOC: &str = "Object.alloc";
    /// The method result pseudo-variable in `ensures` clauses.
    pub const RESULT: &str = "result";
    /// The receiver pseudo-variable.
    pub const THIS: &str = "this";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn smart_and_or() {
        assert_eq!(Form::and(vec![]), Form::tt());
        assert_eq!(Form::or(vec![]), Form::ff());
        assert_eq!(Form::and(vec![Form::tt(), Form::v("p")]), Form::v("p"));
        assert_eq!(Form::and(vec![Form::ff(), Form::v("p")]), Form::ff());
        assert_eq!(Form::or(vec![Form::tt(), Form::v("p")]), Form::tt());
        // Nested conjunctions flatten.
        let f = Form::and(vec![
            Form::and(vec![Form::v("a"), Form::v("b")]),
            Form::v("c"),
        ]);
        assert_eq!(f, Form::And(vec![Form::v("a"), Form::v("b"), Form::v("c")]));
    }

    #[test]
    fn double_negation_collapses() {
        let p = Form::v("p");
        assert_eq!(Form::not(Form::not(p.clone())), p);
        assert_eq!(Form::not(Form::tt()), Form::ff());
    }

    #[test]
    fn eq_reflexive_collapses() {
        assert_eq!(Form::eq(Form::v("x"), Form::v("x")), Form::tt());
        assert_ne!(Form::eq(Form::v("x"), Form::v("y")), Form::tt());
    }

    #[test]
    fn app_flattens() {
        let f = Form::app(
            Form::app(Form::v("f"), vec![Form::v("x")]),
            vec![Form::v("y")],
        );
        match f {
            Form::App(head, args) => {
                assert_eq!(*head, Form::v("f"));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn quant_merges() {
        let inner = Form::forall(vec![(s("y"), Sort::Obj)], Form::v("p"));
        let outer = Form::forall(vec![(s("x"), Sort::Obj)], inner);
        match outer {
            Form::Quant(QKind::All, binders, _) => assert_eq!(binders.len(), 2),
            other => panic!("expected merged quantifier, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_respect_binders() {
        // ALL x. x : S  — free: S
        let f = Form::forall(
            vec![(s("x"), Sort::Obj)],
            Form::elem(Form::v("x"), Form::v("S")),
        );
        let fv = f.free_vars();
        assert!(fv.contains(&s("S")));
        assert!(!fv.contains(&s("x")));
    }

    #[test]
    fn compr_binds() {
        let f = Form::Compr(
            s("x"),
            Sort::Obj,
            Rc::new(Form::elem(Form::v("x"), Form::v("S"))),
        );
        let fv = f.free_vars();
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&s("S")));
    }

    #[test]
    fn subst_simple() {
        let f = Form::elem(Form::v("x"), Form::v("S"));
        let g = f.subst1(s("x"), &Form::Null);
        assert_eq!(g, Form::elem(Form::Null, Form::v("S")));
    }

    #[test]
    fn subst_shadowed_binder_untouched() {
        // (ALL x. x = y)[x := null] leaves the bound x alone.
        let f = Form::forall(
            vec![(s("x"), Sort::Obj)],
            Form::eq(Form::v("x"), Form::v("y")),
        );
        let g = f.subst1(s("x"), &Form::Null);
        assert_eq!(g, f);
    }

    #[test]
    fn subst_avoids_capture() {
        // (ALL x. x = y)[y := x] must NOT become ALL x. x = x.
        let f = Form::forall(
            vec![(s("x"), Sort::Obj)],
            Form::eq(Form::v("x"), Form::v("y")),
        );
        let g = f.subst1(s("y"), &Form::v("x"));
        match &g {
            Form::Quant(QKind::All, binders, body) => {
                let (bound, _) = binders[0];
                assert_ne!(bound, s("x"), "binder must have been renamed");
                // Body equates the renamed binder with the free x.
                assert_eq!(body.as_ref(), &Form::eq(Form::Var(bound), Form::v("x")));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Form::v("x").size(), 1);
        assert_eq!(Form::eq(Form::v("x"), Form::v("y")).size(), 3);
    }

    #[test]
    fn contains_old_detects() {
        let f = Form::eq(
            Form::v("content"),
            Form::Binop(
                BinOp::Union,
                Rc::new(Form::Old(Rc::new(Form::v("content")))),
                Rc::new(Form::FiniteSet(vec![Form::v("o")])),
            ),
        );
        assert!(f.contains_old());
        assert!(!Form::v("content").contains_old());
    }

    #[test]
    fn as_app_of_recognizes_interpreted_symbols() {
        let f = Form::rtrancl(Form::v("p"), Form::v("a"), Form::v("b"));
        let args = f.as_app_of(s(sym::RTRANCL)).expect("should match");
        assert_eq!(args.len(), 3);
        assert!(f.as_app_of(s(sym::FIELD_WRITE)).is_none());
    }
}
