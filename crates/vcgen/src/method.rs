//! Method-level desugaring: statements → guarded commands → obligations.

use crate::gc::{
    assigned_symbols, expand_field_writes, finalize, strip_old, wp_list, Obligation, GC,
};
use jahob_javalite::resolve::TypedMethod;
use jahob_javalite::{BinaryOp, Expr, JType, LValue, Stmt, TypedProgram, UnaryOp};
use jahob_logic::{form::sym, BinOp, Form, Sort};
use jahob_util::{FxHashMap, Symbol};
use std::fmt;

/// VC-generation failure.
#[derive(Debug, Clone)]
pub struct VcgenError {
    pub message: String,
}

impl fmt::Display for VcgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vcgen: {}", self.message)
    }
}

impl std::error::Error for VcgenError {}

fn err<T>(message: impl Into<String>) -> Result<T, VcgenError> {
    Err(VcgenError {
        message: message.into(),
    })
}

/// All obligations of one method.
#[derive(Clone, Debug)]
pub struct MethodVcs {
    pub class: Symbol,
    pub method: Symbol,
    pub obligations: Vec<Obligation>,
}

struct Ctx<'a> {
    program: &'a TypedProgram,
    class: Symbol,
    /// Static types of locals/params (for call resolution).
    local_types: FxHashMap<Symbol, JType>,
    /// Qualified field lookup: bare name → qualified symbol.
    field_names: FxHashMap<Symbol, Symbol>,
    /// The enclosing class's own `vardefs`, unfolded into every
    /// specification formula before weakest preconditions are computed —
    /// the abstraction functions "establish a formal connection between the
    /// concrete implementation state and the abstract specification state"
    /// (§2.3), and the connection must be visible to the substitutions.
    /// Other classes' private vardefs stay opaque (modular reasoning).
    own_defs: FxHashMap<Symbol, Form>,
}

/// How a bare identifier in a method body resolves.
enum NameKind {
    Local,
    /// Instance field of the enclosing class: `x` means `this.x`.
    InstanceField(Symbol),
    /// Static field of the enclosing class.
    StaticField(Symbol),
}

impl<'a> Ctx<'a> {
    /// Unfold the enclosing class's abstraction functions in a spec formula.
    fn unfold(&self, f: &Form) -> Form {
        jahob_logic::transform::unfold_defs(f, &self.own_defs)
    }

    /// Resolve a bare identifier: locals and parameters shadow fields of the
    /// enclosing class (Java's implicit `this.f`).
    fn resolve_name(&self, name: Symbol) -> NameKind {
        if self.local_types.contains_key(&name) {
            return NameKind::Local;
        }
        let qualified = jahob_javalite::resolve::qualify(self.class, name);
        match self.program.sig.get(&qualified) {
            Some(Sort::Fun(_, _)) => NameKind::InstanceField(qualified),
            Some(_) => NameKind::StaticField(qualified),
            None => NameKind::Local,
        }
    }

    fn qualify_field(&self, name: Symbol) -> Result<Symbol, VcgenError> {
        self.field_names
            .get(&name)
            .copied()
            .ok_or_else(|| VcgenError {
                message: format!("unknown field `{name}`"),
            })
    }

    /// Translate a side-effect-free expression; null-dereference checks for
    /// every field access are appended to `checks`.
    fn expr_form(&self, e: &Expr, checks: &mut Vec<GC>) -> Result<Form, VcgenError> {
        match e {
            Expr::Local(x) => Ok(match self.resolve_name(*x) {
                NameKind::Local => Form::Var(*x),
                NameKind::InstanceField(q) => Form::app(Form::Var(q), vec![Form::v(sym::THIS)]),
                NameKind::StaticField(q) => Form::Var(q),
            }),
            Expr::This => Ok(Form::v(sym::THIS)),
            Expr::Null => Ok(Form::Null),
            Expr::BoolLit(b) => Ok(Form::BoolLit(*b)),
            Expr::IntLit(n) => Ok(Form::IntLit(*n)),
            Expr::Field(base, f) => {
                let b = self.expr_form(base, checks)?;
                checks.push(GC::Assert(
                    Form::ne(b.clone(), Form::Null),
                    format!("receiver of .{f} may be null"),
                ));
                let qf = self.qualify_field(*f)?;
                Ok(Form::app(Form::Var(qf), vec![b]))
            }
            Expr::Unary(UnaryOp::Not, inner) => Ok(Form::not(self.expr_form(inner, checks)?)),
            Expr::Unary(UnaryOp::Neg, inner) => Ok(Form::Unop(
                jahob_logic::UnOp::Neg,
                std::rc::Rc::new(self.expr_form(inner, checks)?),
            )),
            Expr::Binary(op, a, b) => {
                let fa = self.expr_form(a, checks)?;
                let fb = self.expr_form(b, checks)?;
                Ok(match op {
                    BinaryOp::Eq => Form::eq(fa, fb),
                    BinaryOp::Ne => Form::ne(fa, fb),
                    BinaryOp::And => Form::and(vec![fa, fb]),
                    BinaryOp::Or => Form::or(vec![fa, fb]),
                    BinaryOp::Add => Form::binop(BinOp::Add, fa, fb),
                    BinaryOp::Sub => Form::binop(BinOp::Sub, fa, fb),
                    BinaryOp::Mul => Form::binop(BinOp::Mul, fa, fb),
                    BinaryOp::Lt => Form::binop(BinOp::Lt, fa, fb),
                    BinaryOp::Le => Form::binop(BinOp::Le, fa, fb),
                    BinaryOp::Gt => Form::binop(BinOp::Lt, fb, fa),
                    BinaryOp::Ge => Form::binop(BinOp::Le, fb, fa),
                })
            }
            Expr::New(_) | Expr::Call { .. } => {
                err("calls/allocations only allowed as full right-hand sides")
            }
        }
    }

    /// Class of a receiver expression (for method lookup). A bare name may
    /// be a local, an instance field of the enclosing class, or a class
    /// name (static call).
    fn receiver_class(&self, e: &Expr) -> Result<Symbol, VcgenError> {
        match e {
            Expr::This => Ok(self.class),
            Expr::Local(x) => {
                if let Some(JType::Ref(c)) = self.local_types.get(x) {
                    return Ok(*c);
                }
                if self.program.classes.iter().any(|c| c.name == *x) {
                    return Ok(*x);
                }
                let qualified = jahob_javalite::resolve::qualify(self.class, *x);
                if let Some(c) = self.program.field_classes.get(&qualified) {
                    return Ok(*c);
                }
                err(format!("cannot resolve receiver `{x}`"))
            }
            other => err(format!("unsupported receiver expression {other:?}")),
        }
    }

    /// Is this receiver expression a class name (static call)?
    fn receiver_is_class(&self, e: &Expr) -> bool {
        matches!(e, Expr::Local(x)
            if !self.local_types.contains_key(x)
                && self.program.classes.iter().any(|c| c.name == *x))
    }
}

/// Default logical value of a field's target sort.
fn default_value(sort: &Sort) -> Form {
    match sort {
        Sort::Fun(_, ret) => default_value(ret),
        Sort::Bool => Form::ff(),
        Sort::Int => Form::IntLit(0),
        Sort::Set(_) => Form::EmptySet,
        _ => Form::Null,
    }
}

/// Generate the labeled obligations for one method.
pub fn method_obligations(
    program: &TypedProgram,
    method: &TypedMethod,
) -> Result<MethodVcs, VcgenError> {
    // Field-name lookup (bare names must be unambiguous program-wide).
    let mut field_names: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    for class in &program.classes {
        for (qualified, _, _) in &class.fields {
            let bare = Symbol::intern(
                qualified
                    .as_str()
                    .split_once('.')
                    .map(|(_, b)| b)
                    .unwrap_or(qualified.as_str()),
            );
            if let Some(existing) = field_names.insert(bare, *qualified) {
                if existing != *qualified {
                    return err(format!(
                        "field name `{bare}` is ambiguous ({existing} vs {qualified})"
                    ));
                }
            }
        }
    }

    let prefix = format!("{}.", method.class);
    let own_defs: FxHashMap<Symbol, Form> = program
        .defs
        .iter()
        .filter(|(k, _)| k.as_str().starts_with(&prefix))
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let mut ctx = Ctx {
        program,
        class: method.class,
        local_types: FxHashMap::default(),
        field_names,
        own_defs,
    };
    // Track parameter types from the typed method.
    for (pname, jt) in &method.param_types {
        ctx.local_types.insert(*pname, jt.clone());
    }

    let mut gcs: Vec<GC> = Vec::new();

    // Background heap axioms (the closed-world runtime invariants every
    // Java execution maintains): fields of `null` read as `null`, and
    // fields of allocated objects hold allocated-or-null values, so nothing
    // unallocated is ever reachable.
    let alloc = Form::v(sym::ALLOC);
    for class in &program.classes {
        for (qualified, sort, _) in &class.fields {
            if *sort != Sort::field(Sort::Obj) {
                continue;
            }
            let f = Form::Var(*qualified);
            gcs.push(GC::Assume(Form::eq(
                Form::app(f.clone(), vec![Form::Null]),
                Form::Null,
            )));
            let x = Symbol::intern("$hx");
            let fx = Form::app(f.clone(), vec![Form::Var(x)]);
            gcs.push(GC::Assume(Form::forall(
                vec![(x, Sort::Obj)],
                Form::implies(
                    Form::elem(Form::Var(x), alloc.clone()),
                    Form::or(vec![
                        Form::eq(fx.clone(), Form::Null),
                        Form::elem(fx.clone(), alloc.clone()),
                    ]),
                ),
            )));
            // Objects that do not exist yet hold default fields — the
            // strongest closed-world fact the runtime guarantees, and the
            // one that makes global backbone invariants (`tree [...]`)
            // insensitive to junk outside the allocated heap.
            gcs.push(GC::Assume(Form::forall(
                vec![(x, Sort::Obj)],
                Form::implies(
                    Form::not(Form::elem(Form::Var(x), alloc.clone())),
                    Form::eq(fx, Form::Null),
                ),
            )));
        }
    }

    // Entry assumptions: this is allocated and non-null; object params are
    // allocated-or-null; requires; invariants of the receiver.
    if !method.is_static {
        gcs.push(GC::Assume(Form::and(vec![
            Form::ne(Form::v(sym::THIS), Form::Null),
            Form::elem(Form::v(sym::THIS), alloc.clone()),
        ])));
    }
    for (pname, sort) in &method.params {
        if *sort == Sort::Obj {
            gcs.push(GC::Assume(Form::or(vec![
                Form::eq(Form::Var(*pname), Form::Null),
                Form::elem(Form::Var(*pname), alloc.clone()),
            ])));
        }
    }
    if method.is_constructor {
        // A constructor starts from a freshly allocated receiver whose
        // fields hold their default values.
        if let Some(cls) = program.classes.iter().find(|c| c.name == method.class) {
            for (qualified, sort, _) in &cls.fields {
                gcs.push(GC::Assume(Form::eq(
                    Form::app(Form::Var(*qualified), vec![Form::v(sym::THIS)]),
                    default_value(sort),
                )));
            }
        }
    }
    if let Some(req) = &method.contract.requires {
        gcs.push(GC::Assume(ctx.unfold(&strip_old(req))));
    }
    let this_sym = Symbol::intern(sym::THIS);
    for inv in program.invariants(method.class) {
        if method.is_static && inv.free_vars().contains(&this_sym) {
            continue;
        }
        gcs.push(GC::Assume(ctx.unfold(inv)));
    }

    // Body.
    if jahob_util::trace_enabled() {
        eprintln!(
            "[vcgen] {}.{}: translating body...",
            method.class, method.name
        );
    }
    translate_stmts(&mut ctx, &method.body, &mut gcs)?;

    // Exit obligations.
    let mut posts: Vec<Obligation> = Vec::new();
    if let Some(ens) = &method.contract.ensures {
        posts.push(Obligation {
            label: format!("{}.{}: ensures", method.class, method.name),
            form: ctx.unfold(ens),
        });
    }
    for (i, inv) in program.invariants(method.class).iter().enumerate() {
        if method.is_static && inv.free_vars().contains(&this_sym) {
            continue;
        }
        posts.push(Obligation {
            label: format!("{}.{}: invariant {}", method.class, method.name, i + 1),
            form: ctx.unfold(inv),
        });
    }

    if jahob_util::trace_enabled() {
        eprintln!(
            "[vcgen] {}.{}: wp over {} commands...",
            method.class,
            method.name,
            gcs.len()
        );
    }
    let raw = wp_list(&gcs, posts);
    if jahob_util::trace_enabled() {
        eprintln!(
            "[vcgen] {}.{}: {} raw obligations; finalizing...",
            method.class,
            method.name,
            raw.len()
        );
    }
    let obligations = finalize(raw)
        .into_iter()
        .map(|o| Obligation {
            label: o.label,
            form: jahob_logic::transform::simplify(&expand_field_writes(&o.form)),
        })
        .collect();
    Ok(MethodVcs {
        class: method.class,
        method: method.name,
        obligations,
    })
}

fn translate_stmts(ctx: &mut Ctx, stmts: &[Stmt], out: &mut Vec<GC>) -> Result<(), VcgenError> {
    for stmt in stmts {
        translate_stmt(ctx, stmt, out)?;
    }
    Ok(())
}

fn translate_stmt(ctx: &mut Ctx, stmt: &Stmt, out: &mut Vec<GC>) -> Result<(), VcgenError> {
    match stmt {
        Stmt::LocalDecl(name, ty, init) => {
            ctx.local_types.insert(*name, ty.clone());
            match init {
                None => out.push(GC::Havoc(*name)),
                Some(Expr::New(cls)) => translate_new(ctx, *name, *cls, out)?,
                Some(Expr::Call {
                    receiver,
                    method,
                    args,
                }) => translate_call(ctx, Some(*name), receiver.as_deref(), *method, args, out)?,
                Some(e) => {
                    let mut checks = Vec::new();
                    let f = ctx.expr_form(e, &mut checks)?;
                    out.extend(checks);
                    out.push(GC::Assign(*name, f));
                }
            }
            Ok(())
        }
        Stmt::Assign(lv, rhs) => {
            match (lv, rhs) {
                (LValue::Local(name), Expr::New(cls)) => {
                    match ctx.resolve_name(*name) {
                        NameKind::Local => translate_new(ctx, *name, *cls, out),
                        _ => {
                            // Allocate into a temporary, then store.
                            let tmp = Symbol::fresh(*name);
                            ctx.local_types.insert(tmp, JType::Ref(*cls));
                            translate_new(ctx, tmp, *cls, out)?;
                            translate_stmt(
                                ctx,
                                &Stmt::Assign(LValue::Local(*name), Expr::Local(tmp)),
                                out,
                            )
                        }
                    }
                }
                (
                    LValue::Local(name),
                    Expr::Call {
                        receiver,
                        method,
                        args,
                    },
                ) => translate_call(ctx, Some(*name), receiver.as_deref(), *method, args, out),
                (LValue::Local(name), e) => {
                    let mut checks = Vec::new();
                    let f = ctx.expr_form(e, &mut checks)?;
                    out.extend(checks);
                    match ctx.resolve_name(*name) {
                        NameKind::Local => out.push(GC::Assign(*name, f)),
                        NameKind::InstanceField(q) => out.push(GC::Assign(
                            q,
                            Form::field_write(Form::Var(q), Form::v(sym::THIS), f),
                        )),
                        NameKind::StaticField(q) => out.push(GC::Assign(q, f)),
                    }
                    Ok(())
                }
                (LValue::Field(base, field), e) => {
                    let mut checks = Vec::new();
                    let b = ctx.expr_form(base, &mut checks)?;
                    let v = ctx.expr_form(e, &mut checks)?;
                    out.extend(checks);
                    out.push(GC::Assert(
                        Form::ne(b.clone(), Form::Null),
                        format!("assignment receiver of .{field} may be null"),
                    ));
                    let qf = ctx.qualify_field(*field)?;
                    out.push(GC::Assign(qf, Form::field_write(Form::Var(qf), b, v)));
                    Ok(())
                }
            }
        }
        Stmt::ExprStmt(Expr::Call {
            receiver,
            method,
            args,
        }) => translate_call(ctx, None, receiver.as_deref(), *method, args, out),
        Stmt::ExprStmt(other) => err(format!("expression statement must be a call: {other:?}")),
        Stmt::If(cond, then_b, else_b) => {
            let mut checks = Vec::new();
            let c = ctx.expr_form(cond, &mut checks)?;
            out.extend(checks);
            let mut tb = vec![GC::Assume(c.clone())];
            translate_stmts(ctx, then_b, &mut tb)?;
            let mut eb = vec![GC::Assume(Form::not(c))];
            translate_stmts(ctx, else_b, &mut eb)?;
            out.push(GC::Choice(vec![GC::Seq(tb), GC::Seq(eb)]));
            Ok(())
        }
        Stmt::While {
            cond,
            invariants,
            body,
        } => {
            // Calls in the condition (`while (!a.empty())`) are hoisted into
            // effect-free evaluation statements that run before *every*
            // guard test — in particular after the invariant havoc, so the
            // guard keeps its meaning on the arbitrary iteration and on
            // exit.
            let (guard_eval, cond2) = match hoist_condition_calls(cond) {
                Some((pre, cond2, _)) => (pre, cond2),
                None => (Vec::new(), cond.clone()),
            };
            // Evaluation statements declare their temporaries; translate a
            // first copy before the loop (entry guard state).
            translate_stmts(ctx, &guard_eval, out)?;

            let inv = ctx.unfold(&Form::and(invariants.clone()));
            let mut checks = Vec::new();
            let c = ctx.expr_form(&cond2, &mut checks)?;
            out.extend(checks.clone());
            // Invariant holds on entry.
            out.push(GC::Assert(inv.clone(), "loop invariant initially".into()));
            // Havoc everything the body (and the guard evaluation) assigns,
            // assume the invariant.
            let mut body_gcs: Vec<GC> = Vec::new();
            let mut body_ctx_types = ctx.local_types.clone();
            translate_stmts(ctx, body, &mut body_gcs)?;
            std::mem::swap(&mut ctx.local_types, &mut body_ctx_types);
            ctx.local_types.extend(body_ctx_types);
            let mut eval_gcs: Vec<GC> = Vec::new();
            translate_eval(ctx, &guard_eval, &mut eval_gcs)?;
            let mut touched = Vec::new();
            assigned_symbols(&body_gcs, &mut touched);
            assigned_symbols(&eval_gcs, &mut touched);
            for s in &touched {
                out.push(GC::Havoc(*s));
            }
            out.push(GC::Assume(inv.clone()));
            // Either run the body once more (and re-establish the
            // invariant, then stop exploring this path), or exit the loop.
            // Both branches re-evaluate the guard first.
            let mut arbitrary_iteration = eval_gcs.clone();
            arbitrary_iteration.push(GC::Assume(c.clone()));
            arbitrary_iteration.extend(checks.clone());
            arbitrary_iteration.extend(body_gcs);
            arbitrary_iteration.push(GC::Assert(inv.clone(), "loop invariant preserved".into()));
            arbitrary_iteration.push(GC::Assume(Form::ff()));
            let mut exit = eval_gcs;
            exit.push(GC::Assume(Form::not(c)));
            out.push(GC::Choice(vec![
                GC::Seq(arbitrary_iteration),
                GC::Seq(exit),
            ]));
            Ok(())
        }
        Stmt::Return(value) => {
            if let Some(e) = value {
                let mut checks = Vec::new();
                let f = ctx.expr_form(e, &mut checks)?;
                out.extend(checks);
                out.push(GC::Assign(Symbol::intern(sym::RESULT), f));
            }
            // Tail returns fall through to the exit obligations; early
            // returns are not supported (the figures use tail returns only).
            Ok(())
        }
        Stmt::GhostAssign(name, value) => {
            let value = &ctx.unfold(value);
            // Instance ghost of this class → fieldWrite at `this`; static →
            // plain assign; plain local ghost otherwise.
            let qualified = jahob_javalite::resolve::qualify(ctx.class, *name);
            if let Some(sort) = ctx.program.sig.get(&qualified) {
                let gc = if matches!(sort, Sort::Fun(_, _)) {
                    GC::Assign(
                        qualified,
                        Form::field_write(Form::Var(qualified), Form::v(sym::THIS), value.clone()),
                    )
                } else {
                    GC::Assign(qualified, value.clone())
                };
                out.push(gc);
            } else {
                out.push(GC::Assign(*name, value.clone()));
            }
            Ok(())
        }
        Stmt::Assert(f) => {
            out.push(GC::Assert(ctx.unfold(f), "assert".into()));
            Ok(())
        }
        Stmt::Assume(f) => {
            out.push(GC::Assume(ctx.unfold(f)));
            Ok(())
        }
        Stmt::NoteThat(f) => {
            let f = ctx.unfold(f);
            out.push(GC::Assert(f.clone(), "noteThat".into()));
            out.push(GC::Assume(f));
            Ok(())
        }
    }
}

/// Translate guard-evaluation statements as *assignments* (their
/// temporaries were already declared by the pre-loop copy).
fn translate_eval(ctx: &mut Ctx, stmts: &[Stmt], out: &mut Vec<GC>) -> Result<(), VcgenError> {
    for s in stmts {
        match s {
            Stmt::LocalDecl(name, _, Some(init)) => {
                translate_stmt(ctx, &Stmt::Assign(LValue::Local(*name), init.clone()), out)?
            }
            other => translate_stmt(ctx, other, out)?,
        }
    }
    Ok(())
}

/// If the condition contains method calls, hoist each into a fresh boolean
/// temporary: returns (pre-loop statements declaring the temporaries, the
/// rewritten condition, and the in-body statements recomputing them).
fn hoist_condition_calls(cond: &Expr) -> Option<(Vec<Stmt>, Expr, Vec<Stmt>)> {
    fn rewrite(e: &Expr, pre: &mut Vec<Stmt>, recompute: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Call { .. } => {
                let tmp = Symbol::fresh(Symbol::intern("condcall"));
                pre.push(Stmt::LocalDecl(tmp, JType::Boolean, Some(e.clone())));
                recompute.push(Stmt::Assign(LValue::Local(tmp), e.clone()));
                Expr::Local(tmp)
            }
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(rewrite(inner, pre, recompute))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(rewrite(a, pre, recompute)),
                Box::new(rewrite(b, pre, recompute)),
            ),
            other => other.clone(),
        }
    }
    let mut pre = Vec::new();
    let mut recompute = Vec::new();
    let rewritten = rewrite(cond, &mut pre, &mut recompute);
    if pre.is_empty() {
        None
    } else {
        Some((pre, rewritten, recompute))
    }
}

/// `x = new C();` — fresh object with default fields; run the user-defined
/// constructor contract when the class declares one.
fn translate_new(
    ctx: &mut Ctx,
    target: Symbol,
    class: Symbol,
    out: &mut Vec<GC>,
) -> Result<(), VcgenError> {
    ctx.local_types.insert(target, JType::Ref(class));
    let alloc_sym = Symbol::intern(sym::ALLOC);
    out.push(GC::Havoc(target));
    out.push(GC::Assume(Form::and(vec![
        Form::ne(Form::Var(target), Form::Null),
        Form::not(Form::elem(Form::Var(target), Form::Var(alloc_sym))),
    ])));
    // Fields of the fresh object are default-initialized.
    if let Some(cls) = ctx.program.classes.iter().find(|c| c.name == class) {
        for (qualified, sort, _) in &cls.fields {
            out.push(GC::Assume(Form::eq(
                Form::app(Form::Var(*qualified), vec![Form::Var(target)]),
                default_value(sort),
            )));
        }
    }
    out.push(GC::Assign(
        alloc_sym,
        Form::binop(
            BinOp::Union,
            Form::Var(alloc_sym),
            Form::FiniteSet(vec![Form::Var(target)]),
        ),
    ));
    // User-defined constructor contract.
    if let Some(ctor) = ctx
        .program
        .classes
        .iter()
        .find(|c| c.name == class)
        .and_then(|c| c.methods.iter().find(|m| m.is_constructor))
    {
        apply_contract(ctx, ctor, Some(Form::Var(target)), &[], None, out)?;
    }
    Ok(())
}

fn translate_call(
    ctx: &mut Ctx,
    target: Option<Symbol>,
    receiver: Option<&Expr>,
    method: Symbol,
    args: &[Expr],
    out: &mut Vec<GC>,
) -> Result<(), VcgenError> {
    let callee_class = match receiver {
        Some(r) => ctx.receiver_class(r)?,
        None => ctx.class,
    };
    let callee = ctx
        .program
        .classes
        .iter()
        .find(|c| c.name == callee_class)
        .and_then(|c| {
            c.methods
                .iter()
                .find(|m| m.name == method && !m.is_constructor)
        })
        .cloned();
    let Some(callee) = callee else {
        return err(format!("unknown method {callee_class}.{method}"));
    };
    let mut checks = Vec::new();
    let recv_form = match receiver {
        Some(r) if ctx.receiver_is_class(r) => None,
        Some(r) => {
            let f = ctx.expr_form(r, &mut checks)?;
            Some(f)
        }
        None => {
            if callee.is_static {
                None
            } else {
                Some(Form::v(sym::THIS))
            }
        }
    };
    let mut arg_forms = Vec::new();
    for a in args {
        arg_forms.push(ctx.expr_form(a, &mut checks)?);
    }
    out.extend(checks);
    if let Some(r) = &recv_form {
        out.push(GC::Assert(
            Form::ne(r.clone(), Form::Null),
            format!("call receiver of .{method} may be null"),
        ));
    }
    apply_contract(ctx, &callee, recv_form, &arg_forms, target, out)
}

/// Replace a call by its contract: assert the precondition, snapshot the
/// modified state, update it, and assume the postcondition.
///
/// All pre/post bookkeeping is by *substitution*: snapshots are plain
/// assignments (`snap := s`), updates are assignments of `fieldWrite`
/// terms based on the snapshots, and `old e` inside the callee's ensures is
/// rewritten to `e[s := snap]` — no function-equality assumptions are ever
/// introduced, keeping every obligation inside the provers' fragments.
///
/// Known limitation (documented in DESIGN.md): a call target must not also
/// appear among the arguments (`x = r.m(x)`), since the result havoc would
/// capture the argument occurrence.
fn apply_contract(
    _ctx: &mut Ctx,
    callee: &TypedMethod,
    receiver: Option<Form>,
    args: &[Form],
    target: Option<Symbol>,
    out: &mut Vec<GC>,
) -> Result<(), VcgenError> {
    if args.len() != callee.params.len() {
        return err(format!(
            "arity mismatch calling {}.{}",
            callee.class, callee.name
        ));
    }
    if let Some(t) = target {
        for a in args {
            if a.free_vars().contains(&t) {
                return err(format!(
                    "call target `{t}` must not appear among the arguments"
                ));
            }
        }
    }
    // Parameter/this instantiation.
    let mut inst: FxHashMap<Symbol, Form> = FxHashMap::default();
    if let Some(r) = &receiver {
        inst.insert(Symbol::intern(sym::THIS), r.clone());
    }
    for ((pname, _), actual) in callee.params.iter().zip(args) {
        inst.insert(*pname, actual.clone());
    }

    // Precondition.
    if let Some(req) = &callee.contract.requires {
        let req = strip_old(&req.subst(&inst));
        out.push(GC::Assert(
            req,
            format!("precondition of {}.{}", callee.class, callee.name),
        ));
    }

    // Modified designators: `C.v this`-style applications are targeted
    // per-instance updates; plain symbols are whole-state havocs.
    struct Mod {
        symbol: Symbol,
        receiver: Option<Form>,
        snap: Symbol,
        fresh: Symbol,
    }
    let mut mods: Vec<Mod> = Vec::new();
    for designator in &callee.contract.modifies {
        let d = designator.subst(&inst);
        match &d {
            Form::Var(s) => {
                let s = *s;
                mods.push(Mod {
                    symbol: s,
                    receiver: None,
                    snap: Symbol::fresh(s),
                    fresh: Symbol::fresh(s),
                });
            }
            Form::App(head, dargs) if dargs.len() == 1 => {
                let Form::Var(s) = head.as_ref() else {
                    return err(format!("unsupported modifies designator {d}"));
                };
                let s = *s;
                mods.push(Mod {
                    symbol: s,
                    receiver: Some(dargs[0].clone()),
                    snap: Symbol::fresh(s),
                    fresh: Symbol::fresh(s),
                });
            }
            other => return err(format!("unsupported modifies designator {other}")),
        }
    }

    // 1. Snapshot pre-call state.
    for m in &mods {
        out.push(GC::Assign(m.snap, Form::Var(m.symbol)));
    }
    // 2. Havoc the call target.
    if let Some(t) = target {
        out.push(GC::Havoc(t));
    }
    // 3. Update the modified state (fresh values are unconstrained free
    // symbols; no havoc needed since they are globally fresh).
    for m in &mods {
        let updated = match &m.receiver {
            None => Form::Var(m.fresh),
            Some(r) => Form::field_write(Form::Var(m.snap), r.clone(), Form::Var(m.fresh)),
        };
        out.push(GC::Assign(m.symbol, updated));
    }
    // 4. Assume the postcondition: plain state names denote the post state
    // (the step-3 assignments substitute them backwards); `old e` denotes
    // the pre-call state, reached through the snapshots.
    let mut ens = callee
        .contract
        .ensures
        .clone()
        .unwrap_or_else(Form::tt)
        .subst(&inst);
    if let Some(t) = target {
        let mut m = FxHashMap::default();
        m.insert(Symbol::intern(sym::RESULT), Form::Var(t));
        ens = ens.subst(&m);
    }
    let snap_map: FxHashMap<Symbol, Form> =
        mods.iter().map(|m| (m.symbol, Form::Var(m.snap))).collect();
    let ens_final = replace_old(&ens, &snap_map);
    out.push(GC::Assume(ens_final));
    Ok(())
}

/// `old e` → `e[s := snap_s]` for the modified symbols (unmodified symbols
/// retain the same value across the call, so their plain names are already
/// the pre-call values).
fn replace_old(form: &Form, snap_map: &FxHashMap<Symbol, Form>) -> Form {
    match form {
        Form::Old(inner) => replace_old(inner, snap_map).subst(snap_map),
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
            form.clone()
        }
        Form::Tree(es) => Form::Tree(es.iter().map(|e| replace_old(e, snap_map)).collect()),
        Form::FiniteSet(es) => {
            Form::FiniteSet(es.iter().map(|e| replace_old(e, snap_map)).collect())
        }
        Form::And(ps) => Form::and(ps.iter().map(|p| replace_old(p, snap_map)).collect()),
        Form::Or(ps) => Form::or(ps.iter().map(|p| replace_old(p, snap_map)).collect()),
        Form::Unop(op, a) => Form::Unop(*op, std::rc::Rc::new(replace_old(a, snap_map))),
        Form::Binop(op, a, b) => {
            Form::binop(*op, replace_old(a, snap_map), replace_old(b, snap_map))
        }
        Form::Ite(c, t, e) => Form::Ite(
            std::rc::Rc::new(replace_old(c, snap_map)),
            std::rc::Rc::new(replace_old(t, snap_map)),
            std::rc::Rc::new(replace_old(e, snap_map)),
        ),
        Form::App(h, args) => Form::app(
            replace_old(h, snap_map),
            args.iter().map(|a| replace_old(a, snap_map)).collect(),
        ),
        Form::Quant(k, bs, body) => Form::Quant(
            *k,
            bs.clone(),
            std::rc::Rc::new(replace_old(body, snap_map)),
        ),
        Form::Lambda(bs, body) => {
            Form::Lambda(bs.clone(), std::rc::Rc::new(replace_old(body, snap_map)))
        }
        Form::Compr(x, so, body) => Form::Compr(
            *x,
            so.clone(),
            std::rc::Rc::new(replace_old(body, snap_map)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_javalite::{parse_program, resolve};

    fn vcs_for(src: &str, class: &str, method: &str) -> MethodVcs {
        let prog = parse_program(src).unwrap();
        let typed = resolve(&prog).unwrap();
        let m = typed.method(class, method).unwrap();
        method_obligations(&typed, m).unwrap()
    }

    #[test]
    fn straight_line_assignment() {
        let src = r#"
class C {
  /*: public static specvar g :: int; */
  public void m(int k)
  /*: requires "0 <= k" modifies g ensures "g = k + 1" */
  {
    //: g := "k + 1";
  }
}
"#;
        let vcs = vcs_for(src, "C", "m");
        // VC: 0 <= k --> k + 1 = k + 1 — discharged by the simplifier.
        assert!(vcs.obligations.is_empty(), "{:?}", vcs.obligations);
    }

    #[test]
    fn null_check_obligations() {
        let src = r#"
class C {
  C f;
  public void m(C x) {
    C y = x.f;
  }
}
"#;
        let vcs = vcs_for(src, "C", "m");
        assert!(
            vcs.obligations.iter().any(|o| o.label.contains("null")),
            "{:?}",
            vcs.obligations
        );
    }

    #[test]
    fn loop_produces_invariant_obligations() {
        let src = r#"
class C {
  /*: public static specvar g :: int; */
  public static void m(int k, int limit)
  /*: requires "k <= 0" modifies g ensures "k <= g" */
  {
    //: g := "0";
    while (g < limit)
    /*: inv "k <= g" */
    {
      //: g := "g + 1";
    }
  }
}
"#;
        let vcs = vcs_for(src, "C", "m");
        let labels: Vec<&str> = vcs.obligations.iter().map(|o| o.label.as_str()).collect();
        // "initially" (k ≤ 0 → k ≤ 0) is discharged by the simplifier;
        // "preserved" and "ensures" survive and must be LIA-valid.
        assert!(labels.iter().any(|l| l.contains("preserved")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("ensures")), "{labels:?}");
        // And each surviving obligation is LIA-valid.
        for o in &vcs.obligations {
            assert_eq!(
                jahob_presburger::translate::decide_valid(&o.form),
                Ok(true),
                "{}: {}",
                o.label,
                o.form
            );
        }
    }

    #[test]
    fn call_contract_inlined() {
        let src = r#"
class Cell {
  /*: public specvar val :: int; */
  public void set(int k)
  /*: modifies val ensures "val = k" */
  { //: val := "k";
  }
}
class User {
  public void use(Cell c)
  /*: requires "c ~= null" modifies "Cell.val" ensures "True" */
  {
    c.set(5);
    //: assert "c..Cell.val = 5";
  }
}
"#;
        let vcs = vcs_for(src, "User", "use");
        // The assert `c..Cell.val = 5` is discharged by pure simplification
        // of the inlined contract (fieldWrite at the same receiver), so no
        // obligation survives under that label — and any that do survive
        // must still mention only call-frame state.
        assert!(
            !vcs.obligations.iter().any(|o| o.label == "assert"),
            "{:?}",
            vcs.obligations
        );
    }

    #[test]
    fn new_object_is_fresh() {
        let src = r#"
class C {
  public Object make()
  /*: ensures "result ~= null & result ~: old Object.alloc" */
  {
    Object x = new Object();
    return x;
  }
}
class Object { }
"#;
        let vcs = vcs_for(src, "C", "make");
        // The ensures obligation should simplify toward True under the
        // freshness assumptions; at minimum it must not mention `old`.
        for o in &vcs.obligations {
            assert!(!o.form.contains_old(), "old left in {}", o.form);
        }
    }

    #[test]
    fn obligations_decompose_into_sequents() {
        let src = r#"
class C {
  public static int g;
  public static int h;
  public void m(int x)
  /*: requires "x > 0 & g > 0" ensures "True" */
  {
    //: assert "x + g > 0";
  }
}
"#;
        let vcs = vcs_for(src, "C", "m");
        let assert_ob = vcs
            .obligations
            .iter()
            .find(|o| o.label.contains("assert"))
            .expect("assert obligation");
        let seq = assert_ob.sequent();
        // The entry assumptions arrive as named hypotheses at conjunct
        // granularity, and the goal is the asserted formula.
        assert!(!seq.hyps.is_empty(), "{:?}", assert_ob.form);
        for (i, h) in seq.hyps.iter().enumerate() {
            assert_eq!(h.name, format!("h{i}"));
        }
        assert!(
            seq.goal.to_string().contains("+"),
            "goal should be the asserted sum: {}",
            seq.goal
        );
        // Refolding the sequent is the obligation again, up to hypothesis
        // flattening — dispatching it must prove identically.
        let refolded = seq.to_form();
        assert_eq!(
            jahob_presburger::translate::decide_valid(&refolded),
            jahob_presburger::translate::decide_valid(&assert_ob.form),
        );
    }

    #[test]
    fn figure_list_add_generates() {
        let src = include_str!("../../../case_studies/list.javax");
        let vcs = vcs_for(src, "List", "add");
        assert!(!vcs.obligations.is_empty());
        // All obligations are old-free and mention the update of next or
        // first somewhere in the ensures obligation.
        let ens = vcs
            .obligations
            .iter()
            .find(|o| o.label.contains("ensures"))
            .expect("ensures obligation");
        let text = ens.form.to_string();
        // The abstraction function is unfolded and the heap updates flow
        // into it as case splits.
        assert!(text.contains("rtrancl_pt"), "{text}");
        assert!(text.contains("ite"), "{text}");
        assert!(!ens.form.contains_old());
    }
}
