//! `jahob-vcgen`: the verification-condition generator.
//!
//! §2.4: "The Jahob framework is ... set up as a verification condition
//! generator that can invoke any one of a number of decision procedures to
//! discharge the proof obligations." This crate implements that generator:
//!
//! * method bodies desugar to a guarded-command IR ([`gc::GC`]): `assume`,
//!   labeled `assert`, assignment (fields update with `fieldWrite`), havoc,
//!   sequencing, and nondeterministic choice;
//! * calls are replaced by their contracts (assert precondition, update the
//!   modified state, assume postcondition) — the *modular* analysis of §1;
//! * loops are cut at their invariants (provided in the source; `jahob-shape`
//!   can infer candidates that are checked the same way — "speculative
//!   engines that may generate incorrect loop invariants ... detected and
//!   rejected");
//! * weakest preconditions are computed backwards over labeled
//!   postconditions, entirely by substitution (no function-equality
//!   snapshots); `old e` is frozen during substitution and dissolves at the
//!   method entry point;
//! * each method yields a list of labeled [`Obligation`]s: the postcondition,
//!   each class invariant re-established on `this`, every inline `assert`,
//!   and a null-dereference check per field access.

pub mod gc;
pub mod method;

pub use gc::{Obligation, GC};
pub use method::{method_obligations, MethodVcs, VcgenError};

use jahob_javalite::TypedProgram;

/// Generate obligations for every non-`assuming` method of the program.
pub fn program_obligations(program: &TypedProgram) -> Result<Vec<MethodVcs>, VcgenError> {
    let mut out = Vec::new();
    for class in &program.classes {
        for m in &class.methods {
            if m.contract.assumed {
                continue;
            }
            out.push(method_obligations(program, m)?);
        }
    }
    Ok(out)
}
