//! The guarded-command IR and its weakest-precondition transformer.

use jahob_logic::{BinOp, Form, QKind, Sort, UnOp};
use jahob_util::{FxHashMap, Symbol};
use std::rc::Rc;

/// A guarded command.
#[derive(Clone, Debug)]
pub enum GC {
    /// Add a hypothesis.
    Assume(Form),
    /// A labeled proof obligation (and a hypothesis afterwards).
    Assert(Form, String),
    /// Update a state variable (locals, or field/specvar function symbols —
    /// field updates assign `fieldWrite(f, x, v)` to `f`).
    Assign(Symbol, Form),
    /// Forget a state variable's value.
    Havoc(Symbol),
    /// Sequential composition.
    Seq(Vec<GC>),
    /// Nondeterministic choice between alternatives.
    Choice(Vec<GC>),
}

/// A labeled proof obligation.
#[derive(Clone, Debug)]
pub struct Obligation {
    pub label: String,
    pub form: Form,
}

impl Obligation {
    /// The obligation as an explicit sequent: the implication chain the
    /// WP transformer built (entry assumptions, background axioms, path
    /// conditions) peeled into named hypotheses and a goal. This is the
    /// shape the dispatcher's relevance slicer works on; exposing it
    /// here makes the VC-gen → dispatcher boundary sequent-shaped
    /// rather than an opaque formula.
    pub fn sequent(&self) -> jahob_logic::sequent::Sequent {
        jahob_logic::sequent::Sequent::of(&self.form)
    }
}

/// Substitute `map` into `form` without descending under `old` (pre-state
/// expressions are frozen until the entry point). Capture-avoiding: binders
/// clashing with free variables of the replacements are renamed (state
/// updates like `fieldWrite(data, n, o)` routinely flow under comprehension
/// binders named `n`).
pub fn subst_outside_old(form: &Form, map: &FxHashMap<Symbol, Form>) -> Form {
    if map.is_empty() {
        return form.clone();
    }
    let mut replacement_frees: jahob_util::FxHashSet<Symbol> = jahob_util::FxHashSet::default();
    for f in map.values() {
        replacement_frees.extend(f.free_vars());
    }
    subst_oo(form, map, &replacement_frees)
}

fn subst_oo(
    form: &Form,
    map: &FxHashMap<Symbol, Form>,
    replacement_frees: &jahob_util::FxHashSet<Symbol>,
) -> Form {
    /// Rename binders that would capture replacement free variables, and
    /// drop shadowed map entries.
    fn under_binders(
        binders: &[(Symbol, jahob_logic::Sort)],
        body: &Form,
        map: &FxHashMap<Symbol, Form>,
        replacement_frees: &jahob_util::FxHashSet<Symbol>,
    ) -> (Vec<(Symbol, jahob_logic::Sort)>, Form) {
        let mut inner_map: FxHashMap<Symbol, Form> = map
            .iter()
            .filter(|(k, _)| !binders.iter().any(|(b, _)| b == *k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut new_binders = Vec::with_capacity(binders.len());
        for (name, sort) in binders {
            if replacement_frees.contains(name) {
                let fresh = Symbol::fresh(*name);
                inner_map.insert(*name, Form::Var(fresh));
                new_binders.push((fresh, sort.clone()));
            } else {
                new_binders.push((*name, sort.clone()));
            }
        }
        let new_body = if inner_map.is_empty() {
            body.clone()
        } else {
            // Renamings may themselves need full capture-avoiding treatment
            // one level down; recompute frees for the extended map.
            let mut frees = replacement_frees.clone();
            for f in inner_map.values() {
                frees.extend(f.free_vars());
            }
            subst_oo(body, &inner_map, &frees)
        };
        (new_binders, new_body)
    }
    match form {
        Form::Old(_) => form.clone(),
        Form::Var(name) => map.get(name).cloned().unwrap_or_else(|| form.clone()),
        Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => form.clone(),
        Form::Tree(es) => Form::Tree(
            es.iter()
                .map(|e| subst_oo(e, map, replacement_frees))
                .collect(),
        ),
        Form::FiniteSet(es) => Form::FiniteSet(
            es.iter()
                .map(|e| subst_oo(e, map, replacement_frees))
                .collect(),
        ),
        Form::And(ps) => Form::and(
            ps.iter()
                .map(|p| subst_oo(p, map, replacement_frees))
                .collect(),
        ),
        Form::Or(ps) => Form::or(
            ps.iter()
                .map(|p| subst_oo(p, map, replacement_frees))
                .collect(),
        ),
        Form::Unop(op, a) => Form::Unop(*op, Rc::new(subst_oo(a, map, replacement_frees))),
        Form::Binop(op, a, b) => Form::binop(
            *op,
            subst_oo(a, map, replacement_frees),
            subst_oo(b, map, replacement_frees),
        ),
        Form::Ite(c, t, e) => Form::Ite(
            Rc::new(subst_oo(c, map, replacement_frees)),
            Rc::new(subst_oo(t, map, replacement_frees)),
            Rc::new(subst_oo(e, map, replacement_frees)),
        ),
        Form::App(h, args) => Form::app(
            subst_oo(h, map, replacement_frees),
            args.iter()
                .map(|a| subst_oo(a, map, replacement_frees))
                .collect(),
        ),
        Form::Quant(k, binders, body) => {
            let (bs, b) = under_binders(binders, body, map, replacement_frees);
            Form::Quant(*k, bs, Rc::new(b))
        }
        Form::Lambda(binders, body) => {
            let (bs, b) = under_binders(binders, body, map, replacement_frees);
            Form::Lambda(bs, Rc::new(b))
        }
        Form::Compr(x, s, body) => {
            let binders = vec![(*x, s.clone())];
            let (bs, b) = under_binders(&binders, body, map, replacement_frees);
            let (x2, s2) = bs.into_iter().next().unwrap();
            Form::Compr(x2, s2, Rc::new(b))
        }
    }
}

fn subst1_outside_old(form: &Form, x: Symbol, e: &Form) -> Form {
    let mut map = FxHashMap::default();
    map.insert(x, e.clone());
    subst_outside_old(form, &map)
}

/// Dissolve `old e` wrappers (used once the entry point is reached, where
/// pre-state and current state coincide).
pub fn strip_old(form: &Form) -> Form {
    match form {
        Form::Old(inner) => strip_old(inner),
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
            form.clone()
        }
        Form::Tree(es) => Form::Tree(es.iter().map(strip_old).collect()),
        Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(strip_old).collect()),
        Form::And(ps) => Form::and(ps.iter().map(strip_old).collect()),
        Form::Or(ps) => Form::or(ps.iter().map(strip_old).collect()),
        Form::Unop(op, a) => Form::Unop(*op, Rc::new(strip_old(a))),
        Form::Binop(op, a, b) => Form::binop(*op, strip_old(a), strip_old(b)),
        Form::Ite(c, t, e) => Form::Ite(
            Rc::new(strip_old(c)),
            Rc::new(strip_old(t)),
            Rc::new(strip_old(e)),
        ),
        Form::App(h, args) => Form::app(strip_old(h), args.iter().map(strip_old).collect()),
        Form::Quant(k, bs, body) => Form::Quant(*k, bs.clone(), Rc::new(strip_old(body))),
        Form::Lambda(bs, body) => Form::Lambda(bs.clone(), Rc::new(strip_old(body))),
        Form::Compr(x, s, body) => Form::Compr(*x, s.clone(), Rc::new(strip_old(body))),
    }
}

/// Rewrite applied `fieldWrite` chains into `Ite` so downstream provers see
/// case splits instead of update terms: `fieldWrite f a v x` →
/// `ite (x = a) v (f x)`. Iterated to a fixpoint: rebuilding applications
/// flattens curried chains, which can expose new redexes.
pub fn expand_field_writes(form: &Form) -> Form {
    let mut current = form.clone();
    for _ in 0..16 {
        let next = expand_fw_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn expand_fw_once(form: &Form) -> Form {
    let rewritten = match form {
        Form::App(head, args) => {
            let head2 = expand_fw_once(head);
            let args2: Vec<Form> = args.iter().map(expand_fw_once).collect();
            if let Form::Var(h) = &head2 {
                if h.as_str() == jahob_logic::form::sym::FIELD_WRITE && args2.len() == 4 {
                    let f = args2[0].clone();
                    let at = args2[1].clone();
                    let val = args2[2].clone();
                    let x = args2[3].clone();
                    return Form::Ite(
                        Rc::new(Form::eq(x.clone(), at)),
                        Rc::new(val),
                        Rc::new(Form::app(f, vec![x])),
                    );
                }
            }
            Form::app(head2, args2)
        }
        Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
            form.clone()
        }
        Form::Tree(es) => Form::Tree(es.iter().map(expand_field_writes).collect()),
        Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(expand_field_writes).collect()),
        Form::And(ps) => Form::and(ps.iter().map(expand_field_writes).collect()),
        Form::Or(ps) => Form::or(ps.iter().map(expand_field_writes).collect()),
        Form::Unop(op, a) => Form::Unop(*op, Rc::new(expand_fw_once(a))),
        Form::Old(a) => Form::Old(Rc::new(expand_fw_once(a))),
        Form::Binop(op, a, b) => Form::binop(*op, expand_fw_once(a), expand_fw_once(b)),
        Form::Ite(c, t, e) => Form::Ite(
            Rc::new(expand_fw_once(c)),
            Rc::new(expand_fw_once(t)),
            Rc::new(expand_fw_once(e)),
        ),
        Form::Quant(k, bs, body) => Form::Quant(*k, bs.clone(), Rc::new(expand_fw_once(body))),
        Form::Lambda(bs, body) => Form::Lambda(bs.clone(), Rc::new(expand_fw_once(body))),
        Form::Compr(x, s, body) => Form::Compr(*x, s.clone(), Rc::new(expand_fw_once(body))),
    };
    rewritten
}

/// Backward weakest-precondition transformation of labeled obligations.
pub fn wp_list(gcs: &[GC], mut posts: Vec<Obligation>) -> Vec<Obligation> {
    for gc in gcs.iter().rev() {
        posts = wp_one(gc, posts);
    }
    posts
}

fn wp_one(gc: &GC, posts: Vec<Obligation>) -> Vec<Obligation> {
    match gc {
        GC::Assume(f) => posts
            .into_iter()
            .map(|o| Obligation {
                label: o.label,
                form: Form::implies(f.clone(), o.form),
            })
            .collect(),
        GC::Assert(f, label) => {
            // The assertion becomes an obligation here, and a hypothesis for
            // everything after it.
            let mut out: Vec<Obligation> = posts
                .into_iter()
                .map(|o| Obligation {
                    label: o.label,
                    form: Form::implies(f.clone(), o.form),
                })
                .collect();
            out.push(Obligation {
                label: label.clone(),
                form: f.clone(),
            });
            out
        }
        GC::Assign(x, e) => {
            // Small right-hand sides substitute directly. Large ones are
            // *passified*: substituting a big update term at every
            // occurrence grows formulas exponentially along an assignment
            // chain, so introduce a fresh name with a defining equality
            // hypothesis instead — wp(x := e, Q) = ∀x'. x' = e → Q[x:=x'].
            const DIRECT_SUBST_MAX: usize = 24;
            if e.size() <= DIRECT_SUBST_MAX {
                posts
                    .into_iter()
                    .map(|o| Obligation {
                        label: o.label,
                        form: subst1_outside_old(&o.form, *x, e),
                    })
                    .collect()
            } else {
                let fresh = Symbol::fresh(*x);
                let def = Form::eq(Form::Var(fresh), e.clone());
                posts
                    .into_iter()
                    .map(|o| {
                        let renamed = subst1_outside_old(&o.form, *x, &Form::Var(fresh));
                        Obligation {
                            label: o.label,
                            form: Form::implies(def.clone(), renamed),
                        }
                    })
                    .collect()
            }
        }
        GC::Havoc(x) => {
            let fresh = Symbol::fresh(*x);
            posts
                .into_iter()
                .map(|o| Obligation {
                    label: o.label,
                    form: subst1_outside_old(&o.form, *x, &Form::Var(fresh)),
                })
                .collect()
        }
        GC::Seq(inner) => wp_list(inner, posts),
        GC::Choice(branches) => {
            let mut out = Vec::new();
            for b in branches {
                out.extend(wp_one(b, posts.clone()));
            }
            out
        }
    }
}

/// Prune trivially-true obligations and simplify the rest; expand field
/// writes, dissolve `old` (callers invoke at the entry point).
pub fn finalize(obligations: Vec<Obligation>) -> Vec<Obligation> {
    obligations
        .into_iter()
        .filter_map(|o| {
            let form = jahob_logic::transform::simplify(&strip_old(&o.form));
            match form {
                Form::BoolLit(true) => None,
                form => Some(Obligation {
                    label: o.label,
                    form,
                }),
            }
        })
        .collect()
}

/// Does the formula mention any `Old`? (sanity checks in tests)
pub fn mentions_old(form: &Form) -> bool {
    form.contains_old()
}

/// Universally close an obligation over its free variables of the given
/// sorts — used when handing obligations to provers that expect sentences.
pub fn close_universally(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Form {
    let mut binders: Vec<(Symbol, Sort)> = Vec::new();
    for v in form.free_vars() {
        if let Some(sort) = sig.get(&v) {
            if matches!(sort, Sort::Obj) {
                binders.push((v, Sort::Obj));
            }
        }
    }
    if binders.is_empty() {
        form.clone()
    } else {
        Form::Quant(QKind::All, binders, Rc::new(form.clone()))
    }
}

/// Negation-safe check used by tests: the obligation list is conjunctively
/// equivalent to a single formula.
pub fn conjoin(obligations: &[Obligation]) -> Form {
    Form::and(obligations.iter().map(|o| o.form.clone()).collect())
}

/// Collect the state symbols assigned or havocked in a GC (used for loop
/// havoc computation).
pub fn assigned_symbols(gcs: &[GC], out: &mut Vec<Symbol>) {
    for gc in gcs {
        match gc {
            GC::Assign(x, _) | GC::Havoc(x) if !out.contains(x) => {
                out.push(*x);
            }
            GC::Seq(inner) | GC::Choice(inner) => assigned_symbols(inner, out),
            _ => {}
        }
    }
}

/// Keep `Unop`/`BinOp` imports referenced (they appear in pattern forms via
/// macro-free code paths above).
#[allow(dead_code)]
fn _sort_uses(_u: UnOp, _b: BinOp) {}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn ob(label: &str, f: Form) -> Obligation {
        Obligation {
            label: label.into(),
            form: f,
        }
    }

    #[test]
    fn wp_assign_substitutes() {
        let gcs = vec![GC::Assign(Symbol::intern("x"), form("y + 1"))];
        let out = wp_list(&gcs, vec![ob("post", form("x = 2"))]);
        assert_eq!(out[0].form, form("y + 1 = 2"));
    }

    #[test]
    fn wp_assume_implies() {
        let gcs = vec![GC::Assume(form("p"))];
        let out = wp_list(&gcs, vec![ob("post", form("q"))]);
        assert_eq!(out[0].form, form("p --> q"));
    }

    #[test]
    fn wp_assert_creates_obligation_and_hypothesis() {
        let gcs = vec![GC::Assert(form("p"), "check".into())];
        let out = wp_list(&gcs, vec![ob("post", form("q"))]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].form, form("p --> q"));
        assert_eq!(out[1].label, "check");
        assert_eq!(out[1].form, form("p"));
    }

    #[test]
    fn wp_havoc_freshens() {
        let gcs = vec![GC::Havoc(Symbol::intern("x"))];
        let out = wp_list(&gcs, vec![ob("post", form("x = x0"))]);
        // x replaced by a fresh symbol, so the form is no longer x = x0.
        assert_ne!(out[0].form, form("x = x0"));
        assert!(!out[0].form.free_vars().contains(&Symbol::intern("x")));
    }

    #[test]
    fn wp_choice_duplicates() {
        let gcs = vec![GC::Choice(vec![
            GC::Assume(form("a")),
            GC::Assume(form("b")),
        ])];
        let out = wp_list(&gcs, vec![ob("post", form("q"))]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].form, form("a --> q"));
        assert_eq!(out[1].form, form("b --> q"));
    }

    #[test]
    fn old_is_frozen_through_assign() {
        // wp(content := e, content = old content) must only substitute the
        // outer occurrence.
        let content = Symbol::intern("cc");
        let gcs = vec![GC::Assign(content, form("cc Un {o}"))];
        let out = wp_list(&gcs, vec![ob("post", form("cc = old cc Un {o}"))]);
        // outside: cc Un {o}; inside old: cc.
        assert_eq!(out[0].form, form("cc Un {o} = old cc Un {o}"));
        // Finalize at entry: old dissolves; the result is a tautology shape.
        let done = finalize(out);
        assert!(done.is_empty(), "tautology pruned: {done:?}");
    }

    #[test]
    fn expand_field_writes_to_ite() {
        let f = form("fieldWrite next a b x = y");
        let e = expand_field_writes(&f);
        let text = e.to_string();
        assert!(text.contains("ite"), "{text}");
        // Applying the case split: when x = a, value is b.
        let sim = jahob_logic::transform::simplify(&subst_outside_old(&e, &{
            let mut m = FxHashMap::default();
            m.insert(Symbol::intern("x"), form("a"));
            m
        }));
        assert_eq!(sim, form("b = y"));
    }

    #[test]
    fn assigned_symbols_collects() {
        let gcs = vec![
            GC::Assign(Symbol::intern("x"), form("1")),
            GC::Choice(vec![GC::Havoc(Symbol::intern("y"))]),
        ];
        let mut out = Vec::new();
        assigned_symbols(&gcs, &mut out);
        assert_eq!(out.len(), 2);
    }
}
