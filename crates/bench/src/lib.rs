//! `jahob-bench`: benchmark workload generators for every experiment in
//! EXPERIMENTS.md (E6–E13). The Criterion harnesses live in `benches/`;
//! this library exposes the generators so integration tests can assert the
//! workloads stay meaningful (each family must produce the expected
//! verdicts before it is worth timing).

use jahob_logic::Form;

/// E8 workload: a valid BAPA family sweeping the number of base sets —
/// `card(S1 ∪ … ∪ Sk) ≤ card S1 + … + card Sk`.
pub fn bapa_union_bound(k: usize) -> Form {
    assert!(k >= 2);
    let union = (1..k).fold(Form::v("B1"), |acc, i| {
        Form::binop(
            jahob_logic::BinOp::Union,
            acc,
            Form::v(&format!("B{}", i + 1)),
        )
    });
    let sum = (1..k).fold(Form::card(Form::v("B1")), |acc, i| {
        Form::binop(
            jahob_logic::BinOp::Add,
            acc,
            Form::card(Form::v(&format!("B{}", i + 1))),
        )
    });
    Form::binop(jahob_logic::BinOp::Le, Form::card(union), sum)
}

/// E9 workload: an existential LIA family — interval-with-divisibility
/// constraints of growing size, satisfiable exactly when `n` is even.
pub fn lia_interval(n: i64) -> Vec<jahob_presburger::Constraint> {
    use jahob_presburger::Constraint;
    vec![
        Constraint::ge(vec![1], -n),     // x >= n
        Constraint::ge(vec![-1], 2 * n), // x <= 2n
        Constraint::eq(vec![2], -3 * n), // 2x = 3n
    ]
}

/// The same E9 family as a quantified Cooper problem.
pub fn lia_interval_cooper(n: i64) -> jahob_presburger::PForm {
    use jahob_presburger::cooper::PForm;
    use jahob_presburger::linterm::LinTerm;
    let x = LinTerm::var(jahob_util::Symbol::intern("bx"));
    PForm::Ex(
        jahob_util::Symbol::intern("bx"),
        Box::new(PForm::and(vec![
            PForm::le(LinTerm::constant(n), x.clone()),
            PForm::le(x.clone(), LinTerm::constant(2 * n)),
            PForm::eq(x.scale(2), LinTerm::constant(3 * n)),
        ])),
    )
}

/// E10 workload: the EUF `f^(2k+1)(a) = a ∧ f^(2k+3)(a) = a → f(a) = a`
/// family (valid), sweeping k.
pub fn euf_cycle(k: usize) -> Form {
    fn pow(n: usize) -> Form {
        (0..n).fold(Form::v("ea"), |acc, _| Form::app(Form::v("ef"), vec![acc]))
    }
    Form::implies(
        Form::and(vec![
            Form::eq(pow(2 * k + 1), Form::v("ea")),
            Form::eq(pow(2 * k + 3), Form::v("ea")),
        ]),
        Form::eq(pow(1), Form::v("ea")),
    )
}

/// E13 workload: the broken-add mutant (see `examples/find_bug.rs`),
/// parameterized by nothing — returns source text.
pub fn broken_add_source() -> &'static str {
    include_str!("../data/broken_add.javax")
}

/// The paper's List source (E1).
pub fn list_source() -> &'static str {
    include_str!("../../../case_studies/list.javax")
}

/// The Figure 2 client source (E2).
pub fn client_source() -> &'static str {
    include_str!("../../../case_studies/client.javax")
}

/// The association list source (E3).
pub fn assoclist_source() -> &'static str {
    include_str!("../../../case_studies/assoclist.javax")
}

/// The global structures source (E4).
pub fn globalset_source() -> &'static str {
    include_str!("../../../case_studies/globalset.javax")
}

/// The strategy game source (E5).
pub fn game_source() -> &'static str {
    include_str!("../../../case_studies/game.javax")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_verdicts() {
        // E8: valid at every size we time.
        let sig = (1..=5)
            .map(|i| {
                (
                    jahob_util::Symbol::intern(&format!("B{i}")),
                    jahob_logic::Sort::objset(),
                )
            })
            .collect();
        for k in 2..=4 {
            assert_eq!(
                jahob_bapa::bapa_valid(&bapa_union_bound(k), &sig),
                Ok(true),
                "k={k}"
            );
        }
        // E9: omega and cooper agree on the parity family.
        for n in 1..=6 {
            let omega =
                jahob_presburger::omega_sat(&lia_interval(n)) == jahob_presburger::OmegaResult::Sat;
            let cooper = jahob_presburger::decide_closed(&lia_interval_cooper(n)).unwrap();
            assert_eq!(omega, cooper, "n={n}");
            assert_eq!(omega, n % 2 == 0, "n={n}");
        }
        // E10: valid for every k.
        let esig = jahob_util::FxHashMap::default();
        for k in 0..=2 {
            assert_eq!(
                jahob_smt::smt_valid(&euf_cycle(k), &esig),
                Ok(true),
                "k={k}"
            );
        }
    }
}
