//! E7: the MONA substitute on scalable WS1S families — tracks (subset
//! chains), quantifier alternation (ladders), list-segment length, and the
//! DFA-minimization ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jahob_mona::segments::{alternation_ladder, list_segment, subset_chain};
use jahob_mona::ws1s::{compile_opts, decide, WsVerdict};

fn bench_subset_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/subset_chain");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let formula = subset_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &formula, |b, f| {
            b.iter(|| {
                assert!(matches!(decide(f).unwrap(), WsVerdict::Valid));
            })
        });
    }
    group.finish();
}

fn bench_alternation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/alternation_ladder");
    group.sample_size(10);
    for d in [1usize, 2, 3, 4] {
        let formula = alternation_ladder(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &formula, |b, f| {
            b.iter(|| {
                assert!(matches!(decide(f).unwrap(), WsVerdict::Valid));
            })
        });
    }
    group.finish();
}

fn bench_list_segment(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/list_segment");
    group.sample_size(10);
    for n in [2usize, 4, 6, 8] {
        let formula = list_segment(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &formula, |b, f| {
            b.iter(|| {
                assert!(matches!(decide(f).unwrap(), WsVerdict::Valid));
            })
        });
    }
    group.finish();
}

fn bench_minimization_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/minimize_ablation");
    group.sample_size(10);
    let formula = subset_chain(6);
    group.bench_function("with_minimize", |b| {
        b.iter(|| compile_opts(&formula, true).unwrap().2)
    });
    group.bench_function("without_minimize", |b| {
        b.iter(|| compile_opts(&formula, false).unwrap().2)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_subset_chain,
    bench_alternation,
    bench_list_segment,
    bench_minimization_ablation
);
criterion_main!(benches);
