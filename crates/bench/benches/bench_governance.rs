//! Resource-governance overhead: budget plumbing must be invisible on
//! goals that fit comfortably inside their budget.
//!
//! Three measurements: a single prover (BAPA's Venn-region enumeration,
//! the hottest budgeted loop) with and without a live deadline+fuel
//! budget, the whole dispatcher portfolio with and without a
//! per-obligation deadline, and the chaos boundary check with no plan
//! armed vs a quiet armed plan (the unarmed fast path must be free: one
//! thread-local load per prover entry).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jahob_bench::bapa_union_bound;
use jahob_logic::{form, Form, Sort};
use jahob_util::budget::Budget;
use jahob_util::{FxHashMap, Symbol};
use std::time::Duration;

fn bapa_sig() -> FxHashMap<Symbol, Sort> {
    (1..=8)
        .map(|i| (Symbol::intern(&format!("B{i}")), Sort::objset()))
        .collect()
}

fn bench_budget_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("governance/bapa_budget_overhead");
    group.sample_size(10);
    let sig = bapa_sig();
    for k in [2usize, 3, 4] {
        let goal = bapa_union_bound(k);
        group.bench_with_input(BenchmarkId::new("unlimited", k), &goal, |b, g| {
            b.iter(|| assert_eq!(jahob_bapa::bapa_valid(g, &sig), Ok(true)))
        });
        group.bench_with_input(BenchmarkId::new("governed", k), &goal, |b, g| {
            b.iter(|| {
                let budget = Budget::new(Some(Duration::from_secs(10)), 50_000_000);
                assert_eq!(jahob_bapa::bapa_valid_budgeted(g, &sig, &budget), Ok(true))
            })
        });
    }
    group.finish();
}

fn bench_governed_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("governance/dispatch_portfolio");
    group.sample_size(10);
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("i", Sort::Int),
        ("j", Sort::Int),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    let goals: Vec<Form> = [
        "i < j --> i + 1 <= j",
        "S Int T <= S",
        "card (S Un T) <= card S + card T",
    ]
    .iter()
    .map(|s| form(s))
    .collect();
    for (name, timeout) in [
        ("ungoverned", None),
        ("deadline_1s", Some(Duration::from_secs(1))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &timeout, |b, t| {
            b.iter(|| {
                let mut d = jahob::Dispatcher::new(sig.clone(), FxHashMap::default());
                d.config.obligation_timeout = *t;
                for g in &goals {
                    assert!(d.prove(g).is_proved());
                }
            })
        });
    }
    group.finish();
}

/// Chaos-layer overhead on the dispatch portfolio. `unarmed` is the
/// shipped configuration — every prover entry crosses a `chaos::boundary`
/// that must cost one thread-local load; `armed_quiet` arms a plan with
/// no faults scheduled, pricing the decision path itself. The acceptance
/// bar is `unarmed` within 1% of the pre-chaos portfolio numbers
/// (`dispatch_portfolio/ungoverned` above).
fn bench_chaos_overhead(c: &mut Criterion) {
    use jahob::FaultPlan;
    use std::sync::Arc;
    let mut group = c.benchmark_group("governance/chaos_overhead");
    group.sample_size(10);
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    for (n, s) in [
        ("S", Sort::objset()),
        ("T", Sort::objset()),
        ("i", Sort::Int),
        ("j", Sort::Int),
    ] {
        sig.insert(Symbol::intern(n), s);
    }
    let goals: Vec<Form> = [
        "i < j --> i + 1 <= j",
        "S Int T <= S",
        "card (S Un T) <= card S + card T",
    ]
    .iter()
    .map(|s| form(s))
    .collect();
    for (name, plan) in [
        ("unarmed", None),
        ("armed_quiet", Some(Arc::new(FaultPlan::quiet()))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, p| {
            b.iter(|| {
                let mut d = jahob::Dispatcher::new(sig.clone(), FxHashMap::default());
                d.config.fault_plan = p.clone();
                for g in &goals {
                    assert!(d.prove(g).is_proved());
                }
            })
        });
    }
    group.finish();
}

/// The goal cache on a real workload, in its two roles. `cold` is a
/// from-scratch run with the cache off. `warm_rerun` is re-verification
/// with a cache pre-warmed by one full run (the interactive
/// edit-and-recheck loop from §6 of the paper): every proof replays
/// instead of re-dispatching, which is where the README "Performance"
/// number comes from. Verdicts are identical either way (see
/// `tests/goal_cache.rs::hits_never_flip_a_verdict`).
fn bench_goal_cache(c: &mut Criterion) {
    use jahob::{Config, GoalCache};
    use std::sync::Arc;
    let mut group = c.benchmark_group("governance/goal_cache");
    group.sample_size(10);
    let src = std::fs::read_to_string("../../case_studies/list.javax")
        .or_else(|_| std::fs::read_to_string("case_studies/list.javax"))
        .expect("case_studies/list.javax");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let verifier = Config::builder()
                .workers(1)
                .goal_cache(false)
                .build_verifier();
            let report = verifier.verify(&src).expect("pipeline");
            assert!(report.methods.iter().all(|m| m.error.is_none()));
        })
    });
    let cache = Arc::new(GoalCache::new());
    // One session, kept warm across iterations: the interactive loop.
    let warm = Config::builder()
        .workers(1)
        .goal_cache(true)
        .shared_cache(Arc::clone(&cache))
        .build_verifier();
    warm.verify(&src).expect("warm-up run");
    assert!(!cache.is_empty(), "warm-up must populate the cache");
    group.bench_function("warm_rerun", |b| {
        b.iter(|| {
            let report = warm.verify(&src).expect("pipeline");
            assert!(report.methods.iter().all(|m| m.error.is_none()));
            assert!(report.stats.get("cache.hit").copied().unwrap_or(0) > 0);
        })
    });
    group.finish();
}

/// Observability overhead on the full pipeline. `sink_off` is the shipped
/// configuration — every potential recording site costs one pointer test
/// and no event is ever built; the acceptance bar is noise-level overhead
/// against the pre-observability pipeline. `sink_on` buffers, assembles,
/// canonicalizes, and serializes the complete event stream into a
/// discarding sink, pricing the fully-enabled path.
fn bench_observability_overhead(c: &mut Criterion) {
    use jahob::{Config, NullSink};
    use std::sync::Arc;
    let mut group = c.benchmark_group("governance/observability");
    group.sample_size(10);
    let src = std::fs::read_to_string("../../case_studies/list.javax")
        .or_else(|_| std::fs::read_to_string("case_studies/list.javax"))
        .expect("case_studies/list.javax");
    group.bench_function("sink_off", |b| {
        let verifier = Config::builder().workers(1).build_verifier();
        b.iter(|| {
            let report = verifier.verify(&src).expect("pipeline");
            assert!(report.methods.iter().all(|m| m.error.is_none()));
        })
    });
    group.bench_function("sink_on", |b| {
        let verifier = Config::builder()
            .workers(1)
            .sink(Arc::new(NullSink))
            .build_verifier();
        b.iter(|| {
            let report = verifier.verify(&src).expect("pipeline");
            assert!(report.methods.iter().all(|m| m.error.is_none()));
        })
    });
    group.finish();
}

/// The persistent proof store on a real workload, cross-process (ISSUE
/// 6): `cold` verifies into a fresh store directory every iteration;
/// `warm_restart` builds a brand-new session per iteration — exactly what
/// a second process does — over a directory populated once up front, so
/// every proof replays from disk. The acceptance bar is warm ≥5× faster
/// than cold.
fn bench_persistent_cache(c: &mut Criterion) {
    use jahob::Config;
    let mut group = c.benchmark_group("governance/persistent_cache");
    group.sample_size(10);
    let src = std::fs::read_to_string("../../case_studies/list.javax")
        .or_else(|_| std::fs::read_to_string("case_studies/list.javax"))
        .expect("case_studies/list.javax");
    let scratch = std::env::temp_dir().join(format!("jahob-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let run = |dir: &std::path::Path| {
        let verifier = Config::builder()
            .workers(1)
            .cache_path(dir)
            .build_verifier();
        let report = verifier.verify(&src).expect("pipeline");
        assert!(report.methods.iter().all(|m| m.error.is_none()));
        report
    };

    let cold_dir = scratch.join("cold");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&cold_dir);
            std::fs::create_dir_all(&cold_dir).expect("scratch");
            run(&cold_dir)
        })
    });

    let warm_dir = scratch.join("warm");
    std::fs::create_dir_all(&warm_dir).expect("scratch");
    let populated = run(&warm_dir); // one cold populate, outside the timer
    assert!(
        populated
            .stats
            .get("store.flush.records")
            .copied()
            .unwrap_or(0)
            > 0,
        "populate run must persist proofs"
    );
    group.bench_function("warm_restart", |b| {
        b.iter(|| {
            let report = run(&warm_dir);
            assert!(report.stats.get("store.load.entries").copied().unwrap_or(0) > 0);
            report
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Speculative racing + adaptive ordering (ISSUE 8), on the two
/// case studies where races are actually won by racers (`globalset`,
/// `game` — elsewhere BMC, which is deliberately not raced, settles
/// nearly everything provable).
///
/// Before any timing, the determinism contract is *asserted*: racing on
/// vs. off at 1/2/8 workers must agree bit-for-bit on the deterministic
/// report and on the canonical (schedule-independent) event stream — a
/// racing mode that bought speed by moving output would fail here, not
/// ship a skewed number.
///
/// Three measurements per fixture:
/// * `sequential_cold` — fresh session per iteration, goal cache off:
///   the from-scratch portfolio walk.
/// * `racing_cold` — same, with racing on. Prices the race machinery
///   itself; on a single-core runner the racer threads time-slice one
///   CPU, so expect ≈1× or a modest regression there and real gains
///   only at ≥2 cores (losers overlap the winner's wall-clock).
/// * `racing_adaptive_warm` — one persistent racing+adaptive session,
///   warmed by a full run outside the timer: the interactive
///   edit-and-recheck loop (§6 of the paper) with racing on. Adaptive
///   stats seed every race with the historically-best prover and the
///   session cache replays settled goals. The acceptance bar is
///   warm ≥1.5× over `sequential_cold`.
fn bench_racing(c: &mut Criterion) {
    use jahob::{Config, MemorySink};
    use std::sync::Arc;

    let canonical_stream = |src: &str, racing: bool, workers: usize| -> String {
        let sink = Arc::new(MemorySink::new());
        Config::builder()
            .racing(racing)
            .workers(workers)
            .sink(sink.clone())
            .build_verifier()
            .verify(src)
            .expect("pipeline");
        let mut out = String::new();
        for ev in sink.events() {
            if !ev.is_schedule_dependent() {
                out.push_str(&ev.to_json(false));
                out.push('\n');
            }
        }
        out
    };

    let mut group = c.benchmark_group("governance/racing");
    group.sample_size(10);
    for fixture in ["globalset", "game"] {
        let path = format!("case_studies/{fixture}.javax");
        let src = std::fs::read_to_string(format!("../../{path}"))
            .or_else(|_| std::fs::read_to_string(&path))
            .unwrap_or_else(|e| panic!("{path}: {e}"));

        // The identity gate: verdicts and canonical streams, racing on
        // vs. off, at every worker count the determinism suite pins.
        let report_lines = |racing: bool, workers: usize| {
            let verifier = Config::builder()
                .racing(racing)
                .adaptive(racing)
                .workers(workers)
                .build_verifier();
            verifier
                .verify(&src)
                .expect("pipeline")
                .deterministic_lines()
        };
        let want_report = report_lines(false, 1);
        let want_stream = canonical_stream(&src, false, 1);
        for workers in [1usize, 2, 8] {
            assert_eq!(
                report_lines(true, workers),
                want_report,
                "{fixture}: racing report at {workers} workers diverged"
            );
            assert_eq!(
                canonical_stream(&src, true, workers),
                want_stream,
                "{fixture}: racing canonical stream at {workers} workers diverged"
            );
        }

        group.bench_with_input(
            BenchmarkId::new("sequential_cold", fixture),
            &src,
            |b, src| {
                b.iter(|| {
                    let verifier = Config::builder()
                        .workers(1)
                        .goal_cache(false)
                        .build_verifier();
                    let report = verifier.verify(src).expect("pipeline");
                    assert!(report.methods.iter().all(|m| m.error.is_none()));
                    report
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("racing_cold", fixture), &src, |b, src| {
            b.iter(|| {
                let verifier = Config::builder()
                    .workers(1)
                    .goal_cache(false)
                    .racing(true)
                    .build_verifier();
                let report = verifier.verify(src).expect("pipeline");
                assert!(report.stats.get("race.start").copied().unwrap_or(0) > 0);
                report
            })
        });
        // One session, kept warm across iterations — adaptive stats
        // learned and goal cache populated by the warm-up run.
        let warm = Config::builder()
            .workers(1)
            .racing(true)
            .adaptive(true)
            .build_verifier();
        let warmed = warm.verify(&src).expect("warm-up run");
        assert!(
            warmed.stats.get("race.start").copied().unwrap_or(0) > 0,
            "{fixture}: warm-up run never raced"
        );
        group.bench_with_input(
            BenchmarkId::new("racing_adaptive_warm", fixture),
            &src,
            |b, src| {
                b.iter(|| {
                    let report = warm.verify(src).expect("pipeline");
                    assert!(report.stats.get("cache.hit").copied().unwrap_or(0) > 0);
                    report
                })
            },
        );
    }
    group.finish();
}

/// Relevance slicing (ISSUE 10): prove the goal's symbol cone first,
/// widen on demand. The win is *work*, not machinery: a sliced sequent
/// often falls inside a cheap decidable fragment (or a smaller search
/// space) that the full hypothesis pile escapes, so the portfolio walks
/// fewer, cheaper attempts. Attempt counts are content-determined (fuel
/// totals would read 0 — unmetered budgets never charge), so the
/// acceptance bar is asserted, not eyeballed: slicing must cut the
/// prover-attempt count ≥1.3× on at least one case study, cold, and
/// must never balloon it past 2× on any (failed sliced rungs add
/// metered, cheap attempts — that overhead is bounded by the ladder
/// depth, not the portfolio).
///
/// As with racing, identity is asserted before anything is timed:
/// verdict classifications slicing on vs. off (proved attributions may
/// move to a cheaper prover — that is the feature), and bit-for-bit
/// canonical streams across 1/2/8 workers within the sliced mode.
///
/// Measurements per fixture: `plain_cold` vs `sliced_cold` wall-clock
/// (fresh session, goal cache off), plus a printed cold-cache hit-rate
/// delta — sliced rungs of obligations that differ only in irrelevant
/// hypotheses normalize to the same fingerprint and collapse.
fn bench_slicing(c: &mut Criterion) {
    use jahob::{Config, MemorySink};
    use jahob_util::obs::Event;
    use std::sync::Arc;

    let fixtures = ["client", "assoclist", "globalset", "game"];
    let read = |fixture: &str| -> String {
        let path = format!("case_studies/{fixture}.javax");
        std::fs::read_to_string(format!("../../{path}"))
            .or_else(|_| std::fs::read_to_string(&path))
            .unwrap_or_else(|e| panic!("{path}: {e}"))
    };

    // Classification lines: proved attributions erased, stats dropped.
    let classifications = |src: &str, slicing: bool, workers: usize| -> Vec<String> {
        Config::builder()
            .slicing(slicing)
            .workers(workers)
            .build_verifier()
            .verify(src)
            .expect("pipeline")
            .deterministic_lines()
            .into_iter()
            .filter(|l| !l.starts_with("stat "))
            .map(|line| match line.find(" :: proved") {
                Some(at) => line[..at + " :: proved".len()].to_owned(),
                None => line,
            })
            .collect()
    };
    let canonical_stream = |src: &str, workers: usize| -> String {
        let sink = Arc::new(MemorySink::new());
        Config::builder()
            .slicing(true)
            .workers(workers)
            .sink(sink.clone())
            .build_verifier()
            .verify(src)
            .expect("pipeline");
        let mut out = String::new();
        for ev in sink.events() {
            if !ev.is_schedule_dependent() {
                out.push_str(&ev.to_json(false));
                out.push('\n');
            }
        }
        out
    };
    // Deterministic cost of a cold run: the number of prover attempts
    // (fuel totals would read 0 — unmetered budgets never charge), plus
    // the cache hit/miss split (workers=1, session cache on — the
    // collapse is intra-run). Attempt counts are content-determined, so
    // the ratio below is stable run to run; wall-clock is what the
    // criterion groups measure.
    let cold_costs = |src: &str, slicing: bool| -> (u64, u64, u64) {
        let sink = Arc::new(MemorySink::new());
        Config::builder()
            .slicing(slicing)
            .workers(1)
            .sink(sink.clone())
            .build_verifier()
            .verify(src)
            .expect("pipeline");
        let mut attempts = 0;
        let mut hits = 0;
        let mut misses = 0;
        for ev in sink.events() {
            match ev {
                Event::Attempt { .. } => attempts += 1,
                Event::CacheLookup { hit: true, .. } => hits += 1,
                Event::CacheLookup { hit: false, .. } => misses += 1,
                _ => {}
            }
        }
        (attempts, hits, misses)
    };

    let mut best_ratio = 0f64;
    let mut group = c.benchmark_group("governance/slicing");
    group.sample_size(10);
    for fixture in fixtures {
        let src = read(fixture);

        // Identity gate.
        let want = classifications(&src, false, 1);
        let want_stream = canonical_stream(&src, 1);
        for workers in [1usize, 2, 8] {
            assert_eq!(
                classifications(&src, true, workers),
                want,
                "{fixture}: slicing changed a classification at {workers} workers"
            );
            assert_eq!(
                canonical_stream(&src, workers),
                want_stream,
                "{fixture}: sliced canonical stream at {workers} workers diverged"
            );
        }

        // Deterministic attempt + cache accounting.
        let (plain_attempts, plain_hits, plain_misses) = cold_costs(&src, false);
        let (sliced_attempts, sliced_hits, sliced_misses) = cold_costs(&src, true);
        let ratio = plain_attempts as f64 / sliced_attempts.max(1) as f64;
        best_ratio = best_ratio.max(ratio);
        let rate = |h: u64, m: u64| 100.0 * h as f64 / ((h + m).max(1)) as f64;
        println!(
            "governance/slicing/{fixture}: attempts {plain_attempts} -> {sliced_attempts} \
             ({ratio:.2}x), cold cache hit-rate {:.1}% -> {:.1}%",
            rate(plain_hits, plain_misses),
            rate(sliced_hits, sliced_misses),
        );
        // The ladder may *add* attempts (extra rungs are metered and
        // cheap), but never wildly: anything past 2x means the cone is
        // mis-slicing and every rung is wasted work.
        assert!(
            sliced_attempts as f64 <= plain_attempts as f64 * 2.0,
            "{fixture}: slicing ballooned the attempt count \
             {plain_attempts} -> {sliced_attempts}"
        );

        group.bench_with_input(BenchmarkId::new("plain_cold", fixture), &src, |b, src| {
            b.iter(|| {
                let verifier = Config::builder()
                    .workers(1)
                    .goal_cache(false)
                    .build_verifier();
                verifier.verify(src).expect("pipeline")
            })
        });
        group.bench_with_input(BenchmarkId::new("sliced_cold", fixture), &src, |b, src| {
            b.iter(|| {
                let verifier = Config::builder()
                    .workers(1)
                    .goal_cache(false)
                    .slicing(true)
                    .build_verifier();
                verifier.verify(src).expect("pipeline")
            })
        });
    }
    assert!(
        best_ratio >= 1.3,
        "slicing must cut the prover-attempt count ≥1.3x on at least one \
         case study (best observed: {best_ratio:.2}x)"
    );
    group.finish();
}

/// Process-supervision overhead (ISSUE 7). `ipc_roundtrip` prices the
/// framing codec alone — encode + CRC + decode through memory, the fixed
/// per-request tax both sides pay. `process_backend` prices a whole
/// verification with the remotable provers in supervised children
/// against the in-process baseline; it needs a worker binary
/// (`JAHOB_WORKER_BIN`, or a previously built `target/*/jahob`) and
/// skips with a note otherwise, since benches cannot re-exec themselves.
/// Verdicts are asserted identical across backends on every iteration.
fn bench_supervision_overhead(c: &mut Criterion) {
    use jahob::{Config, Isolation};
    use jahob_util::ipc::{kind, read_frame, write_frame, Frame, DEFAULT_MAX_FRAME};

    let mut group = c.benchmark_group("governance/supervision");
    group.sample_size(10);

    for size in [1usize << 10, 64 << 10] {
        let frame = Frame::new(kind::REQUEST, vec![0xA5; size]);
        group.bench_with_input(BenchmarkId::new("ipc_roundtrip", size), &frame, |b, f| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(f.payload.len() + 16);
                write_frame(&mut buf, f).expect("encode");
                let decoded = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).expect("decode");
                assert_eq!(decoded.payload.len(), f.payload.len());
                decoded
            })
        });
    }

    let src = std::fs::read_to_string("../../case_studies/globalset.javax")
        .or_else(|_| std::fs::read_to_string("case_studies/globalset.javax"))
        .expect("case_studies/globalset.javax");
    let worker = std::env::var_os("JAHOB_WORKER_BIN")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            ["../../target/release/jahob", "../../target/debug/jahob"]
                .iter()
                .map(std::path::PathBuf::from)
                .find(|p| p.is_file())
        });
    let run = |isolation: Isolation, worker: Option<&std::path::Path>| {
        let mut builder = Config::builder().workers(1).isolation(isolation);
        if let Some(program) = worker {
            builder = builder.worker_program(program);
        }
        let report = builder.build_verifier().verify(&src).expect("pipeline");
        assert!(report.methods.iter().all(|m| m.error.is_none()));
        report
    };
    let baseline = run(Isolation::InProcess, None).to_json(jahob::ReportRender::STABLE);
    group.bench_function("in_process", |b| b.iter(|| run(Isolation::InProcess, None)));
    match worker {
        Some(worker) => {
            group.bench_function("process_backend", |b| {
                b.iter(|| {
                    let report = run(Isolation::Process, Some(&worker));
                    assert_eq!(
                        report.to_json(jahob::ReportRender::STABLE),
                        baseline,
                        "backends disagree"
                    );
                    report
                })
            });
        }
        None => eprintln!(
            "governance/supervision: no worker binary (set JAHOB_WORKER_BIN or \
             `cargo build -p jahob-repro`); skipping process_backend"
        ),
    }
    group.finish();
}

/// The verification daemon (ISSUE 9): `cold_oneshot` builds a fresh
/// session per iteration — exactly what a one-shot `jahob verify`
/// costs; `warm_daemon` submits the same file to one long-lived
/// `jahob serve` session over its Unix socket, so every proof replays
/// from the warm goal cache and the socket round-trip is all that is
/// added. The acceptance bar is warm daemon ≥5× faster than cold
/// one-shot.
fn bench_service(c: &mut Criterion) {
    use jahob::cli::OutputMode;
    use jahob::{Client, Config, Service, SubmitOptions, SubmitOutcome};
    let mut group = c.benchmark_group("governance/service");
    group.sample_size(10);
    let src = std::fs::read_to_string("../../case_studies/list.javax")
        .or_else(|_| std::fs::read_to_string("case_studies/list.javax"))
        .expect("case_studies/list.javax");

    let cold = || {
        let report = Config::builder()
            .workers(1)
            .build_verifier()
            .verify(&src)
            .expect("pipeline");
        assert!(report.methods.iter().all(|m| m.error.is_none()));
        report
    };
    let baseline = cold().to_json(jahob::ReportRender::STABLE);
    group.bench_function("cold_oneshot", |b| b.iter(cold));

    let socket = std::env::temp_dir().join(format!("jahob-bench-svc-{}.sock", std::process::id()));
    let service =
        Service::bind(Config::builder().workers(1).socket(socket.clone()).build()).expect("bind");
    let server = std::thread::spawn(move || service.run().expect("service run"));
    let mut client = Client::connect(&socket).expect("connect");
    let options = SubmitOptions {
        output: OutputMode::Json,
        ..SubmitOptions::default()
    };
    let submit = |client: &mut Client| match client.submit(&src, &options, |_| {}) {
        Ok(SubmitOutcome::Report(text)) => text,
        other => panic!("unexpected submit outcome: {other:?}"),
    };
    // Warm the session outside the timer; the daemon's cold answer is
    // the one-shot answer, byte for byte.
    let first = submit(&mut client);
    assert_eq!(
        first.trim_end(),
        baseline,
        "daemon cold run diverged from one-shot"
    );
    let warmed = submit(&mut client);
    assert!(
        warmed.contains("\"cache.hit\""),
        "warm daemon runs must replay from the session cache"
    );
    group.bench_function("warm_daemon", |b| b.iter(|| submit(&mut client)));
    group.finish();
    client.drain().expect("drain");
    server.join().unwrap();
}

criterion_group!(
    benches,
    bench_budget_overhead,
    bench_governed_dispatch,
    bench_chaos_overhead,
    bench_goal_cache,
    bench_persistent_cache,
    bench_observability_overhead,
    bench_racing,
    bench_slicing,
    bench_supervision_overhead,
    bench_service
);
criterion_main!(benches);
