//! E1–E6 and E11–E13: whole-system benchmarks.
//!
//! * E1–E5 — end-to-end verification time of each case study.
//! * E6 — the goal-decomposition ablation (portfolio split on/off).
//! * E11 — field constraint analysis: derived-field elimination cost.
//! * E12 — Houdini candidate-count sweep.
//! * E13 — bug finding: counter-model search on the seeded mutant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jahob_bench::*;

fn bench_case_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1-E5/case_studies");
    group.sample_size(10);
    for (name, src) in [
        ("E1_list", list_source()),
        ("E2_client", client_source()),
        ("E3_assoclist", assoclist_source()),
        ("E4_globalset", globalset_source()),
        ("E5_game", game_source()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = jahob::Config::builder()
                    .build_verifier()
                    .verify(src)
                    .unwrap();
                report.tally()
            })
        });
    }
    group.finish();
}

fn bench_decomposition_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6/decomposition_ablation");
    group.sample_size(10);
    for (name, decompose) in [("split", true), ("whole", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let verifier = jahob::Config::builder()
                    .dispatch(jahob::DispatchConfig {
                        decompose,
                        ..Default::default()
                    })
                    .build_verifier();
                verifier.verify(game_source()).unwrap().tally()
            })
        });
    }
    group.finish();
}

fn bench_fca(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11/field_constraint_analysis");
    group.sample_size(20);
    let goal = jahob_logic::form(
        "data n1 = data n2 & rtrancl_pt (% x y. next x = y) first n1 \
         & rtrancl_pt (% x y. next x = y) first n2 --> n1 = n2",
    );
    let field = jahob_util::Symbol::intern("data");
    group.bench_function("eliminate_data_field", |b| {
        b.iter(|| {
            let out = jahob_fca::eliminate_field(&goal, field, None);
            assert!(out.rewrites >= 2);
            out
        })
    });
    group.finish();
}

fn bench_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12/houdini_candidates");
    group.sample_size(10);
    use jahob_logic::Form;
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                // Candidates g ≤ c for c in 0..k over the loop g := g + 1
                // with guard g < k: only c = k survives... every c < k dies.
                let candidates: Vec<Form> = (0..=k as i64)
                    .map(|c| Form::binop(jahob_logic::BinOp::Le, Form::v("g"), Form::IntLit(c)))
                    .collect();
                let relation = jahob_logic::form(&format!("g2 = g + 1 & g + 1 <= {k}"));
                let kept = jahob_shape::houdini(
                    &candidates,
                    &mut |cand| {
                        jahob_presburger::translate::decide_valid(&Form::implies(
                            jahob_logic::form("g = 0"),
                            cand.clone(),
                        ))
                        .unwrap_or(false)
                    },
                    &mut |kept, cand| {
                        let primed = cand.subst1(jahob_util::Symbol::intern("g"), &Form::v("g2"));
                        let hyp = Form::and(
                            kept.iter()
                                .cloned()
                                .chain(std::iter::once(relation.clone()))
                                .collect(),
                        );
                        jahob_presburger::translate::decide_valid(&Form::implies(hyp, primed))
                            .unwrap_or(false)
                    },
                );
                assert!(!kept.is_empty());
                kept.len()
            })
        });
    }
    group.finish();
}

fn bench_bug_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13/bug_finding");
    group.sample_size(10);
    group.bench_function("broken_add_countermodel", |b| {
        b.iter(|| {
            let report = jahob::Config::builder()
                .build_verifier()
                .verify(broken_add_source())
                .unwrap();
            let (_, refuted, _) = report.tally();
            assert!(refuted > 0);
            refuted
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_case_studies,
    bench_decomposition_ablation,
    bench_fca,
    bench_shape,
    bench_bug_finding
);
criterion_main!(benches);
