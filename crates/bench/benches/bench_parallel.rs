//! Parallel pipeline scaling: the whole `Verifier` front door at 1 vs 8
//! workers, and the raw pool overhead (threaded-vs-sequential on
//! trivial tasks, pricing thread spawn + channel traffic).
//!
//! On a single-core container the 8-worker number degenerates to the
//! sequential one plus scheduling overhead — CI's multi-core `parallel`
//! job is where the scaling claim is actually checked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jahob::Config;
use jahob_util::pool;

fn read_study(name: &str) -> String {
    // Criterion runs benches from the crate dir; keep the repo-root path
    // working too so `cargo bench` behaves the same from either place.
    std::fs::read_to_string(format!("../../case_studies/{name}"))
        .or_else(|_| std::fs::read_to_string(format!("case_studies/{name}")))
        .unwrap_or_else(|e| panic!("case_studies/{name}: {e}"))
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/verify");
    group.sample_size(10);
    // `list` has the most methods of the corpus — the widest fan-out.
    let src = read_study("list.javax");
    for workers in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let verifier = Config::builder()
                        .workers(workers)
                        .goal_cache(true)
                        .build_verifier();
                    let report = verifier.verify(&src).expect("pipeline");
                    assert!(report.methods.iter().all(|m| m.error.is_none()));
                })
            },
        );
    }
    group.finish();
}

/// Pool plumbing priced in isolation: fan 64 trivial tasks out on 1 vs 8
/// threads. The sequential fast path (`workers <= 1`) must stay free of
/// thread spawns entirely.
fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/pool_overhead");
    group.sample_size(10);
    let items: Vec<u64> = (0..64).collect();
    for workers in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let out =
                        pool::run(workers, items.clone(), |_cx, n| n.wrapping_mul(2654435761));
                    assert!(out.iter().all(|r| r.is_ok()) && out.len() == items.len());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_pool_overhead);
criterion_main!(benches);
