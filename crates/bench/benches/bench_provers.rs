//! E8/E9/E10 and the SAT substrate: per-prover scaling benchmarks.
//!
//! * E8 — BAPA's Venn-region blowup: the union cardinality bound with a
//!   growing number of base sets (regions double per set).
//! * E9 — the Omega test vs Cooper's QE on the same existential family.
//! * E10 — Nelson–Oppen on the classic `fⁿ(a) = a` congruence family.
//! * SAT — pigeonhole instances (the CDCL engine under every prover).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jahob_bench::{bapa_union_bound, euf_cycle, lia_interval, lia_interval_cooper};
use jahob_logic::Sort;
use jahob_util::{FxHashMap, Symbol};

fn bapa_sig() -> FxHashMap<Symbol, Sort> {
    (1..=8)
        .map(|i| (Symbol::intern(&format!("B{i}")), Sort::objset()))
        .collect()
}

fn bench_bapa(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8/bapa_union_bound");
    group.sample_size(10);
    let sig = bapa_sig();
    for k in [2usize, 3, 4, 5] {
        let goal = bapa_union_bound(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &goal, |b, g| {
            b.iter(|| assert_eq!(jahob_bapa::bapa_valid(g, &sig), Ok(true)))
        });
    }
    group.finish();
}

fn bench_presburger(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9/omega_vs_cooper");
    group.sample_size(20);
    for n in [4i64, 16, 64, 256] {
        let system = lia_interval(n);
        group.bench_with_input(BenchmarkId::new("omega", n), &system, |b, s| {
            b.iter(|| jahob_presburger::omega_sat(s))
        });
        let quantified = lia_interval_cooper(n);
        group.bench_with_input(BenchmarkId::new("cooper", n), &quantified, |b, q| {
            b.iter(|| jahob_presburger::decide_closed(q).unwrap())
        });
    }
    group.finish();
}

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10/nelson_oppen_euf");
    group.sample_size(10);
    let sig = FxHashMap::default();
    for k in [1usize, 2, 3] {
        let goal = euf_cycle(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &goal, |b, g| {
            b.iter(|| assert_eq!(jahob_smt::smt_valid(g, &sig), Ok(true)))
        });
    }
    group.finish();
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/sat_pigeonhole");
    group.sample_size(10);
    for holes in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(holes), &holes, |b, &holes| {
            b.iter(|| {
                let pigeons = holes + 1;
                let mut s = jahob_sat::Solver::new();
                s.reserve_vars(pigeons * holes);
                let var = |i: usize, j: usize| jahob_sat::Var((i * holes + j) as u32);
                for i in 0..pigeons {
                    let clause: Vec<_> = (0..holes).map(|j| var(i, j).positive()).collect();
                    s.add_clause(&clause);
                }
                for j in 0..holes {
                    for a in 0..pigeons {
                        for b2 in (a + 1)..pigeons {
                            s.add_clause(&[var(a, j).negative(), var(b2, j).negative()]);
                        }
                    }
                }
                assert_eq!(s.solve(), jahob_sat::SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bapa, bench_presburger, bench_smt, bench_sat);
criterion_main!(benches);
