//! Purification: split mixed EUF/LIA literals into pure parts linked by
//! shared proxy variables (Nelson–Oppen step 1).
//!
//! * Inside an arithmetic atom, every maximal non-arithmetic subterm (an
//!   uninterpreted application like `g x`) is replaced by a proxy variable,
//!   with the defining equation `proxy = g x` sent to the EUF side.
//! * Inside an equality between uninterpreted terms, every maximal
//!   arithmetic subterm (`i + 1`, a literal `5`) is replaced by a proxy,
//!   with `proxy = i + 1` sent to the LIA side.
//! * Integer *variables* are shared as themselves.

use jahob_logic::{BinOp, Form, Sort, UnOp};
use jahob_presburger::linterm::LinTerm;
use jahob_util::{FxHashMap, Symbol};

/// A purified literal for the LIA solver: `term (= | ≤ | <) 0`, or a
/// disequality `term ≠ 0`.
#[derive(Clone, Debug)]
#[allow(clippy::enum_variant_names)] // the `Zero` postfix is the point: every literal is `term ⋈ 0`
pub enum LiaLit {
    EqZero(LinTerm),
    LeZero(LinTerm),
    NeqZero(LinTerm),
}

/// A purified literal for the EUF solver over [`Form`] terms (all
/// arithmetic already proxied out).
#[derive(Clone, Debug)]
pub struct EufLit {
    pub lhs: Form,
    pub rhs: Form,
    pub positive: bool,
}

/// Output of purification.
#[derive(Default, Debug)]
pub struct Purified {
    pub lia: Vec<LiaLit>,
    pub euf: Vec<EufLit>,
    /// Shared variables (proxies and integer variables appearing on both
    /// sides).
    pub shared: Vec<Symbol>,
}

pub struct Purifier<'a> {
    sig: &'a FxHashMap<Symbol, Sort>,
    proxies: FxHashMap<Form, Symbol>,
    next_id: u32,
    pub out: Purified,
}

impl<'a> Purifier<'a> {
    pub fn new(sig: &'a FxHashMap<Symbol, Sort>) -> Self {
        Purifier {
            sig,
            proxies: FxHashMap::default(),
            next_id: 0,
            out: Purified::default(),
        }
    }

    fn share(&mut self, v: Symbol) {
        if !self.out.shared.contains(&v) {
            self.out.shared.push(v);
        }
    }

    /// Is `form` an integer-sorted term?
    pub fn is_int_term(&self, form: &Form) -> bool {
        match form {
            Form::IntLit(_) => true,
            Form::Unop(UnOp::Neg, _) => true,
            Form::Binop(BinOp::Add | BinOp::Sub | BinOp::Mul, _, _) => true,
            Form::Var(name) => matches!(self.sig.get(name), Some(Sort::Int)),
            Form::App(head, _) => {
                if let Form::Var(f) = head.as_ref() {
                    matches!(
                        self.sig.get(f),
                        Some(Sort::Fun(_, ret)) if **ret == Sort::Int
                    )
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Proxy symbol for a term (canonical per term); true when fresh.
    fn proxy(&mut self, term: &Form) -> (Symbol, bool) {
        if let Some(&p) = self.proxies.get(term) {
            return (p, false);
        }
        let p = Symbol::intern(&format!("$w{}", self.next_id));
        self.next_id += 1;
        self.proxies.insert(term.clone(), p);
        (p, true)
    }

    /// Purify a term in arithmetic context into a [`LinTerm`]; foreign
    /// (uninterpreted) subterms become shared proxies with EUF definitions.
    pub fn lin(&mut self, form: &Form) -> LinTerm {
        match form {
            Form::IntLit(n) => LinTerm::constant(*n),
            Form::Var(name) if matches!(self.sig.get(name), Some(Sort::Int) | None) => {
                self.share(*name);
                LinTerm::var(*name)
            }
            Form::Unop(UnOp::Neg, a) => self.lin(a).scale(-1),
            Form::Binop(BinOp::Add, a, b) => self.lin(a).add(&self.lin(b)),
            Form::Binop(BinOp::Sub, a, b) => self.lin(a).sub(&self.lin(b)),
            Form::Binop(BinOp::Mul, a, b) => {
                let la = self.lin(a);
                let lb = self.lin(b);
                if la.is_constant() {
                    lb.scale(la.konst)
                } else if lb.is_constant() {
                    la.scale(lb.konst)
                } else {
                    // Nonlinear: proxy the whole product as an opaque
                    // variable, so at least syntactically equal products
                    // alias. Sound: fewer constraints → "consistent" at
                    // worst, which only weakens proving power.
                    let (p, _) = self.proxy(form);
                    self.share(p);
                    LinTerm::var(p)
                }
            }
            foreign => {
                // Uninterpreted application or obj-ish term in int position:
                // proxy it, define on the EUF side (once per term).
                let (p, fresh) = self.proxy(foreign);
                self.share(p);
                if fresh {
                    let purified = self.euf_term(foreign);
                    self.out.euf.push(EufLit {
                        lhs: Form::Var(p),
                        rhs: purified,
                        positive: true,
                    });
                }
                LinTerm::var(p)
            }
        }
    }

    /// Purify a term in EUF context: arithmetic subterms become proxies
    /// defined on the LIA side; integer variables are shared directly.
    pub fn euf_term(&mut self, form: &Form) -> Form {
        match form {
            Form::Var(name) => {
                if matches!(self.sig.get(name), Some(Sort::Int)) {
                    self.share(*name);
                }
                form.clone()
            }
            Form::Null | Form::BoolLit(_) => form.clone(),
            Form::IntLit(_)
            | Form::Unop(UnOp::Neg, _)
            | Form::Binop(BinOp::Add | BinOp::Sub | BinOp::Mul, _, _) => {
                // Maximal arithmetic subterm: proxy + LIA definition
                // (once per term).
                let (p, fresh) = self.proxy(form);
                self.share(p);
                if fresh {
                    let lin = self.lin(form);
                    self.out.lia.push(LiaLit::EqZero(LinTerm::var(p).sub(&lin)));
                }
                Form::Var(p)
            }
            Form::App(head, args) => Form::app(
                head.as_ref().clone(),
                args.iter().map(|a| self.euf_term(a)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// Purify one theory literal.
    pub fn literal(&mut self, atom: &Form, positive: bool) {
        match atom {
            Form::Binop(BinOp::Le, a, b) => {
                let t = self.lin(a).sub(&self.lin(b));
                if positive {
                    self.out.lia.push(LiaLit::LeZero(t));
                } else {
                    // ¬(a ≤ b) ⇔ b + 1 ≤ a ⇔ b - a + 1 ≤ 0.
                    self.out
                        .lia
                        .push(LiaLit::LeZero(t.scale(-1).add(&LinTerm::constant(1))));
                }
            }
            Form::Binop(BinOp::Lt, a, b) => {
                let t = self.lin(a).sub(&self.lin(b)).add(&LinTerm::constant(1));
                if positive {
                    self.out.lia.push(LiaLit::LeZero(t));
                } else {
                    // ¬(a < b) ⇔ b ≤ a.
                    let u = self.lin(b).sub(&self.lin(a));
                    self.out.lia.push(LiaLit::LeZero(u));
                }
            }
            Form::Binop(BinOp::Eq, a, b) => {
                let arith = self.is_int_term(a) || self.is_int_term(b);
                if arith {
                    let t = self.lin(a).sub(&self.lin(b));
                    if positive {
                        self.out.lia.push(LiaLit::EqZero(t));
                    } else {
                        self.out.lia.push(LiaLit::NeqZero(t));
                    }
                } else {
                    let lhs = self.euf_term(a);
                    let rhs = self.euf_term(b);
                    self.out.euf.push(EufLit { lhs, rhs, positive });
                }
            }
            // Boolean variable or predicate application: encode as an
            // equation with the distinguished truth constant.
            Form::Var(_) | Form::App(_, _) => {
                let lhs = self.euf_term(atom);
                self.out.euf.push(EufLit {
                    lhs,
                    rhs: Form::v("$true"),
                    positive,
                });
            }
            other => {
                // Defensive: treat as an opaque boolean term.
                let lhs = self.euf_term(other);
                self.out.euf.push(EufLit {
                    lhs,
                    rhs: Form::v("$true"),
                    positive,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn sig() -> FxHashMap<Symbol, Sort> {
        [
            ("i", Sort::Int),
            ("j", Sort::Int),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("f", Sort::field(Sort::Obj)),
            ("g", Sort::field(Sort::Int)),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect()
    }

    #[test]
    fn pure_lia_stays_lia() {
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("i + 1 <= j"), true);
        assert_eq!(p.out.lia.len(), 1);
        assert!(p.out.euf.is_empty());
        assert!(p.out.shared.contains(&Symbol::intern("i")));
        assert!(p.out.shared.contains(&Symbol::intern("j")));
    }

    #[test]
    fn pure_euf_stays_euf() {
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("f x = y"), true);
        assert_eq!(p.out.euf.len(), 1);
        assert!(p.out.lia.is_empty());
        assert!(p.out.shared.is_empty());
    }

    #[test]
    fn mixed_atom_splits() {
        // g x <= i: the application g x is foreign to LIA — proxied.
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("g x <= i"), true);
        assert_eq!(p.out.lia.len(), 1);
        assert_eq!(p.out.euf.len(), 1, "proxy definition for g x");
        assert!(p.out.shared.len() >= 2, "proxy and i are shared");
    }

    #[test]
    fn arith_inside_euf_proxied() {
        // f applied where the *comparison* is EUF but an argument is
        // arithmetic: f x = f y with no arithmetic stays pure; use an
        // integer-argument app via an unknown function symbol instead.
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("h (i + 1) = x"), true);
        // h's sort is unknown → not an int app → EUF equality with the
        // argument i+1 proxied into LIA.
        assert_eq!(p.out.euf.len(), 1);
        assert_eq!(p.out.lia.len(), 1, "proxy = i + 1 definition");
    }

    #[test]
    fn negative_literals_negate_correctly() {
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("i <= j"), false);
        match &p.out.lia[0] {
            LiaLit::LeZero(t) => {
                // j - i + 1 <= 0.
                assert_eq!(t.coeff(Symbol::intern("j")), 1);
                assert_eq!(t.coeff(Symbol::intern("i")), -1);
                assert_eq!(t.konst, 1);
            }
            other => panic!("expected LeZero, got {other:?}"),
        }
    }

    #[test]
    fn same_term_same_proxy() {
        let s = sig();
        let mut p = Purifier::new(&s);
        p.literal(&form("g x <= i"), true);
        p.literal(&form("g x <= j"), true);
        // One proxy definition only.
        assert_eq!(p.out.euf.len(), 1);
    }
}
