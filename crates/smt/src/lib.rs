//! `jahob-smt`: Nelson–Oppen style cooperating decision procedures.
//!
//! The paper lists "the SMT-LIB interface to Nelson-Oppen style theorem
//! provers" among Jahob's reasoners (§3, citing Nelson & Oppen's
//! "Simplification by cooperating decision procedures"). This crate is that
//! component built from scratch: a lazy-SMT architecture where
//!
//! * the Boolean structure of a ground goal is handled by the CDCL solver
//!   from `jahob-sat`,
//! * each propositional model's literal set is checked by the **Nelson–Oppen
//!   combination** of two theory solvers — congruence closure for equality
//!   with uninterpreted functions (`jahob-euf`) and linear integer
//!   arithmetic (the Omega test from `jahob-presburger`) —
//! * mixed atoms are **purified** by introducing shared proxy variables,
//!   and the combination loop propagates equalities over the shared
//!   variables in both directions until fixpoint,
//! * theory conflicts become blocking clauses and the SAT solver moves on.
//!
//! Soundness direction: `smt_valid(φ) = ¬sat(¬φ)`, and every *unsat* verdict
//! is backed by sound theory reasoning; incompleteness (e.g. a missed
//! non-convex split) can only make the prover fail to prove, never prove a
//! falsehood. Since LIA over ℤ is non-convex, the combination additionally
//! performs a bounded case-split on shared-variable equalities when the
//! definite propagation reaches a fixpoint without a conflict.

mod purify;
mod theory;

use jahob_logic::{transform, BinOp, Form, Sort, UnOp};
use jahob_sat::{CnfBuilder, PropForm, SolveResult, Solver};
use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::{FxHashMap, Symbol};
use std::fmt;
use std::rc::Rc;

pub use theory::TheoryVerdict;

/// Why a goal is outside the ground EUF+LIA fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmtError {
    pub message: String,
}

impl fmt::Display for SmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not in the ground EUF+LIA fragment: {}", self.message)
    }
}

impl std::error::Error for SmtError {}

fn err<T>(message: impl Into<String>) -> Result<T, SmtError> {
    Err(SmtError {
        message: message.into(),
    })
}

/// Why a budgeted SMT decision did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtFailure {
    /// The goal is outside the ground EUF+LIA fragment — route it elsewhere.
    Fragment(SmtError),
    /// The budget ran out mid-decision.
    Exhausted(Exhaustion),
}

impl fmt::Display for SmtFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtFailure::Fragment(e) => e.fmt(f),
            SmtFailure::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SmtFailure {}

/// Decide validity of a ground (quantifier-free, set-free) goal in the
/// combination EUF + LIA. `Err` means "not my fragment".
pub fn smt_valid(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<bool, SmtError> {
    match smt_valid_budgeted(form, sig, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(SmtFailure::Fragment(e)) => Err(e),
        Err(SmtFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`smt_valid`]: fuel is charged per lazy-loop round, and the
/// underlying CDCL search runs against the same budget.
pub fn smt_valid_budgeted(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    budget: &Budget,
) -> Result<bool, SmtFailure> {
    let negated = Form::not(form.clone());
    Ok(!smt_sat_budgeted(&negated, sig, budget)?)
}

/// Is the formula inside the ground EUF+LIA fragment? (Cheap syntactic
/// probe used by the dispatcher's hypothesis filtering.)
pub fn in_fragment(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> bool {
    let prepared = lift_ite(form);
    let mut atoms = AtomTable::new(sig);
    atoms.skeleton(&prepared).is_ok()
}

/// Satisfiability of a ground EUF+LIA formula.
pub fn smt_sat(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<bool, SmtError> {
    match smt_sat_budgeted(form, sig, &Budget::unlimited()) {
        Ok(v) => Ok(v),
        Err(SmtFailure::Fragment(e)) => Err(e),
        Err(SmtFailure::Exhausted(_)) => unreachable!("unlimited budget"),
    }
}

/// Budgeted [`smt_sat`]: the lazy DPLL(T) loop and the CDCL searches inside
/// it both consume the caller's budget.
pub fn smt_sat_budgeted(
    form: &Form,
    sig: &FxHashMap<Symbol, Sort>,
    budget: &Budget,
) -> Result<bool, SmtFailure> {
    jahob_util::chaos::boundary("smt.sat", budget).map_err(SmtFailure::Exhausted)?;
    let prepared = transform::simplify(&lift_ite(form));
    if let Form::BoolLit(b) = &prepared {
        return Ok(*b);
    }
    // Collect atoms and build the propositional skeleton.
    let mut atoms = AtomTable::new(sig);
    let skeleton = atoms.skeleton(&prepared).map_err(SmtFailure::Fragment)?;
    let mut solver = Solver::new();
    let mut builder = CnfBuilder::new();
    builder.assert(&mut solver, &skeleton);

    // Lazy theory loop.
    const MAX_ROUNDS: usize = 400;
    for _ in 0..MAX_ROUNDS {
        budget.check().map_err(SmtFailure::Exhausted)?;
        match solver
            .solve_budgeted(budget)
            .map_err(SmtFailure::Exhausted)?
        {
            SolveResult::Unsat => return Ok(false),
            SolveResult::Sat(model) => {
                // The literal set this model commits to.
                let mut literals: Vec<(Form, bool)> = Vec::new();
                for (i, atom) in atoms.forms.iter().enumerate() {
                    let value = builder.atom_value(&model, i as u32);
                    literals.push((atom.clone(), value));
                }
                match theory::check(&literals, sig) {
                    TheoryVerdict::Consistent => return Ok(true),
                    TheoryVerdict::Conflict => {
                        // Block this total atom valuation. (Coarse but
                        // sound; the loop terminates because each blocking
                        // clause removes at least one total valuation.)
                        let clause: Vec<PropForm> = literals
                            .iter()
                            .enumerate()
                            .map(|(i, (_, value))| {
                                let a = PropForm::atom(i as u32);
                                if *value {
                                    PropForm::not(a)
                                } else {
                                    a
                                }
                            })
                            .collect();
                        builder.assert(&mut solver, &PropForm::or(clause));
                    }
                }
            }
        }
    }
    // Pathological instance: give the sound answer for the valid-checking
    // use ("maybe sat" = cannot prove).
    Ok(true)
}

/// Atom table: maps each theory atom to a propositional index.
struct AtomTable<'a> {
    sig: &'a FxHashMap<Symbol, Sort>,
    forms: Vec<Form>,
    index: FxHashMap<Form, u32>,
}

impl<'a> AtomTable<'a> {
    fn new(sig: &'a FxHashMap<Symbol, Sort>) -> Self {
        AtomTable {
            sig,
            forms: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    fn atom(&mut self, form: &Form) -> Result<PropForm, SmtError> {
        check_ground_term(form, self.sig)?;
        if let Some(&i) = self.index.get(form) {
            return Ok(PropForm::atom(i));
        }
        let i = self.forms.len() as u32;
        self.forms.push(form.clone());
        self.index.insert(form.clone(), i);
        Ok(PropForm::atom(i))
    }

    fn skeleton(&mut self, form: &Form) -> Result<PropForm, SmtError> {
        match form {
            Form::BoolLit(true) => Ok(PropForm::True),
            Form::BoolLit(false) => Ok(PropForm::False),
            Form::And(parts) => Ok(PropForm::and(
                parts
                    .iter()
                    .map(|p| self.skeleton(p))
                    .collect::<Result<_, _>>()?,
            )),
            Form::Or(parts) => Ok(PropForm::or(
                parts
                    .iter()
                    .map(|p| self.skeleton(p))
                    .collect::<Result<_, _>>()?,
            )),
            Form::Unop(UnOp::Not, inner) => Ok(PropForm::not(self.skeleton(inner)?)),
            Form::Binop(BinOp::Implies, lhs, rhs) => {
                Ok(PropForm::implies(self.skeleton(lhs)?, self.skeleton(rhs)?))
            }
            Form::Binop(BinOp::Iff, lhs, rhs) => {
                Ok(PropForm::iff(self.skeleton(lhs)?, self.skeleton(rhs)?))
            }
            // Theory atoms.
            Form::Binop(BinOp::Eq | BinOp::Le | BinOp::Lt, _, _) => self.atom(form),
            // A boolean variable or predicate application.
            Form::Var(_) | Form::App(_, _) => self.atom(form),
            other => err(format!("unsupported in ground goals: `{other}`")),
        }
    }
}

/// Reject non-ground / out-of-fragment terms early.
#[allow(clippy::only_used_in_recursion)] // `sig` kept for parity with the other checkers
fn check_ground_term(form: &Form, sig: &FxHashMap<Symbol, Sort>) -> Result<(), SmtError> {
    match form {
        Form::Var(_) | Form::IntLit(_) | Form::Null | Form::BoolLit(_) => Ok(()),
        Form::Unop(UnOp::Neg, a) => check_ground_term(a, sig),
        Form::Unop(UnOp::Not, a) => check_ground_term(a, sig),
        Form::Binop(BinOp::Add | BinOp::Sub | BinOp::Mul, a, b)
        | Form::Binop(BinOp::Eq | BinOp::Le | BinOp::Lt, a, b) => {
            check_ground_term(a, sig)?;
            check_ground_term(b, sig)
        }
        Form::App(head, args) => {
            match head.as_ref() {
                Form::Var(_) => {}
                other => return err(format!("higher-order head `{other}`")),
            }
            for a in args {
                check_ground_term(a, sig)?;
            }
            Ok(())
        }
        Form::Quant(_, _, _) => err("quantifier in ground goal"),
        Form::And(_) | Form::Or(_) => err("boolean structure inside a term"),
        Form::EmptySet | Form::FiniteSet(_) => err("set term (BAPA territory)"),
        Form::Binop(op, _, _) => err(format!("operator {op:?} (BAPA territory)")),
        Form::Unop(UnOp::Card, _) => err("card (BAPA territory)"),
        Form::Lambda(_, _) | Form::Compr(_, _, _) => err("binder in ground goal"),
        Form::Old(_) => err("old outside VC generation"),
        Form::Ite(_, _, _) => err("ite should have been lifted"),
        Form::Tree(_) => err("tree invariant (shape territory)"),
    }
}

/// Lift `Ite` nodes out of terms into the boolean structure:
/// `A[ite(c,t,e)]` becomes `(c ∧ A[t]) ∨ (¬c ∧ A[e])`.
pub fn lift_ite(form: &Form) -> Form {
    // Find an Ite in atom position and split; repeat to fixpoint.
    fn find_ite(form: &Form) -> Option<(Form, Form, Form)> {
        match form {
            Form::Ite(c, t, e) => {
                Some((c.as_ref().clone(), t.as_ref().clone(), e.as_ref().clone()))
            }
            Form::Unop(_, a) | Form::Old(a) => find_ite(a),
            Form::Binop(_, a, b) => find_ite(a).or_else(|| find_ite(b)),
            Form::App(h, args) => find_ite(h).or_else(|| args.iter().find_map(find_ite)),
            Form::FiniteSet(elems) => elems.iter().find_map(find_ite),
            _ => None,
        }
    }
    fn replace_ite(form: &Form, target: &(Form, Form, Form), with: &Form) -> Form {
        let as_ite = Form::Ite(
            Rc::new(target.0.clone()),
            Rc::new(target.1.clone()),
            Rc::new(target.2.clone()),
        );
        replace_term(form, &as_ite, with)
    }
    fn replace_term(form: &Form, target: &Form, with: &Form) -> Form {
        if form == target {
            return with.clone();
        }
        match form {
            Form::Unop(op, a) => Form::Unop(*op, Rc::new(replace_term(a, target, with))),
            Form::Old(a) => Form::Old(Rc::new(replace_term(a, target, with))),
            Form::Binop(op, a, b) => Form::Binop(
                *op,
                Rc::new(replace_term(a, target, with)),
                Rc::new(replace_term(b, target, with)),
            ),
            Form::App(h, args) => Form::app(
                replace_term(h, target, with),
                args.iter().map(|a| replace_term(a, target, with)).collect(),
            ),
            Form::FiniteSet(elems) => Form::FiniteSet(
                elems
                    .iter()
                    .map(|e| replace_term(e, target, with))
                    .collect(),
            ),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(replace_term(c, target, with)),
                Rc::new(replace_term(t, target, with)),
                Rc::new(replace_term(e, target, with)),
            ),
            _ => form.clone(),
        }
    }

    match form {
        Form::And(parts) => Form::and(parts.iter().map(lift_ite).collect()),
        Form::Or(parts) => Form::or(parts.iter().map(lift_ite).collect()),
        Form::Unop(UnOp::Not, a) => Form::not(lift_ite(a)),
        Form::Binop(op @ (BinOp::Implies | BinOp::Iff), a, b) => {
            Form::binop(*op, lift_ite(a), lift_ite(b))
        }
        Form::Quant(kind, binders, body) => {
            Form::Quant(*kind, binders.clone(), Rc::new(lift_ite(body)))
        }
        atom => match find_ite(atom) {
            None => atom.clone(),
            Some(ite) => {
                let then_branch = replace_ite(atom, &ite, &ite.1);
                let else_branch = replace_ite(atom, &ite, &ite.2);
                let c = lift_ite(&ite.0);
                Form::or(vec![
                    Form::and(vec![c.clone(), lift_ite(&then_branch)]),
                    Form::and(vec![Form::not(c), lift_ite(&else_branch)]),
                ])
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn sig() -> FxHashMap<Symbol, Sort> {
        [
            ("i", Sort::Int),
            ("j", Sort::Int),
            ("k", Sort::Int),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("z", Sort::Obj),
            ("f", Sort::field(Sort::Obj)),
            ("g", Sort::field(Sort::Int)),
            ("p", Sort::Fun(vec![Sort::Obj], Box::new(Sort::Bool))),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect()
    }

    fn valid(src: &str) -> bool {
        smt_valid(&form(src), &sig()).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    #[test]
    fn propositional_layer() {
        assert!(valid("b1 | ~b1"));
        assert!(valid("(b1 --> b2) & b1 --> b2"));
        assert!(!valid("b1 | b2"));
    }

    #[test]
    fn euf_congruence() {
        assert!(valid("x = y --> f x = f y"));
        assert!(valid("x = y & y = z --> f (f x) = f (f z)"));
        assert!(!valid("f x = f y --> x = y"));
        assert!(valid("f x ~= f y --> x ~= y"));
        assert!(valid("x = y --> (p x = p y)"));
    }

    #[test]
    fn classic_euf_theorem() {
        // f³(a)=a ∧ f⁵(a)=a → f(a)=a.
        assert!(valid(
            "f (f (f x)) = x & f (f (f (f (f x)))) = x --> f x = x"
        ));
        // Without the second hypothesis it does not follow.
        assert!(!valid("f (f (f x)) = x --> f x = x"));
    }

    #[test]
    fn lia_layer() {
        assert!(valid("i < j --> i + 1 <= j"));
        assert!(valid("i <= j & j <= i --> i = j"));
        assert!(!valid("i <= j --> i < j"));
        assert!(valid("2 * i ~= 2 * j + 1"));
    }

    #[test]
    fn combination_euf_lia() {
        // The classic Nelson-Oppen example shape: congruence after
        // arithmetic forces the argument values equal.
        assert!(valid("i <= j & j <= i --> g x + i = g x + j"));
        // f over an integer-valued proxy: i = j --> f-applied-to-equal obj
        // with arithmetic mixed in.
        assert!(valid("g x = i & g y = i --> g x = g y"));
        // Arithmetic consequence feeding EUF: i = j → h(i) = h(j) where h
        // is an integer-to-integer uninterpreted function.
        assert!(valid("i = j --> h1 i = h1 j"));
        // And the mixed classic: 1 <= i & i <= 2 & h2 1 = x & h2 2 = x
        //   --> h2 i = x  (requires the non-convex split i=1 ∨ i=2).
        assert!(valid("1 <= i & i <= 2 & h2 1 = x & h2 2 = x --> h2 i = x"));
    }

    #[test]
    fn disequalities_count() {
        // Three distinct objects cannot all map into two values... not
        // expressible without cardinality; instead: pairwise distinct
        // images force distinct arguments.
        assert!(valid(
            "f x ~= f y & f y ~= f z & f x ~= f z --> x ~= y & y ~= z"
        ));
    }

    #[test]
    fn null_is_just_a_constant() {
        assert!(valid("x = null & y = null --> x = y"));
        assert!(!valid("x ~= null --> x = y"));
    }

    #[test]
    fn ite_lifting() {
        let f = Form::eq(
            Form::Ite(Rc::new(form("b1")), Rc::new(form("i")), Rc::new(form("j"))),
            form("i"),
        );
        // b1 --> ite(b1,i,j) = i.
        let goal = Form::implies(form("b1"), f);
        assert!(smt_valid(&goal, &sig()).unwrap());
    }

    #[test]
    fn fragment_rejections() {
        let s = sig();
        assert!(smt_valid(&form("ALL q. q = x"), &s).is_err());
        assert!(smt_valid(&form("x : someset"), &s).is_err());
        assert!(smt_valid(&form("card c1 = 0"), &s).is_err());
    }

    #[test]
    fn budget_interrupts_lazy_loop() {
        let goal = form("f (f (f x)) = x & f (f (f (f (f x)))) = x --> f x = x");
        let starved = Budget::with_fuel(1);
        assert_eq!(
            smt_valid_budgeted(&goal, &sig(), &starved),
            Err(SmtFailure::Exhausted(Exhaustion::Fuel))
        );
        let roomy = Budget::with_fuel(10_000_000);
        assert_eq!(smt_valid_budgeted(&goal, &sig(), &roomy), Ok(true));
    }

    #[test]
    fn differential_vs_small_models() {
        // Whenever the SMT core claims validity of an obj/EUF goal, no
        // small model may refute it.
        use jahob_logic::model::enumerate_models;
        let s = sig();
        let goals = [
            "x = y --> f x = f y",
            "f x = f y --> x = y",
            "x = y & y = z --> x = z",
            "f x ~= f y --> x ~= y",
            "x ~= y --> f x ~= f y",
        ];
        let syms: Vec<(Symbol, Sort)> = [
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("z", Sort::Obj),
            ("f", Sort::field(Sort::Obj)),
        ]
        .iter()
        .map(|(n, so)| (Symbol::intern(n), so.clone()))
        .collect();
        for src in goals {
            let f = form(src);
            let smt = smt_valid(&f, &s).unwrap();
            let small = enumerate_models(2, (0, 0), &syms, &mut |m| m.eval_bool(&f).unwrap());
            assert_eq!(smt, small, "{src}");
        }
    }
}
