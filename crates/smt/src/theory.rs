//! The Nelson–Oppen combination loop (EUF + LIA over shared variables).
//!
//! Given a conjunction of ground literals, purify ([`crate::purify`]),
//! then search for an *arrangement* of the shared variables (a partition
//! into equality classes) that both theories accept. LIA over ℤ is
//! non-convex, so definite equality propagation alone is incomplete; when
//! few variables are shared we enumerate arrangements exhaustively (the
//! textbook-complete combination for stably infinite theories), and
//! otherwise fall back to definite propagation — which can only make the
//! prover *incomplete*, never unsound, because a missed conflict yields
//! "consistent" and the caller then merely fails to prove validity.

use crate::purify::{EufLit, LiaLit, Purifier};
use jahob_euf::{Congruence, TermId};
use jahob_logic::{Form, Sort};
use jahob_presburger::linterm::LinTerm;
use jahob_presburger::omega::{omega_sat, Constraint, OmegaResult};
use jahob_util::{FxHashMap, Symbol};

/// Outcome of a theory consistency check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TheoryVerdict {
    Consistent,
    Conflict,
}

/// Shared-variable cap for exhaustive arrangement enumeration (Bell(7) =
/// 877 partitions).
const MAX_ARRANGED: usize = 7;

/// Check a conjunction of ground literals for EUF+LIA consistency.
pub fn check(literals: &[(Form, bool)], sig: &FxHashMap<Symbol, Sort>) -> TheoryVerdict {
    let mut purifier = Purifier::new(sig);
    for (atom, positive) in literals {
        purifier.literal(atom, *positive);
    }
    let purified = purifier.out;

    // Fast path: either side alone already inconsistent?
    if !euf_consistent(&purified.euf, &[]) {
        return TheoryVerdict::Conflict;
    }
    if !lia_consistent(&purified.lia, &[]) {
        return TheoryVerdict::Conflict;
    }

    let shared = &purified.shared;
    if shared.len() <= 1 {
        // Nothing to agree on: both theories consistent separately over
        // disjoint signatures (both stably infinite) → jointly consistent.
        return TheoryVerdict::Consistent;
    }

    if shared.len() <= MAX_ARRANGED {
        // Complete: try every arrangement.
        let mut partition = vec![0usize; shared.len()];
        if try_arrangements(&purified.euf, &purified.lia, shared, &mut partition) {
            TheoryVerdict::Consistent
        } else {
            TheoryVerdict::Conflict
        }
    } else {
        // Best-effort definite propagation.
        if definite_propagation(&purified.euf, &purified.lia, shared) {
            TheoryVerdict::Consistent
        } else {
            TheoryVerdict::Conflict
        }
    }
}

/// Enumerate set partitions via restricted-growth strings: position `i`
/// may join any existing class or open a new one. `partition[0]` is fixed
/// to class 0.
fn try_arrangements(
    euf: &[EufLit],
    lia: &[LiaLit],
    shared: &[Symbol],
    partition: &mut Vec<usize>,
) -> bool {
    rec(euf, lia, shared, partition, 1, 1)
}

fn rec(
    euf: &[EufLit],
    lia: &[LiaLit],
    shared: &[Symbol],
    partition: &mut Vec<usize>,
    pos: usize,
    classes: usize,
) -> bool {
    if pos == shared.len() {
        return arrangement_consistent(euf, lia, shared, partition, classes);
    }
    for c in 0..=classes.min(pos) {
        partition[pos] = c;
        let new_classes = classes.max(c + 1);
        if rec(euf, lia, shared, partition, pos + 1, new_classes) {
            return true;
        }
    }
    false
}

/// Check one arrangement: equalities within classes, disequalities between
/// class representatives, against both theories.
fn arrangement_consistent(
    euf: &[EufLit],
    lia: &[LiaLit],
    shared: &[Symbol],
    partition: &[usize],
    classes: usize,
) -> bool {
    // Build arrangement literals.
    let mut eqs: Vec<(Symbol, Symbol)> = Vec::new();
    let mut reps: Vec<Option<Symbol>> = vec![None; classes];
    for (i, &v) in shared.iter().enumerate() {
        match reps[partition[i]] {
            None => reps[partition[i]] = Some(v),
            Some(r) => eqs.push((r, v)),
        }
    }
    let mut neqs: Vec<(Symbol, Symbol)> = Vec::new();
    for a in 0..classes {
        for b in (a + 1)..classes {
            if let (Some(ra), Some(rb)) = (reps[a], reps[b]) {
                neqs.push((ra, rb));
            }
        }
    }

    // EUF side.
    let mut euf_extra: Vec<EufLit> = eqs
        .iter()
        .map(|&(a, b)| EufLit {
            lhs: Form::Var(a),
            rhs: Form::Var(b),
            positive: true,
        })
        .collect();
    euf_extra.extend(neqs.iter().map(|&(a, b)| EufLit {
        lhs: Form::Var(a),
        rhs: Form::Var(b),
        positive: false,
    }));
    if !euf_consistent(euf, &euf_extra) {
        return false;
    }

    // LIA side.
    let mut lia_extra: Vec<LiaLit> = eqs
        .iter()
        .map(|&(a, b)| LiaLit::EqZero(LinTerm::var(a).sub(&LinTerm::var(b))))
        .collect();
    lia_extra.extend(
        neqs.iter()
            .map(|&(a, b)| LiaLit::NeqZero(LinTerm::var(a).sub(&LinTerm::var(b)))),
    );
    lia_consistent(lia, &lia_extra)
}

/// Incomplete fallback: propagate only definite equalities until fixpoint.
fn definite_propagation(euf: &[EufLit], lia: &[LiaLit], shared: &[Symbol]) -> bool {
    let mut extra_euf: Vec<EufLit> = Vec::new();
    let mut extra_lia: Vec<LiaLit> = Vec::new();
    loop {
        if !euf_consistent(euf, &extra_euf) {
            return false;
        }
        if !lia_consistent(lia, &extra_lia) {
            return false;
        }
        let mut changed = false;
        // EUF → LIA: equal shared pairs.
        let pairs = euf_equal_pairs(euf, &extra_euf, shared);
        for (a, b) in pairs {
            let lit = LiaLit::EqZero(LinTerm::var(a).sub(&LinTerm::var(b)));
            if !lia_contains(&extra_lia, &lit) {
                extra_lia.push(lit);
                changed = true;
            }
        }
        // LIA → EUF: implied equalities (pairwise entailment check).
        for (i, &a) in shared.iter().enumerate() {
            for &b in &shared[i + 1..] {
                let lt = LiaLit::LeZero(
                    LinTerm::var(a)
                        .sub(&LinTerm::var(b))
                        .add(&LinTerm::constant(1)),
                );
                let gt = LiaLit::LeZero(
                    LinTerm::var(b)
                        .sub(&LinTerm::var(a))
                        .add(&LinTerm::constant(1)),
                );
                let mut with_lt = extra_lia.clone();
                with_lt.push(lt);
                let mut with_gt = extra_lia.clone();
                with_gt.push(gt);
                if !lia_consistent(lia, &with_lt) && !lia_consistent(lia, &with_gt) {
                    let lit = EufLit {
                        lhs: Form::Var(a),
                        rhs: Form::Var(b),
                        positive: true,
                    };
                    if !euf_contains(&extra_euf, &lit) {
                        extra_euf.push(lit);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

fn lia_contains(lits: &[LiaLit], lit: &LiaLit) -> bool {
    lits.iter().any(|l| match (l, lit) {
        (LiaLit::EqZero(a), LiaLit::EqZero(b)) => a == b,
        (LiaLit::LeZero(a), LiaLit::LeZero(b)) => a == b,
        (LiaLit::NeqZero(a), LiaLit::NeqZero(b)) => a == b,
        _ => false,
    })
}

fn euf_contains(lits: &[EufLit], lit: &EufLit) -> bool {
    lits.iter()
        .any(|l| l.lhs == lit.lhs && l.rhs == lit.rhs && l.positive == lit.positive)
}

/// Intern a purified EUF term into the congruence engine.
fn intern(cc: &mut Congruence, term: &Form) -> Option<TermId> {
    match term {
        Form::Var(name) => Some(cc.constant(*name)),
        Form::Null => Some(cc.constant(Symbol::intern("$null"))),
        Form::BoolLit(true) => Some(cc.constant(Symbol::intern("$true"))),
        Form::BoolLit(false) => Some(cc.constant(Symbol::intern("$false"))),
        Form::IntLit(n) => Some(cc.constant(Symbol::intern(&format!("$int{n}")))),
        Form::App(head, args) => {
            let f = match head.as_ref() {
                Form::Var(name) => *name,
                _ => return None,
            };
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(intern(cc, a)?);
            }
            Some(cc.term(f, &ids))
        }
        _ => None,
    }
}

fn euf_consistent(base: &[EufLit], extra: &[EufLit]) -> bool {
    let mut cc = Congruence::new();
    // $true and $false are distinct.
    let t = cc.constant(Symbol::intern("$true"));
    let f = cc.constant(Symbol::intern("$false"));
    cc.assert_neq(t, f);
    for lit in base.iter().chain(extra) {
        let (Some(l), Some(r)) = (intern(&mut cc, &lit.lhs), intern(&mut cc, &lit.rhs)) else {
            // Uninternable term: ignore the literal (sound for the
            // *conflict* direction — fewer constraints can only make the
            // state more consistent; a wrong "consistent" just fails to
            // prove).
            continue;
        };
        if lit.positive {
            cc.merge(l, r);
        } else {
            cc.assert_neq(l, r);
        }
    }
    cc.consistent()
}

/// Pairs among `shared` currently forced equal by the EUF literals.
fn euf_equal_pairs(base: &[EufLit], extra: &[EufLit], shared: &[Symbol]) -> Vec<(Symbol, Symbol)> {
    let mut cc = Congruence::new();
    let t = cc.constant(Symbol::intern("$true"));
    let f = cc.constant(Symbol::intern("$false"));
    cc.assert_neq(t, f);
    for lit in base.iter().chain(extra) {
        if let (Some(l), Some(r)) = (intern(&mut cc, &lit.lhs), intern(&mut cc, &lit.rhs)) {
            if lit.positive {
                cc.merge(l, r);
            } else {
                cc.assert_neq(l, r);
            }
        }
    }
    let ids: Vec<TermId> = shared.iter().map(|&v| cc.constant(v)).collect();
    let mut out = Vec::new();
    for (i, &a) in ids.iter().enumerate() {
        for (j, &b) in ids.iter().enumerate().skip(i + 1) {
            if cc.equal(a, b) {
                out.push((shared[i], shared[j]));
            }
        }
    }
    out
}

/// LIA consistency via the Omega test, with disequalities handled by sign
/// enumeration (pruned recursion).
fn lia_consistent(base: &[LiaLit], extra: &[LiaLit]) -> bool {
    let mut ges: Vec<LinTerm> = Vec::new(); // each: t >= 0
    let mut eqs: Vec<LinTerm> = Vec::new(); // each: t = 0
    let mut neqs: Vec<LinTerm> = Vec::new(); // each: t != 0
    for lit in base.iter().chain(extra) {
        match lit {
            LiaLit::EqZero(t) => eqs.push(t.clone()),
            LiaLit::LeZero(t) => ges.push(t.scale(-1)),
            LiaLit::NeqZero(t) => neqs.push(t.clone()),
        }
    }
    // Variable inventory.
    let mut vars: Vec<Symbol> = Vec::new();
    for t in ges.iter().chain(&eqs).chain(&neqs) {
        for v in t.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    fn to_constraint(t: &LinTerm, vars: &[Symbol], eq: bool) -> Constraint {
        let mut coeffs = vec![0i64; vars.len()];
        for (v, k) in &t.coeffs {
            let idx = vars.iter().position(|w| w == v).unwrap();
            coeffs[idx] = *k;
        }
        if eq {
            Constraint::eq(coeffs, t.konst)
        } else {
            Constraint::ge(coeffs, t.konst)
        }
    }
    let mut fixed: Vec<Constraint> = Vec::new();
    for t in &ges {
        fixed.push(to_constraint(t, &vars, false));
    }
    for t in &eqs {
        fixed.push(to_constraint(t, &vars, true));
    }

    fn solve_with_neqs(fixed: &[Constraint], neqs: &[LinTerm], vars: &[Symbol]) -> bool {
        if omega_sat(fixed) != OmegaResult::Sat {
            return false;
        }
        let Some((first, rest)) = neqs.split_first() else {
            return true;
        };
        // first != 0: first >= 1 or -first >= 1.
        for t in [first.clone(), first.scale(-1)] {
            let shifted = t.sub(&LinTerm::constant(1));
            let mut sys = fixed.to_vec();
            sys.push(to_constraint(&shifted, vars, false));
            if solve_with_neqs(&sys, rest, vars) {
                return true;
            }
        }
        false
    }
    solve_with_neqs(&fixed, &neqs, &vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn sig() -> FxHashMap<Symbol, Sort> {
        [
            ("i", Sort::Int),
            ("j", Sort::Int),
            ("x", Sort::Obj),
            ("y", Sort::Obj),
            ("f", Sort::field(Sort::Obj)),
            ("g", Sort::field(Sort::Int)),
        ]
        .iter()
        .map(|(n, s)| (Symbol::intern(n), s.clone()))
        .collect()
    }

    fn consistent(literals: &[(&str, bool)]) -> bool {
        let s = sig();
        let lits: Vec<(Form, bool)> = literals.iter().map(|(f, b)| (form(f), *b)).collect();
        check(&lits, &s) == TheoryVerdict::Consistent
    }

    #[test]
    fn euf_only() {
        assert!(!consistent(&[("x = y", true), ("f x = f y", false)]));
        assert!(consistent(&[("x = y", true), ("f x = f y", true)]));
    }

    #[test]
    fn lia_only() {
        assert!(!consistent(&[("i <= j", true), ("j + 1 <= i", true)]));
        assert!(consistent(&[("i <= j", true), ("j <= i", true)]));
        assert!(!consistent(&[
            ("i <= j", true),
            ("j <= i", true),
            ("i = j", false)
        ]));
    }

    #[test]
    fn combined_propagation() {
        // i ≤ j ∧ j ≤ i forces i = j; then g-applications must agree.
        assert!(!consistent(&[
            ("i <= j", true),
            ("j <= i", true),
            ("g1 i = g1 j", false),
        ]));
    }

    #[test]
    fn nonconvex_split() {
        // 1 ≤ i ≤ 2 ∧ h(1) = x ∧ h(2) = x ∧ h(i) ≠ x is inconsistent but
        // needs the i=1 ∨ i=2 case split.
        assert!(!consistent(&[
            ("1 <= i", true),
            ("i <= 2", true),
            ("h2 1 = x", true),
            ("h2 2 = x", true),
            ("h2 i = x", false),
        ]));
        // Widening the range restores consistency.
        assert!(consistent(&[
            ("1 <= i", true),
            ("i <= 3", true),
            ("h2 1 = x", true),
            ("h2 2 = x", true),
            ("h2 i = x", false),
        ]));
    }

    #[test]
    fn predicates_as_equations() {
        assert!(!consistent(&[("p1 x", true), ("p1 x", false)]));
        assert!(consistent(&[("p1 x", true), ("p1 y", false)]));
        assert!(!consistent(&[
            ("x = y", true),
            ("p1 x", true),
            ("p1 y", false)
        ]));
    }
}
