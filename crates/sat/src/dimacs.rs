//! DIMACS CNF reading/writing, for interoperability and test corpora.

use crate::solver::{Lit, Solver, Var};
use std::fmt;

/// A parsed DIMACS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimacs {
    pub num_vars: usize,
    pub clauses: Vec<Vec<i32>>,
}

/// DIMACS parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError(pub String);

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs error: {}", self.0)
    }
}

impl std::error::Error for DimacsError {}

/// Parse DIMACS CNF text.
pub fn parse(text: &str) -> Result<Dimacs, DimacsError> {
    let mut num_vars = 0usize;
    let mut declared_clauses = None;
    let mut clauses = Vec::new();
    let mut current = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError(format!("bad problem line: {line}")));
            }
            num_vars = parts[1]
                .parse()
                .map_err(|_| DimacsError(format!("bad var count: {}", parts[1])))?;
            declared_clauses = Some(
                parts[2]
                    .parse::<usize>()
                    .map_err(|_| DimacsError(format!("bad clause count: {}", parts[2])))?,
            );
            continue;
        }
        for tok in line.split_whitespace() {
            let v: i32 = tok
                .parse()
                .map_err(|_| DimacsError(format!("bad literal: {tok}")))?;
            if v == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if v.unsigned_abs() as usize > num_vars {
                    return Err(DimacsError(format!("literal {v} out of range")));
                }
                current.push(v);
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError("clause not terminated by 0".into()));
    }
    if let Some(n) = declared_clauses {
        if clauses.len() != n {
            return Err(DimacsError(format!(
                "declared {n} clauses, found {}",
                clauses.len()
            )));
        }
    }
    Ok(Dimacs { num_vars, clauses })
}

/// Render an instance as DIMACS CNF text.
pub fn render(instance: &Dimacs) -> String {
    let mut out = format!("p cnf {} {}\n", instance.num_vars, instance.clauses.len());
    for c in &instance.clauses {
        for &l in c {
            out.push_str(&l.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

/// Load an instance into a fresh [`Solver`].
pub fn load(instance: &Dimacs) -> Solver {
    let mut solver = Solver::new();
    solver.reserve_vars(instance.num_vars);
    for c in &instance.clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&v| Var(v.unsigned_abs() - 1).lit(v > 0))
            .collect();
        solver.add_clause(&lits);
    }
    solver
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let d = parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn roundtrip() {
        let d = Dimacs {
            num_vars: 4,
            clauses: vec![vec![1, 2], vec![-3, 4], vec![-1]],
        };
        let text = render(&d);
        assert_eq!(parse(&text).unwrap(), d);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("p cnf x 1\n1 0").is_err());
        assert!(parse("p cnf 2 1\n5 0\n").is_err());
        assert!(parse("p cnf 2 1\n1 2\n").is_err());
        assert!(parse("p cnf 2 2\n1 0\n").is_err());
    }

    #[test]
    fn load_and_solve() {
        let d = parse("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = load(&d);
        match s.solve() {
            crate::solver::SolveResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn multiline_clause() {
        let d = parse("p cnf 3 1\n1\n2\n3 0\n").unwrap();
        assert_eq!(d.clauses, vec![vec![1, 2, 3]]);
    }
}
