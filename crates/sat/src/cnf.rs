//! Propositional formulas and Tseitin conversion to CNF.
//!
//! The bounded model finder and the DPLL(T) skeleton both build arbitrary
//! propositional structure and need it in clausal form. [`CnfBuilder`] wraps
//! a [`Solver`](crate::Solver)-compatible clause sink and performs the
//! standard Tseitin transformation with structural hashing, so shared
//! subformulas get one definition variable.

use crate::solver::{Lit, Solver, Var};
use jahob_util::FxHashMap;
use std::rc::Rc;

/// A propositional formula.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PropForm {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A named atom (index into the builder's atom table).
    Atom(u32),
    Not(Rc<PropForm>),
    And(Vec<PropForm>),
    Or(Vec<PropForm>),
    Implies(Rc<PropForm>, Rc<PropForm>),
    Iff(Rc<PropForm>, Rc<PropForm>),
}

impl PropForm {
    pub fn atom(i: u32) -> PropForm {
        PropForm::Atom(i)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PropForm) -> PropForm {
        match f {
            PropForm::True => PropForm::False,
            PropForm::False => PropForm::True,
            PropForm::Not(inner) => inner.as_ref().clone(),
            other => PropForm::Not(Rc::new(other)),
        }
    }

    pub fn and(fs: Vec<PropForm>) -> PropForm {
        let mut out = Vec::with_capacity(fs.len());
        for f in fs {
            match f {
                PropForm::True => {}
                PropForm::False => return PropForm::False,
                PropForm::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PropForm::True,
            1 => out.pop().unwrap(),
            _ => PropForm::And(out),
        }
    }

    pub fn or(fs: Vec<PropForm>) -> PropForm {
        let mut out = Vec::with_capacity(fs.len());
        for f in fs {
            match f {
                PropForm::False => {}
                PropForm::True => return PropForm::True,
                PropForm::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PropForm::False,
            1 => out.pop().unwrap(),
            _ => PropForm::Or(out),
        }
    }

    pub fn implies(a: PropForm, b: PropForm) -> PropForm {
        PropForm::or(vec![PropForm::not(a), b])
    }

    pub fn iff(a: PropForm, b: PropForm) -> PropForm {
        match (&a, &b) {
            (PropForm::True, _) => b,
            (_, PropForm::True) => a,
            (PropForm::False, _) => PropForm::not(b),
            (_, PropForm::False) => PropForm::not(a),
            _ if a == b => PropForm::True,
            _ => PropForm::Iff(Rc::new(a), Rc::new(b)),
        }
    }

    /// Evaluate under an atom valuation (for differential tests).
    pub fn eval(&self, atoms: &dyn Fn(u32) -> bool) -> bool {
        match self {
            PropForm::True => true,
            PropForm::False => false,
            PropForm::Atom(i) => atoms(*i),
            PropForm::Not(f) => !f.eval(atoms),
            PropForm::And(fs) => fs.iter().all(|f| f.eval(atoms)),
            PropForm::Or(fs) => fs.iter().any(|f| f.eval(atoms)),
            PropForm::Implies(a, b) => !a.eval(atoms) || b.eval(atoms),
            PropForm::Iff(a, b) => a.eval(atoms) == b.eval(atoms),
        }
    }
}

/// Tseitin CNF builder over a [`Solver`].
pub struct CnfBuilder {
    /// SAT variable for each atom index.
    atom_vars: FxHashMap<u32, Var>,
    /// Structural hash: formula → defining literal.
    defs: FxHashMap<PropForm, Lit>,
    /// A variable fixed true (for encoding constants).
    const_true: Option<Lit>,
}

impl Default for CnfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CnfBuilder {
    pub fn new() -> Self {
        CnfBuilder {
            atom_vars: FxHashMap::default(),
            defs: FxHashMap::default(),
            const_true: None,
        }
    }

    /// The SAT variable representing atom `i` (allocated on demand).
    pub fn atom_var(&mut self, solver: &mut Solver, i: u32) -> Var {
        if let Some(&v) = self.atom_vars.get(&i) {
            return v;
        }
        let v = solver.new_var();
        self.atom_vars.insert(i, v);
        v
    }

    fn true_lit(&mut self, solver: &mut Solver) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = solver.new_var();
        solver.add_clause(&[v.positive()]);
        let l = v.positive();
        self.const_true = Some(l);
        l
    }

    /// Return a literal equisatisfiably representing `form`, adding defining
    /// clauses to the solver.
    pub fn literal(&mut self, solver: &mut Solver, form: &PropForm) -> Lit {
        if let Some(&l) = self.defs.get(form) {
            return l;
        }
        let lit = match form {
            PropForm::True => self.true_lit(solver),
            PropForm::False => self.true_lit(solver).negate(),
            PropForm::Atom(i) => self.atom_var(solver, *i).positive(),
            PropForm::Not(inner) => self.literal(solver, inner).negate(),
            PropForm::And(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.literal(solver, p)).collect();
                let d = solver.new_var().positive();
                // d -> each part; (all parts) -> d.
                for &l in &lits {
                    solver.add_clause(&[d.negate(), l]);
                }
                let mut clause: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                clause.push(d);
                solver.add_clause(&clause);
                d
            }
            PropForm::Or(parts) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.literal(solver, p)).collect();
                let d = solver.new_var().positive();
                for &l in &lits {
                    solver.add_clause(&[l.negate(), d]);
                }
                let mut clause = lits.clone();
                clause.push(d.negate());
                solver.add_clause(&clause);
                d
            }
            PropForm::Implies(a, b) => {
                let f = PropForm::or(vec![PropForm::not(a.as_ref().clone()), b.as_ref().clone()]);
                self.literal(solver, &f)
            }
            PropForm::Iff(a, b) => {
                let la = self.literal(solver, a);
                let lb = self.literal(solver, b);
                let d = solver.new_var().positive();
                solver.add_clause(&[d.negate(), la.negate(), lb]);
                solver.add_clause(&[d.negate(), la, lb.negate()]);
                solver.add_clause(&[d, la, lb]);
                solver.add_clause(&[d, la.negate(), lb.negate()]);
                d
            }
        };
        self.defs.insert(form.clone(), lit);
        lit
    }

    /// Assert `form` as a top-level constraint.
    pub fn assert(&mut self, solver: &mut Solver, form: &PropForm) {
        // Top-level conjunctions split into separate assertions (fewer
        // definition variables).
        match form {
            PropForm::And(parts) => {
                for p in parts {
                    self.assert(solver, p);
                }
            }
            PropForm::True => {}
            PropForm::False => {
                solver.add_clause(&[]);
            }
            PropForm::Or(parts) if parts.iter().all(is_literal) => {
                let lits: Vec<Lit> = parts.iter().map(|p| self.literal(solver, p)).collect();
                solver.add_clause(&lits);
            }
            other => {
                let l = self.literal(solver, other);
                solver.add_clause(&[l]);
            }
        }
    }

    /// The value of atom `i` in a SAT model (false if never mentioned).
    pub fn atom_value(&self, model: &[bool], i: u32) -> bool {
        self.atom_vars
            .get(&i)
            .map(|v| model[v.0 as usize])
            .unwrap_or(false)
    }
}

fn is_literal(f: &PropForm) -> bool {
    matches!(f, PropForm::Atom(_))
        || matches!(f, PropForm::Not(inner) if matches!(inner.as_ref(), PropForm::Atom(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;

    fn solve(form: &PropForm) -> Option<Vec<(u32, bool)>> {
        let mut solver = Solver::new();
        let mut builder = CnfBuilder::new();
        builder.assert(&mut solver, form);
        match solver.solve() {
            crate::solver::SolveResult::Sat(model) => {
                let mut atoms: Vec<(u32, bool)> = builder
                    .atom_vars
                    .keys()
                    .map(|&i| (i, builder.atom_value(&model, i)))
                    .collect();
                atoms.sort();
                Some(atoms)
            }
            crate::solver::SolveResult::Unsat => None,
        }
    }

    fn a(i: u32) -> PropForm {
        PropForm::atom(i)
    }

    #[test]
    fn sat_and_model_correct() {
        let f = PropForm::and(vec![a(0), PropForm::not(a(1))]);
        let model = solve(&f).expect("sat");
        assert_eq!(model, vec![(0, true), (1, false)]);
    }

    #[test]
    fn unsat_contradiction() {
        let f = PropForm::and(vec![a(0), PropForm::not(a(0))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn implication_encoding() {
        // (a -> b) & a & ~b is unsat.
        let f = PropForm::and(vec![
            PropForm::implies(a(0), a(1)),
            a(0),
            PropForm::not(a(1)),
        ]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn iff_encoding() {
        let f = PropForm::and(vec![PropForm::iff(a(0), a(1)), a(0)]);
        let model = solve(&f).expect("sat");
        assert_eq!(model, vec![(0, true), (1, true)]);
        let g = PropForm::and(vec![PropForm::iff(a(0), a(1)), a(0), PropForm::not(a(1))]);
        assert!(solve(&g).is_none());
    }

    #[test]
    fn constants() {
        assert!(solve(&PropForm::True).is_some());
        assert!(solve(&PropForm::False).is_none());
        assert!(solve(&PropForm::implies(PropForm::False, PropForm::False)).is_some());
    }

    #[test]
    fn tseitin_equisatisfiable_exhaustive() {
        // For all formulas over 3 atoms from a small grammar, CNF
        // satisfiability must match brute-force satisfiability.
        let atoms = [a(0), a(1), a(2)];
        let mut formulas: Vec<PropForm> = atoms.to_vec();
        // Depth-2 combinations.
        let base = formulas.clone();
        for x in &base {
            formulas.push(PropForm::not(x.clone()));
        }
        let level1 = formulas.clone();
        for x in &level1 {
            for y in &level1 {
                formulas.push(PropForm::and(vec![x.clone(), y.clone()]));
                formulas.push(PropForm::or(vec![x.clone(), y.clone()]));
                formulas.push(PropForm::iff(x.clone(), y.clone()));
            }
        }
        for f in formulas.iter().take(300) {
            let brute = (0u32..8).any(|mask| f.eval(&|i| mask & (1 << i) != 0));
            let got = solve(f).is_some();
            assert_eq!(got, brute, "mismatch on {f:?}");
        }
    }

    #[test]
    fn shared_subformulas_reuse_definitions() {
        let shared = PropForm::and(vec![a(0), a(1)]);
        let f = PropForm::or(vec![shared.clone(), PropForm::not(shared.clone())]);
        let mut solver = Solver::new();
        let mut builder = CnfBuilder::new();
        builder.assert(&mut solver, &f);
        let n1 = solver.num_vars();
        // Re-asserting something mentioning the same subformula adds no new
        // definition variable for it.
        builder.assert(&mut solver, &shared);
        assert_eq!(solver.num_vars(), n1);
    }
}
