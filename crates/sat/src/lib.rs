//! `jahob-sat`: a CDCL SAT solver.
//!
//! Jahob-era decision procedures lean on propositional reasoning in several
//! places: the DPLL(T) core of the Nelson–Oppen combination (`jahob-smt`),
//! the bounded model finder that substitutes for the Alloy Analyzer
//! (`jahob-models`), and predicate-abstraction style reasoning in the shape
//! analysis. This crate provides the shared engine: a conflict-driven
//! clause-learning solver with two-watched-literal propagation, first-UIP
//! learning with recursive clause minimization, VSIDS-style activity
//! decisions with phase saving, and Luby restarts.
//!
//! The solver supports incremental use through assumptions
//! ([`Solver::solve_with_assumptions`]) — the mechanism DPLL(T) uses to ask
//! "is this theory-consistent valuation extendable?" — and exposes a simple
//! [`cnf`] builder plus DIMACS I/O for testing against brute force.

pub mod cnf;
pub mod dimacs;
pub mod solver;

pub use cnf::{CnfBuilder, PropForm};
pub use solver::{Lit, SolveResult, Solver, Var};
