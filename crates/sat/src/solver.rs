//! The CDCL engine.
//!
//! Standard architecture (MiniSat lineage): two-watched-literal propagation,
//! first-UIP conflict analysis with recursive minimization, VSIDS decision
//! heuristic with phase saving, Luby-sequence restarts, and learned-clause
//! retention (no aggressive deletion — problem sizes here stay moderate).

use std::fmt;

use jahob_util::budget::{Budget, Exhaustion};

/// A propositional variable (0-based index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// A literal: variable plus sign. Encoded as `var << 1 | (negated as u32)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Var {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with the given polarity (`true` = positive).
    pub fn lit(self, polarity: bool) -> Lit {
        if polarity {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is this the negative literal?
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Logical negation.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "~v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

/// Truth value of a variable/literal during search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

/// Outcome of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; the model maps each variable index to its value.
    Sat(Vec<bool>),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SolveResult {
    /// True when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

const CLAUSE_NONE: u32 = u32::MAX;

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver.
pub struct Solver {
    clauses: Vec<Clause>,
    /// For each literal, the clause indices watching it.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable.
    assign: Vec<LBool>,
    /// Saved phase per variable (for phase-saving decisions).
    phase: Vec<bool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (CLAUSE_NONE for decisions/assumptions).
    reason: Vec<u32>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Set when the clause database is unconditionally unsatisfiable.
    unsat: bool,
    /// Statistics: conflicts, decisions, propagations.
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(CLAUSE_NONE);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensure variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    fn value_lit(&self, lit: Lit) -> LBool {
        let v = self.assign[lit.var().0 as usize];
        if lit.is_neg() {
            v.negate()
        } else {
            v
        }
    }

    /// Add a clause (disjunction of literals). Returns `false` if the clause
    /// database became trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses added at root level");
        if self.unsat {
            return false;
        }
        // Normalize: sort, dedupe, drop tautologies and false literals.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort();
        c.dedup();
        let mut i = 0;
        while i + 1 < c.len() {
            if c[i].var() == c[i + 1].var() {
                return true; // x | ~x: tautology
            }
            i += 1;
        }
        c.retain(|&l| self.value_lit(l) != LBool::False);
        if c.iter().any(|&l| self.value_lit(l) == LBool::True) {
            return true;
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], CLAUSE_NONE);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].negate().index()].push(idx);
                self.watches[c[1].negate().index()].push(idx);
                self.clauses.push(Clause { lits: c });
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let v = lit.var().0 as usize;
        self.assign[v] = if lit.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.phase[v] = !lit.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Clauses watching ~lit must be visited: their watched literal
            // `lit.negate()`... our convention: watches[l] holds clauses that
            // are watching a literal whose negation is l; i.e. when l is
            // assigned true the clause may be affected. We stored watchers
            // under c[k].negate(), so visit watches[lit].
            let mut watchers = std::mem::take(&mut self.watches[lit.index()]);
            let mut i = 0;
            'watcher: while i < watchers.len() {
                let ci = watchers[i];
                // The falsified literal is lit.negate().
                let false_lit = lit.negate();
                {
                    let clause = &mut self.clauses[ci as usize];
                    // Ensure the falsified literal is at position 1.
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(ci);
                        watchers.swap_remove(i);
                        continue 'watcher;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    // Conflict: restore remaining watchers.
                    self.watches[lit.index()].append(&mut watchers);
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci);
                i += 1;
            }
            self.watches[lit.index()].extend(watchers);
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut lit_opt: Option<Lit> = None;
        let mut clause_idx = confl;
        let mut trail_pos = self.trail.len();

        loop {
            let clause_lits = self.clauses[clause_idx as usize].lits.clone();
            let start = if lit_opt.is_none() { 0 } else { 1 };
            for &q in &clause_lits[start..] {
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump_var(v);
                    if self.level[v.0 as usize] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().0 as usize] {
                    lit_opt = Some(l);
                    break;
                }
            }
            let p = lit_opt.unwrap();
            counter -= 1;
            seen[p.var().0 as usize] = false;
            if counter == 0 {
                learned[0] = p.negate();
                break;
            }
            clause_idx = self.reason[p.var().0 as usize];
            debug_assert_ne!(clause_idx, CLAUSE_NONE);
            // Re-mark: `seen` for p cleared above, but p is the resolvent
            // pivot; we skip position 0 of its reason (which is p itself).
            seen[p.var().0 as usize] = true;
        }

        // Clause minimization: drop literals implied by the rest.
        let marked: Vec<Lit> = learned[1..].to_vec();
        let mut kept = vec![learned[0]];
        for &l in &marked {
            if !self.literal_redundant(l, &seen_set(&learned)) {
                kept.push(l);
            }
        }
        let learned = kept;

        // Backjump level: second-highest level in the clause.
        let backjump = if learned.len() == 1 {
            0
        } else {
            let mut max = 0;
            for &l in &learned[1..] {
                max = max.max(self.level[l.var().0 as usize]);
            }
            max
        };
        (learned, backjump)
    }

    /// Is `lit`'s negation implied by the other literals of the learned
    /// clause (i.e. its reason literals are all in the clause or themselves
    /// redundant)? A simple one-level check — cheap and sound.
    fn literal_redundant(&self, lit: Lit, clause_vars: &std::collections::HashSet<u32>) -> bool {
        let reason = self.reason[lit.var().0 as usize];
        if reason == CLAUSE_NONE {
            return false;
        }
        self.clauses[reason as usize].lits[1..]
            .iter()
            .all(|&q| self.level[q.var().0 as usize] == 0 || clause_vars.contains(&q.var().0))
    }

    fn backtrack(&mut self, target_level: u32) {
        while self.decision_level() > target_level {
            let start = self.trail_lim.pop().unwrap();
            while self.trail.len() > start {
                let l = self.trail.pop().unwrap();
                self.assign[l.var().0 as usize] = LBool::Undef;
                self.reason[l.var().0 as usize] = CLAUSE_NONE;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef {
                let a = self.activity[v];
                match best {
                    Some((_, ba)) if ba >= a => {}
                    _ => best = Some((Var(v as u32), a)),
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Solve with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under temporary assumptions (literals forced true for this call
    /// only). Returns `Unsat` if the assumptions conflict with the clauses.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_with_assumptions_budgeted(assumptions, &Budget::unlimited())
            .expect("unlimited budget cannot be exhausted")
    }

    /// Budgeted solve with no assumptions. On exhaustion the solver state
    /// stays valid (trail rewound to level 0) and the call can be retried
    /// with a fresh budget.
    pub fn solve_budgeted(&mut self, budget: &Budget) -> Result<SolveResult, Exhaustion> {
        self.solve_with_assumptions_budgeted(&[], budget)
    }

    /// Budgeted solve under assumptions: one fuel unit per conflict and per
    /// decision, so the budget bounds the CDCL search itself rather than
    /// wall-clock alone.
    pub fn solve_with_assumptions_budgeted(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
    ) -> Result<SolveResult, Exhaustion> {
        if self.unsat {
            return Ok(SolveResult::Unsat);
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return Ok(SolveResult::Unsat);
        }

        let mut conflicts_until_restart = luby(1) * 64;
        let mut restart_count = 1;
        let mut conflicts_this_restart = 0u64;

        loop {
            if let Err(why) = budget.check() {
                self.backtrack(0);
                return Err(why);
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Ok(SolveResult::Unsat);
                }
                let (learned, backjump) = self.analyze(confl);
                self.backtrack(backjump);
                // After backjumping, the asserting literal is unassigned and
                // all other clause literals are false, so it propagates.
                // Assumptions invalidated by the backjump are re-imposed in
                // the decision branch; if one is now forced false, that
                // branch reports unsat-under-assumptions.
                let unit = learned[0];
                let ci = self.learn(&learned);
                debug_assert_eq!(self.value_lit(unit), LBool::Undef);
                self.enqueue(unit, ci);
                self.decay_activities();
                if conflicts_this_restart >= conflicts_until_restart {
                    conflicts_this_restart = 0;
                    restart_count += 1;
                    conflicts_until_restart = luby(restart_count) * 64;
                    self.backtrack(0);
                }
            } else {
                // Re-impose assumptions not yet satisfied.
                let mut pending = None;
                for &a in assumptions {
                    match self.value_lit(a) {
                        LBool::True => {}
                        LBool::False => {
                            self.backtrack(0);
                            return Ok(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            pending = Some(a);
                            break;
                        }
                    }
                }
                if let Some(a) = pending {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, CLAUSE_NONE);
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let model: Vec<bool> =
                            self.assign.iter().map(|&a| a == LBool::True).collect();
                        self.backtrack(0);
                        return Ok(SolveResult::Sat(model));
                    }
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.0 as usize]);
                        self.enqueue(lit, CLAUSE_NONE);
                    }
                }
            }
        }
    }

    /// Store a learned clause and set up its watches. Returns its index, or
    /// CLAUSE_NONE for unit clauses.
    fn learn(&mut self, lits: &[Lit]) -> u32 {
        if lits.len() == 1 {
            return CLAUSE_NONE;
        }
        let idx = self.clauses.len() as u32;
        // Watch the UIP literal and the highest-level other literal so the
        // clause is correctly watched after backjumping.
        let mut c = lits.to_vec();
        let mut best = 1;
        for k in 2..c.len() {
            if self.level[c[k].var().0 as usize] > self.level[c[best].var().0 as usize] {
                best = k;
            }
        }
        c.swap(1, best);
        self.watches[c[0].negate().index()].push(idx);
        self.watches[c[1].negate().index()].push(idx);
        self.clauses.push(Clause { lits: c });
        idx
    }
}

fn seen_set(learned: &[Lit]) -> std::collections::HashSet<u32> {
    learned.iter().map(|l| l.var().0).collect()
}

/// The Luby restart sequence (1-indexed): 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    loop {
        // Smallest k with i <= 2^k - 1.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        // Recurse into the prefix: i lies inside a copy of the sequence of
        // length 2^(k-1) - 1.
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver: &mut Solver, v: i32) -> Lit {
        let var = (v.unsigned_abs() - 1) as usize;
        solver.reserve_vars(var + 1);
        Var(var as u32).lit(v > 0)
    }

    fn add(solver: &mut Solver, clause: &[i32]) {
        let lits: Vec<Lit> = clause.iter().map(|&v| lit(solver, v)).collect();
        solver.add_clause(&lits);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        add(&mut s, &[1]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m[0]),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        add(&mut s, &[1]);
        add(&mut s, &[-1]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        add(&mut s, &[1, -1]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // 1, 1->2, 2->3, 3->4 ... all forced true.
        let mut s = Solver::new();
        add(&mut s, &[1]);
        for v in 1..50 {
            add(&mut s, &[-v, v + 1]);
        }
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.iter().take(50).all(|&b| b)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        for i in 0..3 {
            add(&mut s, &[var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    add(&mut s, &[-var(i1, j), -var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let mut s = Solver::new();
        let var = |i: usize, j: usize| (i * 4 + j + 1) as i32;
        for i in 0..5 {
            let clause: Vec<i32> = (0..4).map(|j| var(i, j)).collect();
            add(&mut s, &clause);
        }
        for j in 0..4 {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    add(&mut s, &[-var(i1, j), -var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.conflicts > 0, "must have required real search");
    }

    #[test]
    fn budget_exhaustion_leaves_solver_reusable() {
        let mut s = Solver::new();
        let var = |i: usize, j: usize| (i * 4 + j + 1) as i32;
        for i in 0..5 {
            let clause: Vec<i32> = (0..4).map(|j| var(i, j)).collect();
            add(&mut s, &clause);
        }
        for j in 0..4 {
            for i1 in 0..5 {
                for i2 in (i1 + 1)..5 {
                    add(&mut s, &[-var(i1, j), -var(i2, j)]);
                }
            }
        }
        // A couple of fuel units cannot finish the pigeonhole search.
        let tiny = Budget::with_fuel(2);
        assert_eq!(s.solve_budgeted(&tiny), Err(Exhaustion::Fuel));
        // The solver remains usable: a fresh unlimited run still decides it.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Random-ish structured instance; verify the returned model.
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![-2, 3, 4],
            vec![-4, 5],
            vec![-5, -1, 2],
            vec![2, 3, 5],
            vec![-3, -4, -5],
        ];
        let mut s = Solver::new();
        for c in &clauses {
            add(&mut s, c);
        }
        match s.solve() {
            SolveResult::Sat(m) => {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&v| {
                            let val = m[(v.unsigned_abs() - 1) as usize];
                            (v > 0) == val
                        }),
                        "model violates clause {c:?}"
                    );
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2]);
        add(&mut s, &[-1, 2]);
        // Satisfiable overall...
        assert!(s.solve().is_sat());
        // ...but not with 2 assumed false.
        let a = lit(&mut s, -2);
        assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Unsat);
        // Solver remains usable and satisfiable afterwards.
        assert!(s.solve().is_sat());
        let b = lit(&mut s, 2);
        assert!(s.solve_with_assumptions(&[b]).is_sat());
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        add(&mut s, &[1, 2, 3]);
        let a1 = lit(&mut s, 1);
        let a2 = lit(&mut s, -1);
        assert_eq!(s.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    /// Brute-force satisfiability for differential testing.
    fn brute_force(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
        'outer: for mask in 0u32..(1 << num_vars) {
            for c in clauses {
                let ok = c.iter().any(|&v| {
                    let val = mask & (1 << (v.unsigned_abs() - 1)) != 0;
                    (v > 0) == val
                });
                if !ok {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    #[test]
    fn differential_vs_brute_force() {
        // Deterministic pseudo-random 3-SAT instances around the phase
        // transition (ratio ~4.3), 10 vars.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for instance in 0..60 {
            let num_vars = 8;
            let num_clauses = 34;
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let v = (rnd() % num_vars as u64) as i32 + 1;
                    let signed = if rnd() % 2 == 0 { v } else { -v };
                    if !c.contains(&signed) && !c.contains(&-signed) {
                        c.push(signed);
                    }
                }
                clauses.push(c);
            }
            let expected = brute_force(num_vars, &clauses);
            let mut s = Solver::new();
            for c in &clauses {
                add(&mut s, c);
            }
            let got = s.solve().is_sat();
            assert_eq!(got, expected, "instance {instance}: {clauses:?}");
        }
    }
}
