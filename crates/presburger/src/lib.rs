//! `jahob-presburger`: decision procedures for Presburger arithmetic.
//!
//! Jahob discharged arithmetic proof obligations with "a decision procedure
//! for Boolean Algebra with Presburger Arithmetic based on reduction to the
//! Omega decision procedure for Presburger arithmetic" (§3, citing Pugh's
//! Omega test). This crate supplies both halves of that story:
//!
//! * [`cooper`] — Cooper's quantifier-elimination procedure, a complete
//!   decision procedure for *full* Presburger arithmetic (arbitrary
//!   quantifier alternation). This is the engine `jahob-bapa` reduces to.
//! * [`omega`] — the Omega test (Pugh 1991): an integer-programming style
//!   satisfiability check for *existential* conjunctions of linear
//!   constraints, with real-shadow/dark-shadow reasoning and exact
//!   splintering. Faster than Cooper on the quantifier-free conjunctions the
//!   VC generator mostly emits; benchmarked against Cooper in E9.
//! * [`translate`] — mapping the linear-integer-arithmetic fragment of the
//!   specification logic (`jahob_logic::Form`) into [`cooper::PForm`].

pub mod cooper;
pub mod linterm;
pub mod omega;
pub mod translate;

pub use cooper::{
    decide_closed, decide_closed_budgeted, eliminate_quantifiers, eliminate_quantifiers_budgeted,
    PAtom, PForm,
};
pub use linterm::LinTerm;
pub use omega::{omega_sat, Constraint, ConstraintKind, OmegaResult};
pub use translate::{form_to_pform, PresburgerFailure, TranslateError};
