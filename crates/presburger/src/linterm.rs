//! Linear integer terms: `c1*x1 + ... + cn*xn + k` with canonical form
//! (sorted variables, no zero coefficients).

use jahob_util::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// A linear term over integer variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct LinTerm {
    /// Variable coefficients; never stores a zero coefficient.
    pub coeffs: BTreeMap<Symbol, i64>,
    /// Constant offset.
    pub konst: i64,
}

impl LinTerm {
    /// The constant term `k`.
    pub fn constant(k: i64) -> LinTerm {
        LinTerm {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    /// The variable term `x`.
    pub fn var(x: Symbol) -> LinTerm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(x, 1);
        LinTerm { coeffs, konst: 0 }
    }

    /// Is this a constant (no variables)?
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: Symbol) -> i64 {
        self.coeffs.get(&x).copied().unwrap_or(0)
    }

    /// Add another term.
    pub fn add(&self, other: &LinTerm) -> LinTerm {
        let mut out = self.clone();
        for (&v, &c) in &other.coeffs {
            let entry = out.coeffs.entry(v).or_insert(0);
            *entry += c;
            if *entry == 0 {
                out.coeffs.remove(&v);
            }
        }
        out.konst += other.konst;
        out
    }

    /// Subtract another term.
    pub fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> LinTerm {
        if k == 0 {
            return LinTerm::constant(0);
        }
        LinTerm {
            coeffs: self.coeffs.iter().map(|(&v, &c)| (v, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// Remove `x`, returning its coefficient and the rest.
    pub fn split(&self, x: Symbol) -> (i64, LinTerm) {
        let c = self.coeff(x);
        let mut rest = self.clone();
        rest.coeffs.remove(&x);
        (c, rest)
    }

    /// Substitute `x := t` (t a linear term).
    pub fn subst(&self, x: Symbol, t: &LinTerm) -> LinTerm {
        let (c, rest) = self.split(x);
        rest.add(&t.scale(c))
    }

    /// Evaluate under an assignment (missing variables default to 0).
    pub fn eval(&self, env: &dyn Fn(Symbol) -> i64) -> i64 {
        self.konst + self.coeffs.iter().map(|(&v, &c)| c * env(v)).sum::<i64>()
    }

    /// The gcd of all variable coefficients (0 if constant).
    pub fn coeff_gcd(&self) -> i64 {
        self.coeffs.values().fold(0, |g, &c| gcd(g, c.abs()))
    }

    /// Free variables.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.coeffs.keys().copied()
    }
}

impl fmt::Display for LinTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else if *c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if *c > 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

/// Greatest common divisor (non-negative).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple (non-negative; lcm(0, x) = x by convention here).
pub fn lcm(a: i64, b: i64) -> i64 {
    if a == 0 {
        return b.abs();
    }
    if b == 0 {
        return a.abs();
    }
    (a / gcd(a, b) * b).abs()
}

/// Floor division (rounds toward negative infinity).
pub fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Mathematical modulo (result has the sign of `b`; here `b > 0` expected).
pub fn mod_floor(a: i64, b: i64) -> i64 {
    a - b * div_floor(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn arithmetic() {
        let x = LinTerm::var(s("x"));
        let y = LinTerm::var(s("y"));
        let t = x.scale(2).add(&y.scale(3)).add(&LinTerm::constant(5));
        assert_eq!(t.coeff(s("x")), 2);
        assert_eq!(t.coeff(s("y")), 3);
        assert_eq!(t.konst, 5);
        // 2x + 3y + 5 - 2x = 3y + 5.
        let u = t.sub(&x.scale(2));
        assert_eq!(u.coeff(s("x")), 0);
        assert!(!u.coeffs.contains_key(&s("x")), "zero coeff removed");
    }

    #[test]
    fn subst_replaces_linearly() {
        let x = s("x");
        // 2x + 1 with x := y - 3  gives 2y - 5.
        let t = LinTerm::var(x).scale(2).add(&LinTerm::constant(1));
        let replacement = LinTerm::var(s("y")).sub(&LinTerm::constant(3));
        let result = t.subst(x, &replacement);
        assert_eq!(result.coeff(s("y")), 2);
        assert_eq!(result.konst, -5);
    }

    #[test]
    fn eval_matches() {
        let t = LinTerm::var(s("x")).scale(2).add(&LinTerm::constant(7));
        let v = t.eval(&|_| 5);
        assert_eq!(v, 17);
    }

    #[test]
    fn gcd_lcm_floor() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 6);
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(mod_floor(-7, 2), 1);
        assert_eq!(mod_floor(7, 2), 1);
    }

    #[test]
    fn display_readable() {
        let t = LinTerm::var(s("x"))
            .scale(2)
            .add(&LinTerm::var(s("y")).scale(-1))
            .add(&LinTerm::constant(-3));
        assert_eq!(t.to_string(), "2*x - y - 3");
        assert_eq!(LinTerm::constant(0).to_string(), "0");
    }
}
