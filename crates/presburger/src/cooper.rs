//! Cooper's quantifier elimination for Presburger arithmetic.
//!
//! Complete for the full first-order theory of `(ℤ, +, ≤, ≡ₙ)`. The
//! implementation follows the classic presentation: normalize the bound
//! variable's coefficients to ±1 (at the cost of one divisibility
//! constraint), then replace `∃x. φ(x)` by
//!
//! ```text
//!   ⋁_{j=1..δ} φ₋∞(j)  ∨  ⋁_{j=1..δ} ⋁_{b ∈ B} φ(b + j)
//! ```
//!
//! where `δ` is the lcm of the divisibility moduli, `B` the set of lower
//! boundary terms, and `φ₋∞` the limit of `φ` as `x → −∞`.

use crate::linterm::{lcm, mod_floor, LinTerm};
use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::Symbol;
use std::fmt;

/// An atomic Presburger constraint. All atoms are normalized against zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PAtom {
    /// `t <= 0`.
    Le(LinTerm),
    /// `t = 0`.
    Eq(LinTerm),
    /// `t != 0`.
    Neq(LinTerm),
    /// `d | t` with `d > 0`.
    Dvd(i64, LinTerm),
    /// `¬(d | t)` with `d > 0`.
    NotDvd(i64, LinTerm),
}

impl PAtom {
    /// Evaluate a ground atom; `None` if variables remain.
    fn eval_ground(&self) -> Option<bool> {
        match self {
            PAtom::Le(t) if t.is_constant() => Some(t.konst <= 0),
            PAtom::Eq(t) if t.is_constant() => Some(t.konst == 0),
            PAtom::Neq(t) if t.is_constant() => Some(t.konst != 0),
            PAtom::Dvd(d, t) if t.is_constant() => Some(mod_floor(t.konst, *d) == 0),
            PAtom::NotDvd(d, t) if t.is_constant() => Some(mod_floor(t.konst, *d) != 0),
            _ => None,
        }
    }

    /// Evaluate under an assignment.
    pub fn eval(&self, env: &dyn Fn(Symbol) -> i64) -> bool {
        match self {
            PAtom::Le(t) => t.eval(env) <= 0,
            PAtom::Eq(t) => t.eval(env) == 0,
            PAtom::Neq(t) => t.eval(env) != 0,
            PAtom::Dvd(d, t) => mod_floor(t.eval(env), *d) == 0,
            PAtom::NotDvd(d, t) => mod_floor(t.eval(env), *d) != 0,
        }
    }

    fn negate(&self) -> PAtom {
        match self {
            // ¬(t ≤ 0) ⇔ t ≥ 1 ⇔ 1 - t ≤ 0.
            PAtom::Le(t) => PAtom::Le(LinTerm::constant(1).sub(t)),
            PAtom::Eq(t) => PAtom::Neq(t.clone()),
            PAtom::Neq(t) => PAtom::Eq(t.clone()),
            PAtom::Dvd(d, t) => PAtom::NotDvd(*d, t.clone()),
            PAtom::NotDvd(d, t) => PAtom::Dvd(*d, t.clone()),
        }
    }

    fn subst(&self, x: Symbol, t: &LinTerm) -> PAtom {
        match self {
            PAtom::Le(u) => PAtom::Le(u.subst(x, t)),
            PAtom::Eq(u) => PAtom::Eq(u.subst(x, t)),
            PAtom::Neq(u) => PAtom::Neq(u.subst(x, t)),
            PAtom::Dvd(d, u) => PAtom::Dvd(*d, u.subst(x, t)),
            PAtom::NotDvd(d, u) => PAtom::NotDvd(*d, u.subst(x, t)),
        }
    }

    fn term(&self) -> &LinTerm {
        match self {
            PAtom::Le(t)
            | PAtom::Eq(t)
            | PAtom::Neq(t)
            | PAtom::Dvd(_, t)
            | PAtom::NotDvd(_, t) => t,
        }
    }
}

impl fmt::Display for PAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PAtom::Le(t) => write!(f, "{t} <= 0"),
            PAtom::Eq(t) => write!(f, "{t} = 0"),
            PAtom::Neq(t) => write!(f, "{t} != 0"),
            PAtom::Dvd(d, t) => write!(f, "{d} | {t}"),
            PAtom::NotDvd(d, t) => write!(f, "~({d} | {t})"),
        }
    }
}

/// A Presburger formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PForm {
    True,
    False,
    Atom(PAtom),
    And(Vec<PForm>),
    Or(Vec<PForm>),
    Not(Box<PForm>),
    Ex(Symbol, Box<PForm>),
    All(Symbol, Box<PForm>),
}

impl PForm {
    pub fn and(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                PForm::True => {}
                PForm::False => return PForm::False,
                PForm::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.pop() {
            None => PForm::True,
            Some(single) if out.is_empty() => single,
            Some(last) => {
                out.push(last);
                PForm::And(out)
            }
        }
    }

    pub fn or(parts: Vec<PForm>) -> PForm {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                PForm::False => {}
                PForm::True => return PForm::True,
                PForm::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.pop() {
            None => PForm::False,
            Some(single) if out.is_empty() => single,
            Some(last) => {
                out.push(last);
                PForm::Or(out)
            }
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(p: PForm) -> PForm {
        match p {
            PForm::True => PForm::False,
            PForm::False => PForm::True,
            PForm::Not(inner) => *inner,
            other => PForm::Not(Box::new(other)),
        }
    }

    /// `t1 <= t2`.
    pub fn le(t1: LinTerm, t2: LinTerm) -> PForm {
        PForm::Atom(PAtom::Le(t1.sub(&t2)))
    }

    /// `t1 < t2`.
    pub fn lt(t1: LinTerm, t2: LinTerm) -> PForm {
        PForm::Atom(PAtom::Le(t1.sub(&t2).add(&LinTerm::constant(1))))
    }

    /// `t1 = t2`.
    pub fn eq(t1: LinTerm, t2: LinTerm) -> PForm {
        PForm::Atom(PAtom::Eq(t1.sub(&t2)))
    }

    /// Evaluate a quantifier-free formula under an assignment.
    pub fn eval_qf(&self, env: &dyn Fn(Symbol) -> i64) -> bool {
        match self {
            PForm::True => true,
            PForm::False => false,
            PForm::Atom(a) => a.eval(env),
            PForm::And(ps) => ps.iter().all(|p| p.eval_qf(env)),
            PForm::Or(ps) => ps.iter().any(|p| p.eval_qf(env)),
            PForm::Not(p) => !p.eval_qf(env),
            PForm::Ex(_, _) | PForm::All(_, _) => {
                panic!("eval_qf on quantified formula")
            }
        }
    }

    /// Free variables.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.collect_vars(&mut bound, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match self {
            PForm::True | PForm::False => {}
            PForm::Atom(a) => {
                for v in a.term().vars() {
                    if !bound.contains(&v) {
                        out.push(v);
                    }
                }
            }
            PForm::And(ps) | PForm::Or(ps) => {
                for p in ps {
                    p.collect_vars(bound, out);
                }
            }
            PForm::Not(p) => p.collect_vars(bound, out),
            PForm::Ex(x, p) | PForm::All(x, p) => {
                bound.push(*x);
                p.collect_vars(bound, out);
                bound.pop();
            }
        }
    }

    /// NNF with negations absorbed into atoms.
    fn nnf(&self, positive: bool) -> PForm {
        match (self, positive) {
            (PForm::True, true) | (PForm::False, false) => PForm::True,
            (PForm::True, false) | (PForm::False, true) => PForm::False,
            (PForm::Atom(a), true) => PForm::Atom(a.clone()),
            (PForm::Atom(a), false) => PForm::Atom(a.negate()),
            (PForm::And(ps), true) => PForm::and(ps.iter().map(|p| p.nnf(true)).collect()),
            (PForm::And(ps), false) => PForm::or(ps.iter().map(|p| p.nnf(false)).collect()),
            (PForm::Or(ps), true) => PForm::or(ps.iter().map(|p| p.nnf(true)).collect()),
            (PForm::Or(ps), false) => PForm::and(ps.iter().map(|p| p.nnf(false)).collect()),
            (PForm::Not(p), pos) => p.nnf(!pos),
            (PForm::Ex(x, p), true) => PForm::Ex(*x, Box::new(p.nnf(true))),
            (PForm::Ex(x, p), false) => PForm::All(*x, Box::new(p.nnf(false))),
            (PForm::All(x, p), true) => PForm::All(*x, Box::new(p.nnf(true))),
            (PForm::All(x, p), false) => PForm::Ex(*x, Box::new(p.nnf(false))),
        }
    }

    /// Fold ground atoms and simplify connectives.
    fn simplify(&self) -> PForm {
        match self {
            PForm::Atom(a) => match a.eval_ground() {
                Some(true) => PForm::True,
                Some(false) => PForm::False,
                None => self.clone(),
            },
            PForm::And(ps) => PForm::and(ps.iter().map(|p| p.simplify()).collect()),
            PForm::Or(ps) => PForm::or(ps.iter().map(|p| p.simplify()).collect()),
            PForm::Not(p) => PForm::not(p.simplify()),
            _ => self.clone(),
        }
    }

    fn subst(&self, x: Symbol, t: &LinTerm) -> PForm {
        match self {
            PForm::True | PForm::False => self.clone(),
            PForm::Atom(a) => PForm::Atom(a.subst(x, t)),
            PForm::And(ps) => PForm::And(ps.iter().map(|p| p.subst(x, t)).collect()),
            PForm::Or(ps) => PForm::Or(ps.iter().map(|p| p.subst(x, t)).collect()),
            PForm::Not(p) => PForm::Not(Box::new(p.subst(x, t))),
            PForm::Ex(y, p) if *y != x => PForm::Ex(*y, Box::new(p.subst(x, t))),
            PForm::All(y, p) if *y != x => PForm::All(*y, Box::new(p.subst(x, t))),
            PForm::Ex(_, _) | PForm::All(_, _) => self.clone(),
        }
    }
}

/// Eliminate all quantifiers; the result is quantifier-free and equivalent.
pub fn eliminate_quantifiers(form: &PForm) -> PForm {
    eliminate_quantifiers_budgeted(form, &Budget::unlimited())
        .expect("unlimited budget cannot be exhausted")
}

/// Budgeted quantifier elimination: fuel is charged per constructed
/// disjunct, so deeply alternating formulas (the worst-case exponential
/// path) stop cooperatively instead of exhausting memory or time.
pub fn eliminate_quantifiers_budgeted(form: &PForm, budget: &Budget) -> Result<PForm, Exhaustion> {
    let nnf = form.nnf(true);
    Ok(eliminate_rec(&nnf, budget)?.simplify())
}

fn eliminate_rec(form: &PForm, budget: &Budget) -> Result<PForm, Exhaustion> {
    budget.check()?;
    Ok(match form {
        PForm::True | PForm::False | PForm::Atom(_) => form.clone(),
        PForm::And(ps) => PForm::and(
            ps.iter()
                .map(|p| eliminate_rec(p, budget))
                .collect::<Result<_, _>>()?,
        ),
        PForm::Or(ps) => PForm::or(
            ps.iter()
                .map(|p| eliminate_rec(p, budget))
                .collect::<Result<_, _>>()?,
        ),
        PForm::Not(p) => PForm::not(eliminate_rec(p, budget)?),
        PForm::Ex(x, p) => {
            let inner = eliminate_rec(p, budget)?;
            // Inner elimination may have produced Not over atoms via
            // simplification; re-normalize to push negations into atoms.
            let inner = inner.nnf(true);
            eliminate_ex(*x, &inner, budget)?
        }
        PForm::All(x, p) => {
            let inner = eliminate_rec(p, budget)?;
            let negated = PForm::not(inner).nnf(true);
            PForm::not(eliminate_ex(*x, &negated, budget)?)
        }
    })
}

/// Cooper's elimination of one existential over a quantifier-free NNF body.
fn eliminate_ex(x: Symbol, body: &PForm, budget: &Budget) -> Result<PForm, Exhaustion> {
    let body = body.simplify();
    // Collect the lcm of |coefficients| of x.
    let mut l = 1i64;
    collect_coeff_lcm(&body, x, &mut l);
    if l == 0 {
        unreachable!("lcm never zero");
    }
    // Normalize x's coefficient to ±1; conjoin l | x when l > 1.
    let mut normalized = normalize_coeffs(&body, x, l);
    if l > 1 {
        normalized = PForm::and(vec![
            normalized,
            PForm::Atom(PAtom::Dvd(l, LinTerm::var(x))),
        ]);
    }
    // δ: lcm of divisibility moduli mentioning x.
    let mut delta = 1i64;
    collect_delta(&normalized, x, &mut delta);
    // Boundary terms: choose the smaller of the lower set (B, with φ₋∞) and
    // the upper set (A, with φ₊∞) — the standard Cooper optimization that
    // keeps the disjunction from exploding.
    let mut lower_bounds: Vec<LinTerm> = Vec::new();
    collect_bounds(&normalized, x, false, &mut lower_bounds);
    let mut upper_bounds: Vec<LinTerm> = Vec::new();
    collect_bounds(&normalized, x, true, &mut upper_bounds);
    dedup_terms(&mut lower_bounds);
    dedup_terms(&mut upper_bounds);

    let use_upper = upper_bounds.len() < lower_bounds.len();
    let bounds = if use_upper {
        &upper_bounds
    } else {
        &lower_bounds
    };
    let limit = infinity_limit(&normalized, x, use_upper);

    // Each iteration substitutes into (and re-simplifies) the whole body,
    // which grows exponentially across eliminations — so a single "unit" of
    // fuel here can stand for a lot of wall-clock time. Poll the deadline
    // unamortized: one clock read per full-formula traversal is noise.
    let mut disjuncts = Vec::new();
    for j in 1..=delta {
        budget.check()?;
        budget.poll_deadline()?;
        let jval = if use_upper { -j } else { j };
        disjuncts.push(limit.subst(x, &LinTerm::constant(jval)).simplify());
    }
    for j in 1..=delta {
        for b in bounds {
            budget.check()?;
            budget.poll_deadline()?;
            let t = if use_upper {
                b.sub(&LinTerm::constant(j))
            } else {
                b.add(&LinTerm::constant(j))
            };
            disjuncts.push(normalized.subst(x, &t).simplify());
        }
    }
    dedup_forms(&mut disjuncts, budget)?;
    Ok(PForm::or(disjuncts))
}

fn dedup_terms(terms: &mut Vec<LinTerm>) {
    let mut seen: Vec<LinTerm> = Vec::new();
    terms.retain(|t| {
        if seen.contains(t) {
            false
        } else {
            seen.push(t.clone());
            true
        }
    });
}

// Quadratic in the disjunct count, and every `contains` compares whole
// formulas — check the budget per element so a blown-up disjunction cannot
// stall past its deadline here.
fn dedup_forms(forms: &mut Vec<PForm>, budget: &Budget) -> Result<(), Exhaustion> {
    let mut seen: Vec<PForm> = Vec::new();
    for f in std::mem::take(forms) {
        budget.check()?;
        budget.poll_deadline()?;
        if !seen.contains(&f) {
            seen.push(f);
        }
    }
    *forms = seen;
    Ok(())
}

fn collect_coeff_lcm(form: &PForm, x: Symbol, l: &mut i64) {
    match form {
        PForm::Atom(a) => {
            let c = a.term().coeff(x);
            if c != 0 {
                *l = lcm(*l, c.abs());
            }
        }
        PForm::And(ps) | PForm::Or(ps) => {
            for p in ps {
                collect_coeff_lcm(p, x, l);
            }
        }
        PForm::Not(p) => collect_coeff_lcm(p, x, l),
        _ => {}
    }
}

/// Scale every atom so the coefficient of `x` is ±1, under the change of
/// variable x ↦ x/l (i.e. the new x stands for l·old x).
fn normalize_coeffs(form: &PForm, x: Symbol, l: i64) -> PForm {
    match form {
        PForm::True | PForm::False => form.clone(),
        PForm::Atom(a) => {
            let c = a.term().coeff(x);
            if c == 0 {
                return form.clone();
            }
            let m = l / c.abs();
            let scaled = match a {
                PAtom::Le(t) => PAtom::Le(t.scale(m)),
                PAtom::Eq(t) => PAtom::Eq(t.scale(m)),
                PAtom::Neq(t) => PAtom::Neq(t.scale(m)),
                PAtom::Dvd(d, t) => PAtom::Dvd(d * m, t.scale(m)),
                PAtom::NotDvd(d, t) => PAtom::NotDvd(d * m, t.scale(m)),
            };
            // Replace the ±l coefficient by ±1.
            let rewrite = |t: &LinTerm| -> LinTerm {
                let (coeff, rest) = t.split(x);
                debug_assert_eq!(coeff.abs(), l);
                let sign = if coeff > 0 { 1 } else { -1 };
                rest.add(&LinTerm::var(x).scale(sign))
            };
            PForm::Atom(match scaled {
                PAtom::Le(t) => PAtom::Le(rewrite(&t)),
                PAtom::Eq(t) => PAtom::Eq(rewrite(&t)),
                PAtom::Neq(t) => PAtom::Neq(rewrite(&t)),
                PAtom::Dvd(d, t) => PAtom::Dvd(d, rewrite(&t)),
                PAtom::NotDvd(d, t) => PAtom::NotDvd(d, rewrite(&t)),
            })
        }
        PForm::And(ps) => PForm::And(ps.iter().map(|p| normalize_coeffs(p, x, l)).collect()),
        PForm::Or(ps) => PForm::Or(ps.iter().map(|p| normalize_coeffs(p, x, l)).collect()),
        PForm::Not(p) => PForm::Not(Box::new(normalize_coeffs(p, x, l))),
        PForm::Ex(_, _) | PForm::All(_, _) => {
            unreachable!("quantifier inside Cooper matrix")
        }
    }
}

fn collect_delta(form: &PForm, x: Symbol, delta: &mut i64) {
    match form {
        PForm::Atom(PAtom::Dvd(d, t)) | PForm::Atom(PAtom::NotDvd(d, t)) if t.coeff(x) != 0 => {
            *delta = lcm(*delta, *d);
        }
        PForm::And(ps) | PForm::Or(ps) => {
            for p in ps {
                collect_delta(p, x, delta);
            }
        }
        PForm::Not(p) => collect_delta(p, x, delta),
        _ => {}
    }
}

/// Boundary terms. With atoms normalized to coefficient ±1:
///
/// Lower set B (`upper == false`):
/// * `-x + r ≤ 0` (x ≥ r): boundary `r - 1`,
/// * `x = t`: boundary `t - 1`,
/// * `x ≠ t`: boundary `t`.
///
/// Upper set A (`upper == true`):
/// * `x + r ≤ 0` (x ≤ -r): boundary `-r + 1`,
/// * `x = t`: boundary `t + 1`,
/// * `x ≠ t`: boundary `t`.
fn collect_bounds(form: &PForm, x: Symbol, upper: bool, out: &mut Vec<LinTerm>) {
    match form {
        PForm::Atom(a) => {
            let (c, rest) = a.term().split(x);
            if c == 0 {
                return;
            }
            match a {
                PAtom::Le(_) if c == -1 && !upper => {
                    // -x + r <= 0 : x >= r.
                    out.push(rest.sub(&LinTerm::constant(1)));
                }
                PAtom::Le(_) if c == 1 && upper => {
                    // x + r <= 0 : x <= -r.
                    out.push(rest.scale(-1).add(&LinTerm::constant(1)));
                }
                PAtom::Le(_) => {}
                PAtom::Eq(_) => {
                    // c x + r = 0; with c = ±1, x = -c·r.
                    let val = rest.scale(-c);
                    if upper {
                        out.push(val.add(&LinTerm::constant(1)));
                    } else {
                        out.push(val.sub(&LinTerm::constant(1)));
                    }
                }
                PAtom::Neq(_) => {
                    out.push(rest.scale(-c));
                }
                PAtom::Dvd(_, _) | PAtom::NotDvd(_, _) => {}
            }
        }
        PForm::And(ps) | PForm::Or(ps) => {
            for p in ps {
                collect_bounds(p, x, upper, out);
            }
        }
        PForm::Not(p) => collect_bounds(p, x, upper, out),
        _ => {}
    }
}

/// φ₋∞ / φ₊∞: the limit of φ as x → ∓∞ (boundable atoms replaced by
/// constants; divisibility atoms kept).
fn infinity_limit(form: &PForm, x: Symbol, plus: bool) -> PForm {
    match form {
        PForm::True | PForm::False => form.clone(),
        PForm::Atom(a) => {
            let c = a.term().coeff(x);
            if c == 0 {
                return form.clone();
            }
            match a {
                // x + r ≤ 0 holds as x → −∞, fails as x → +∞; dually for
                // -x + r ≤ 0.
                PAtom::Le(_) => {
                    if (c == 1) != plus {
                        PForm::True
                    } else {
                        PForm::False
                    }
                }
                PAtom::Eq(_) => PForm::False,
                PAtom::Neq(_) => PForm::True,
                PAtom::Dvd(_, _) | PAtom::NotDvd(_, _) => form.clone(),
            }
        }
        PForm::And(ps) => PForm::and(ps.iter().map(|p| infinity_limit(p, x, plus)).collect()),
        PForm::Or(ps) => PForm::or(ps.iter().map(|p| infinity_limit(p, x, plus)).collect()),
        PForm::Not(p) => PForm::not(infinity_limit(p, x, plus)),
        PForm::Ex(_, _) | PForm::All(_, _) => unreachable!(),
    }
}

/// Decide a closed (sentence) Presburger formula. Returns `None` if the
/// formula has free variables.
pub fn decide_closed(form: &PForm) -> Option<bool> {
    decide_closed_budgeted(form, &Budget::unlimited())
        .expect("unlimited budget cannot be exhausted")
}

/// Budgeted [`decide_closed`].
pub fn decide_closed_budgeted(form: &PForm, budget: &Budget) -> Result<Option<bool>, Exhaustion> {
    if !form.free_vars().is_empty() {
        return Ok(None);
    }
    Ok(match eliminate_quantifiers_budgeted(form, budget)? {
        PForm::True => Some(true),
        PForm::False => Some(false),
        other => {
            // All atoms must be ground; simplify fully.
            match other.simplify() {
                PForm::True => Some(true),
                PForm::False => Some(false),
                _ => unreachable!("closed QE result must be ground"),
            }
        }
    })
}

/// Decide validity: universally close the free variables.
pub fn valid(form: &PForm) -> bool {
    valid_budgeted(form, &Budget::unlimited()).expect("unlimited budget cannot be exhausted")
}

/// Budgeted [`valid`].
pub fn valid_budgeted(form: &PForm, budget: &Budget) -> Result<bool, Exhaustion> {
    let mut closed = form.clone();
    for v in form.free_vars() {
        closed = PForm::All(v, Box::new(closed));
    }
    Ok(decide_closed_budgeted(&closed, budget)?
        .expect("every free variable was universally closed above, so QE leaves a constant"))
}

/// Decide satisfiability: existentially close the free variables.
pub fn sat(form: &PForm) -> bool {
    sat_budgeted(form, &Budget::unlimited()).expect("unlimited budget cannot be exhausted")
}

/// Budgeted [`sat`].
pub fn sat_budgeted(form: &PForm, budget: &Budget) -> Result<bool, Exhaustion> {
    let mut closed = form.clone();
    for v in form.free_vars() {
        closed = PForm::Ex(v, Box::new(closed));
    }
    Ok(decide_closed_budgeted(&closed, budget)?
        .expect("every free variable was existentially closed above, so QE leaves a constant"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    fn x() -> LinTerm {
        LinTerm::var(s("x"))
    }

    fn y() -> LinTerm {
        LinTerm::var(s("y"))
    }

    fn k(v: i64) -> LinTerm {
        LinTerm::constant(v)
    }

    #[test]
    fn ground_decisions() {
        assert_eq!(decide_closed(&PForm::le(k(1), k(2))), Some(true));
        assert_eq!(decide_closed(&PForm::le(k(3), k(2))), Some(false));
        assert_eq!(decide_closed(&PForm::Atom(PAtom::Dvd(3, k(9)))), Some(true));
        assert_eq!(
            decide_closed(&PForm::Atom(PAtom::Dvd(3, k(-7)))),
            Some(false)
        );
    }

    #[test]
    fn exists_simple() {
        // Ex x. x = 5.
        let f = PForm::Ex(s("x"), Box::new(PForm::eq(x(), k(5))));
        assert_eq!(decide_closed(&f), Some(true));
        // Ex x. x <= 3 & 5 <= x  — unsat.
        let g = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![PForm::le(x(), k(3)), PForm::le(k(5), x())])),
        );
        assert_eq!(decide_closed(&g), Some(false));
        // Ex x. x <= 3 & 3 <= x  — sat (x = 3).
        let h = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![PForm::le(x(), k(3)), PForm::le(k(3), x())])),
        );
        assert_eq!(decide_closed(&h), Some(true));
    }

    #[test]
    fn divisibility_constraints() {
        // Ex x. 2|x & 3|x & 10 <= x & x <= 11 — unsat (next multiple of 6 is 12).
        let f = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::Atom(PAtom::Dvd(2, x())),
                PForm::Atom(PAtom::Dvd(3, x())),
                PForm::le(k(10), x()),
                PForm::le(x(), k(11)),
            ])),
        );
        assert_eq!(decide_closed(&f), Some(false));
        // Widen to x <= 12: sat.
        let g = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::Atom(PAtom::Dvd(2, x())),
                PForm::Atom(PAtom::Dvd(3, x())),
                PForm::le(k(10), x()),
                PForm::le(x(), k(12)),
            ])),
        );
        assert_eq!(decide_closed(&g), Some(true));
    }

    #[test]
    fn coefficient_normalization() {
        // Ex x. 2x = 7 — unsat (7 odd).
        let f = PForm::Ex(s("x"), Box::new(PForm::eq(x().scale(2), k(7))));
        assert_eq!(decide_closed(&f), Some(false));
        // Ex x. 2x = 8 — sat.
        let g = PForm::Ex(s("x"), Box::new(PForm::eq(x().scale(2), k(8))));
        assert_eq!(decide_closed(&g), Some(true));
        // Ex x. 3x <= 10 & 10 <= 4x — x=3: 9<=10, 10<=12. sat.
        let h = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::le(x().scale(3), k(10)),
                PForm::le(k(10), x().scale(4)),
            ])),
        );
        assert_eq!(decide_closed(&h), Some(true));
    }

    #[test]
    fn universal_quantifier() {
        // ALL x. x <= x + 1: valid.
        let f = PForm::All(s("x"), Box::new(PForm::le(x(), x().add(&k(1)))));
        assert_eq!(decide_closed(&f), Some(true));
        // ALL x. 0 <= x: invalid.
        let g = PForm::All(s("x"), Box::new(PForm::le(k(0), x())));
        assert_eq!(decide_closed(&g), Some(false));
    }

    #[test]
    fn alternating_quantifiers() {
        // ALL x. EX y. y = x + 1: valid.
        let f = PForm::All(
            s("x"),
            Box::new(PForm::Ex(s("y"), Box::new(PForm::eq(y(), x().add(&k(1)))))),
        );
        assert_eq!(decide_closed(&f), Some(true));
        // EX y. ALL x. x <= y: invalid (no max integer).
        let g = PForm::Ex(
            s("y"),
            Box::new(PForm::All(s("x"), Box::new(PForm::le(x(), y())))),
        );
        assert_eq!(decide_closed(&g), Some(false));
        // ALL x. EX y. 2y = x: invalid (odd x).
        let h = PForm::All(
            s("x"),
            Box::new(PForm::Ex(s("y"), Box::new(PForm::eq(y().scale(2), x())))),
        );
        assert_eq!(decide_closed(&h), Some(false));
        // ALL x. EX y. 2y = x | 2y = x + 1: valid.
        let i = PForm::All(
            s("x"),
            Box::new(PForm::Ex(
                s("y"),
                Box::new(PForm::or(vec![
                    PForm::eq(y().scale(2), x()),
                    PForm::eq(y().scale(2), x().add(&k(1))),
                ])),
            )),
        );
        assert_eq!(decide_closed(&i), Some(true));
    }

    #[test]
    fn even_odd_theorem() {
        // ALL x. 2|x | 2|(x+1): valid.
        let f = PForm::All(
            s("x"),
            Box::new(PForm::or(vec![
                PForm::Atom(PAtom::Dvd(2, x())),
                PForm::Atom(PAtom::Dvd(2, x().add(&k(1)))),
            ])),
        );
        assert_eq!(decide_closed(&f), Some(true));
        // ALL x. 2|x: invalid.
        let g = PForm::All(s("x"), Box::new(PForm::Atom(PAtom::Dvd(2, x()))));
        assert_eq!(decide_closed(&g), Some(false));
    }

    #[test]
    fn validity_with_free_vars() {
        // x <= y | y <= x is valid.
        let f = PForm::or(vec![PForm::le(x(), y()), PForm::le(y(), x())]);
        assert!(valid(&f));
        assert!(sat(&f));
        // x < y & y < x is unsat.
        let g = PForm::and(vec![PForm::lt(x(), y()), PForm::lt(y(), x())]);
        assert!(!sat(&g));
        assert!(!valid(&g));
    }

    #[test]
    fn negation_in_scope() {
        // Ex x. ~(x <= 5) & x <= 6 — sat (x = 6).
        let f = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::not(PForm::le(x(), k(5))),
                PForm::le(x(), k(6)),
            ])),
        );
        assert_eq!(decide_closed(&f), Some(true));
        // Ex x. ~(x <= 5) & x <= 5 — unsat.
        let g = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::not(PForm::le(x(), k(5))),
                PForm::le(x(), k(5)),
            ])),
        );
        assert_eq!(decide_closed(&g), Some(false));
    }

    #[test]
    fn neq_atoms() {
        // Ex x. x != 0 & 0 <= x & x <= 1 — sat (x = 1).
        let f = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::Atom(PAtom::Neq(x())),
                PForm::le(k(0), x()),
                PForm::le(x(), k(1)),
            ])),
        );
        assert_eq!(decide_closed(&f), Some(true));
        // Ex x. x != 0 & 0 <= x & x <= 0 — unsat.
        let g = PForm::Ex(
            s("x"),
            Box::new(PForm::and(vec![
                PForm::Atom(PAtom::Neq(x())),
                PForm::le(k(0), x()),
                PForm::le(x(), k(0)),
            ])),
        );
        assert_eq!(decide_closed(&g), Some(false));
    }

    #[test]
    fn budget_stops_deep_alternation() {
        // Build a deep ∀∃∀∃… alternation with awkward coefficients: each
        // layer multiplies the disjunction count, so a small fuel budget
        // must trip before elimination completes.
        let names: Vec<Symbol> = (0..8).map(|i| s(&format!("q{i}"))).collect();
        let mut body = PForm::le(
            names.iter().fold(LinTerm::constant(0), |acc, &v| {
                acc.add(&LinTerm::var(v).scale(3))
            }),
            k(100),
        );
        for (i, &v) in names.iter().enumerate() {
            body = PForm::and(vec![
                body,
                PForm::Atom(PAtom::Dvd(2 + (i as i64 % 3), LinTerm::var(v))),
            ]);
        }
        let mut closed = body;
        for (i, &v) in names.iter().enumerate() {
            closed = if i % 2 == 0 {
                PForm::Ex(v, Box::new(closed))
            } else {
                PForm::All(v, Box::new(closed))
            };
        }
        // Fuel is charged per visited node and per constructed disjunct;
        // five units cannot even traverse the eight quantifier layers.
        let tiny = Budget::with_fuel(5);
        assert_eq!(
            decide_closed_budgeted(&closed, &tiny),
            Err(Exhaustion::Fuel)
        );
        // With room to finish, the verdict matches the unlimited run.
        assert_eq!(
            decide_closed_budgeted(&closed, &Budget::with_fuel(10_000_000)),
            Ok(decide_closed(&closed))
        );
    }

    #[test]
    fn budgeted_agrees_with_unlimited_when_it_finishes() {
        let f = PForm::All(
            s("x"),
            Box::new(PForm::Ex(s("y"), Box::new(PForm::eq(y(), x().add(&k(1)))))),
        );
        let roomy = Budget::with_fuel(1_000_000);
        assert_eq!(decide_closed_budgeted(&f, &roomy), Ok(Some(true)));
        assert_eq!(decide_closed(&f), Some(true));
    }

    #[test]
    fn differential_vs_bounded_enumeration() {
        // Random formulas with explicit bounds 0 <= x <= 7, 0 <= y <= 7:
        // quantifier elimination must agree with brute force.
        let mut state = 0x0bad_cafe_d00d_f00du64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            // Random conjunction/disjunction of small atoms over x, y.
            let mut atoms = Vec::new();
            for _ in 0..3 {
                let cx = (rnd() % 5) as i64 - 2;
                let cy = (rnd() % 5) as i64 - 2;
                let c = (rnd() % 9) as i64 - 4;
                let t = x().scale(cx).add(&y().scale(cy)).add(&k(c));
                let atom = match rnd() % 3 {
                    0 => PAtom::Le(t),
                    1 => PAtom::Eq(t),
                    _ => PAtom::Dvd(1 + (rnd() % 3) as i64, t),
                };
                atoms.push(PForm::Atom(atom));
            }
            let body = if rnd() % 2 == 0 {
                PForm::and(atoms)
            } else {
                PForm::or(atoms)
            };
            let bounds = PForm::and(vec![
                PForm::le(k(0), x()),
                PForm::le(x(), k(7)),
                PForm::le(k(0), y()),
                PForm::le(y(), k(7)),
            ]);
            let full = PForm::and(vec![bounds, body]);
            // Brute force.
            let mut brute = false;
            'search: for vx in 0..=7i64 {
                for vy in 0..=7i64 {
                    let env = move |v: Symbol| {
                        if v == s("x") {
                            vx
                        } else if v == s("y") {
                            vy
                        } else {
                            0
                        }
                    };
                    if full.eval_qf(&env) {
                        brute = true;
                        break 'search;
                    }
                }
            }
            let closed = PForm::Ex(s("x"), Box::new(PForm::Ex(s("y"), Box::new(full.clone()))));
            let got = decide_closed(&closed).unwrap();
            assert_eq!(got, brute, "round {round}: {full:?}");
        }
    }
}
