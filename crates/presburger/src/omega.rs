//! The Omega test (Pugh, Supercomputing '91): satisfiability of a
//! conjunction of linear integer constraints.
//!
//! Structure follows the paper:
//!
//! 1. **Normalization** — divide each constraint by the gcd of its variable
//!    coefficients; an equality whose constant is not divisible is an
//!    immediate contradiction; an inequality's constant floors (tightening).
//! 2. **Equality elimination** — solve unit-coefficient equalities directly;
//!    otherwise apply Pugh's symmetric-modulo substitution, which introduces
//!    a fresh variable and strictly shrinks coefficients.
//! 3. **Inequality elimination** — Fourier–Motzkin over the integers: the
//!    *real shadow* is necessary, the *dark shadow* is sufficient; when they
//!    disagree the problem *splinters* into finitely many subproblems with an
//!    added equality. Exact (real = dark) when all lower or all upper
//!    coefficients of the eliminated variable are 1.
//!
//! Coefficients are `i64`; inputs with enormous coefficients may overflow —
//! the VC-generated constraints this system sees are tiny. Debug builds
//! check arithmetic.

use crate::linterm::{div_floor, gcd, mod_floor};

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `Σ cᵢxᵢ + k = 0`.
    Eq,
    /// `Σ cᵢxᵢ + k ≥ 0`.
    Ge,
}

/// A dense linear constraint over variables `0..width`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    pub coeffs: Vec<i64>,
    pub konst: i64,
    pub kind: ConstraintKind,
}

impl Constraint {
    /// `Σ coeffs·x + konst = 0`.
    pub fn eq(coeffs: Vec<i64>, konst: i64) -> Constraint {
        Constraint {
            coeffs,
            konst,
            kind: ConstraintKind::Eq,
        }
    }

    /// `Σ coeffs·x + konst ≥ 0`.
    pub fn ge(coeffs: Vec<i64>, konst: i64) -> Constraint {
        Constraint {
            coeffs,
            konst,
            kind: ConstraintKind::Ge,
        }
    }

    fn width(&self) -> usize {
        self.coeffs.len()
    }

    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    fn holds_trivially(&self) -> bool {
        debug_assert!(self.is_constant());
        match self.kind {
            ConstraintKind::Eq => self.konst == 0,
            ConstraintKind::Ge => self.konst >= 0,
        }
    }

    /// Evaluate under an assignment (for tests).
    pub fn eval(&self, xs: &[i64]) -> bool {
        let v: i64 = self
            .coeffs
            .iter()
            .zip(xs)
            .map(|(&c, &x)| c * x)
            .sum::<i64>()
            + self.konst;
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Ge => v >= 0,
        }
    }
}

/// Result of the Omega test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OmegaResult {
    Sat,
    Unsat,
}

/// Symmetric modulo: `a mod^ m ∈ [-⌈m/2⌉+1, ⌊m/2⌋]` with `a ≡ a mod^ m (mod m)`.
fn mod_hat(a: i64, m: i64) -> i64 {
    let r = mod_floor(a, m);
    if 2 * r >= m {
        r - m
    } else {
        r
    }
}

thread_local! {
    /// Work budget for one top-level `omega_sat` call: number of recursive
    /// `solve` invocations. Exhaustion returns `Sat` ("cannot prove
    /// unsatisfiable") — the sound give-up direction for every caller in
    /// this workspace, all of which use unsatisfiability as the proof.
    static WORK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

const WORK_BUDGET: u64 = 8_000;

/// Decide satisfiability of a conjunction of integer linear constraints.
pub fn omega_sat(constraints: &[Constraint]) -> OmegaResult {
    WORK.with(|w| w.set(0));
    let width = constraints.iter().map(Constraint::width).max().unwrap_or(0);
    let mut cs: Vec<Constraint> = constraints
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.coeffs.resize(width, 0);
            c
        })
        .collect();
    if solve(&mut cs, 0) {
        OmegaResult::Sat
    } else {
        OmegaResult::Unsat
    }
}

/// Recursion-depth guard: splintering and mod-elimination both strictly
/// reduce a well-founded measure, but we bound defensively.
const MAX_DEPTH: u32 = 256;

fn solve(cs: &mut Vec<Constraint>, depth: u32) -> bool {
    let spent = WORK.with(|w| {
        let v = w.get() + 1;
        w.set(v);
        v
    });
    if spent > WORK_BUDGET {
        return true; // budget exhausted: give up proving unsatisfiability
    }
    if depth > MAX_DEPTH {
        // Should not happen on well-formed inputs; treat as unknown-sat to
        // stay sound for the *validity* use (prover answers "can't prove").
        return true;
    }
    // Normalize; drop trivial constraints; detect contradictions.
    let mut i = 0;
    while i < cs.len() {
        if !normalize(&mut cs[i]) {
            return false;
        }
        if cs[i].is_constant() {
            if !cs[i].holds_trivially() {
                return false;
            }
            cs.swap_remove(i);
        } else {
            i += 1;
        }
    }
    if cs.is_empty() {
        return true;
    }

    // Equality elimination. Prefer an equality with a unit coefficient —
    // in particular the one the symmetric-modulo substitution just added —
    // so Pugh's coefficient-reduction argument applies and the recursion
    // makes progress.
    let eq_indices: Vec<usize> = cs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == ConstraintKind::Eq)
        .map(|(i, _)| i)
        .collect();
    if !eq_indices.is_empty() {
        let unit = eq_indices
            .iter()
            .copied()
            .find(|&i| cs[i].coeffs.iter().any(|&c| c.abs() == 1));
        let idx = unit.unwrap_or(eq_indices[0]);
        return eliminate_equality(cs, idx, depth);
    }

    // Pure inequalities: pick a variable to eliminate.
    let width = cs[0].width();
    let used: Vec<usize> = (0..width)
        .filter(|&v| cs.iter().any(|c| c.coeffs[v] != 0))
        .collect();
    if used.is_empty() {
        return true;
    }

    // Unbounded variables (only lower or only upper bounds) can be dropped
    // together with every constraint mentioning them.
    for &v in &used {
        let has_lower = cs.iter().any(|c| c.coeffs[v] > 0);
        let has_upper = cs.iter().any(|c| c.coeffs[v] < 0);
        if !(has_lower && has_upper) {
            let mut rest: Vec<Constraint> =
                cs.iter().filter(|c| c.coeffs[v] == 0).cloned().collect();
            return solve(&mut rest, depth + 1);
        }
    }

    // Choose the variable with the cheapest exact elimination, falling back
    // to fewest lower×upper pairs.
    let mut best: Option<(usize, bool, usize)> = None;
    for &v in &used {
        let lowers = cs.iter().filter(|c| c.coeffs[v] > 0).count();
        let uppers = cs.iter().filter(|c| c.coeffs[v] < 0).count();
        let exact = cs.iter().all(|c| c.coeffs[v] >= -1) || cs.iter().all(|c| c.coeffs[v] <= 1);
        let pairs = lowers * uppers;
        let candidate = (v, exact, pairs);
        best = match best {
            None => Some(candidate),
            Some((_, bexact, bpairs)) => {
                if (exact && !bexact) || (exact == bexact && pairs < bpairs) {
                    Some(candidate)
                } else {
                    best
                }
            }
        };
    }
    let (v, exact, _) =
        best.expect("`used` is non-empty (checked above), so a candidate was always picked");

    // Build shadows.
    let lowers: Vec<Constraint> = cs.iter().filter(|c| c.coeffs[v] > 0).cloned().collect();
    let uppers: Vec<Constraint> = cs.iter().filter(|c| c.coeffs[v] < 0).cloned().collect();
    let rest: Vec<Constraint> = cs.iter().filter(|c| c.coeffs[v] == 0).cloned().collect();

    let shadow = |dark: bool| -> Vec<Constraint> {
        let mut out = rest.clone();
        for lo in &lowers {
            for up in &uppers {
                // lo: a·x ≥ α  (a = lo.coeffs[v] > 0, α = -(lo without x))
                // up: b·x ≤ β  (b = -up.coeffs[v] > 0, β = up without x)
                let a = lo.coeffs[v];
                let b = -up.coeffs[v];
                // Combined: a·β − b·α ≥ margin, expressed directly on the
                // stored representations: a·up + b·lo (x cancels).
                let mut coeffs = vec![0i64; width];
                for (w, cw) in coeffs.iter_mut().enumerate() {
                    *cw = a * up.coeffs[w] + b * lo.coeffs[w];
                }
                debug_assert_eq!(coeffs[v], 0);
                let mut konst = a * up.konst + b * lo.konst;
                if dark {
                    konst -= (a - 1) * (b - 1);
                }
                out.push(Constraint::ge(coeffs, konst));
            }
        }
        out
    };

    if exact {
        let mut real = shadow(false);
        return solve(&mut real, depth + 1);
    }

    // Dark shadow is sufficient.
    let mut dark = shadow(true);
    if solve(&mut dark, depth + 1) {
        return true;
    }
    // Real shadow is necessary.
    let mut real = shadow(false);
    if !solve(&mut real, depth + 1) {
        return false;
    }
    // Splinter: any integer solution missed by the dark shadow satisfies
    // a·x = α + i for some lower bound (a, α) and small i.
    let bmax = uppers
        .iter()
        .map(|u| -u.coeffs[v])
        .max()
        .expect("v has upper bounds or it would have been dropped as unbounded above");
    for lo in &lowers {
        let a = lo.coeffs[v];
        let max_i = (a * bmax - a - bmax) / bmax;
        for i in 0..=max_i {
            // a·x − α − i... in stored form lo is (a·x − α ≥ 0) i.e.
            // lo.coeffs·x + lo.konst ≥ 0; the splinter equality is
            // lo.coeffs·x + lo.konst − i = 0.
            let mut sub = cs.clone();
            sub.push(Constraint::eq(lo.coeffs.clone(), lo.konst - i));
            if solve(&mut sub, depth + 1) {
                return true;
            }
        }
    }
    false
}

/// Divide out the coefficient gcd. Returns false on immediate contradiction.
fn normalize(c: &mut Constraint) -> bool {
    let g = c.coeffs.iter().fold(0i64, |g, &x| gcd(g, x));
    if g <= 1 {
        return true;
    }
    match c.kind {
        ConstraintKind::Eq => {
            if c.konst % g != 0 {
                return false;
            }
            for x in c.coeffs.iter_mut() {
                *x /= g;
            }
            c.konst /= g;
            true
        }
        ConstraintKind::Ge => {
            for x in c.coeffs.iter_mut() {
                *x /= g;
            }
            c.konst = div_floor(c.konst, g);
            true
        }
    }
}

fn eliminate_equality(cs: &mut [Constraint], eq_idx: usize, depth: u32) -> bool {
    let eq = cs[eq_idx].clone();
    let width = eq.width();
    // Find a unit-coefficient variable.
    if let Some(v) = (0..width).find(|&v| eq.coeffs[v].abs() == 1) {
        // Solve: x_v = -sign · (rest + konst).
        let sign = eq.coeffs[v];
        let mut out = Vec::with_capacity(cs.len() - 1);
        for (idx, c) in cs.iter().enumerate() {
            if idx == eq_idx {
                continue;
            }
            let cv = c.coeffs[v];
            if cv == 0 {
                out.push(c.clone());
                continue;
            }
            // c + substitution: x_v appears with coefficient cv; replace by
            // -sign·(eq_rest). new = c − cv·sign·eq (which zeroes x_v since
            // eq.coeffs[v] = sign and sign² = 1).
            let mut coeffs = vec![0i64; width];
            for (w, cw) in coeffs.iter_mut().enumerate() {
                *cw = c.coeffs[w] - cv * sign * eq.coeffs[w];
            }
            debug_assert_eq!(coeffs[v], 0);
            let konst = c.konst - cv * sign * eq.konst;
            out.push(Constraint {
                coeffs,
                konst,
                kind: c.kind,
            });
        }
        return solve(&mut out, depth + 1);
    }

    // Pugh's symmetric-modulo substitution.
    let (v, a) = (0..width)
        .filter(|&v| eq.coeffs[v] != 0)
        .map(|v| (v, eq.coeffs[v]))
        .min_by_key(|&(_, a)| a.abs())
        .expect(
            "constant equalities were removed during normalization, so a coefficient is nonzero",
        );
    let m = a.abs() + 1;
    // New equality: Σ hat(a_i, m)·x_i + hat(c, m) − m·σ = 0 with fresh σ.
    let mut coeffs: Vec<i64> = eq.coeffs.iter().map(|&c| mod_hat(c, m)).collect();
    coeffs.push(-m); // fresh variable σ at the new last column
    let konst = mod_hat(eq.konst, m);
    let mut out: Vec<Constraint> = cs
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.coeffs.push(0);
            c
        })
        .collect();
    out.push(Constraint::eq(coeffs, konst));
    debug_assert_eq!(out.last().unwrap().coeffs[v].abs(), 1);
    solve(&mut out, depth + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(cs: &[Constraint]) -> bool {
        omega_sat(cs) == OmegaResult::Sat
    }

    #[test]
    fn empty_is_sat() {
        assert!(sat(&[]));
    }

    #[test]
    fn constant_contradiction() {
        assert!(!sat(&[Constraint::ge(vec![0], -1)]));
        assert!(!sat(&[Constraint::eq(vec![0], 3)]));
        assert!(sat(&[Constraint::ge(vec![0], 0)]));
    }

    #[test]
    fn simple_bounds() {
        // x >= 2 & x <= 5.
        assert!(sat(&[
            Constraint::ge(vec![1], -2),
            Constraint::ge(vec![-1], 5),
        ]));
        // x >= 6 & x <= 5.
        assert!(!sat(&[
            Constraint::ge(vec![1], -6),
            Constraint::ge(vec![-1], 5),
        ]));
    }

    #[test]
    fn equality_parity() {
        // 2x = 7: unsat.
        assert!(!sat(&[Constraint::eq(vec![2], -7)]));
        // 2x = 8: sat.
        assert!(sat(&[Constraint::eq(vec![2], -8)]));
    }

    #[test]
    fn two_variable_equalities() {
        // 3x + 5y = 1: sat (e.g. x=2, y=-1).
        assert!(sat(&[Constraint::eq(vec![3, 5], -1)]));
        // 2x + 4y = 5: unsat (even = odd).
        assert!(!sat(&[Constraint::eq(vec![2, 4], -5)]));
        // 6x + 10y = 4: sat (gcd 2 | 4).
        assert!(sat(&[Constraint::eq(vec![6, 10], -4)]));
    }

    #[test]
    fn dark_shadow_gap() {
        // Pugh's classic: 3 ≤ 11x ≤ 8 — no integer x (x must satisfy
        // 11x ∈ [3,8], but 11·0=0 < 3 and 11·1=11 > 8).
        assert!(!sat(&[
            Constraint::ge(vec![11], -3), // 11x - 3 >= 0
            Constraint::ge(vec![-11], 8), // 8 - 11x >= 0
        ]));
        // 3 ≤ 11x ≤ 11: sat (x = 1).
        assert!(sat(&[
            Constraint::ge(vec![11], -3),
            Constraint::ge(vec![-11], 11),
        ]));
    }

    #[test]
    fn splinter_needed() {
        // 2y ≤ 3x ≤ 2y + 1 with 1 ≤ x ≤ 4, 1 ≤ y ≤ 4:
        // 3x ∈ {2y, 2y+1}: x=1,y=1: 3 ∈ {2,3} ✓. Sat.
        assert!(sat(&[
            Constraint::ge(vec![3, -2], 0), // 3x - 2y >= 0
            Constraint::ge(vec![-3, 2], 1), // 2y + 1 - 3x >= 0
            Constraint::ge(vec![1, 0], -1),
            Constraint::ge(vec![-1, 0], 4),
            Constraint::ge(vec![0, 1], -1),
            Constraint::ge(vec![0, -1], 4),
        ]));
    }

    #[test]
    fn unbounded_variable_dropped() {
        // x ≥ y (y otherwise free): always sat.
        assert!(sat(&[Constraint::ge(vec![1, -1], 0)]));
    }

    #[test]
    fn three_vars_system() {
        // x + y + z = 10, x ≥ 3, y ≥ 3, z ≥ 3: sat (3+3+4).
        assert!(sat(&[
            Constraint::eq(vec![1, 1, 1], -10),
            Constraint::ge(vec![1, 0, 0], -3),
            Constraint::ge(vec![0, 1, 0], -3),
            Constraint::ge(vec![0, 0, 1], -3),
        ]));
        // x + y + z = 10 with all ≥ 4: unsat.
        assert!(!sat(&[
            Constraint::eq(vec![1, 1, 1], -10),
            Constraint::ge(vec![1, 0, 0], -4),
            Constraint::ge(vec![0, 1, 0], -4),
            Constraint::ge(vec![0, 0, 1], -4),
        ]));
    }

    #[test]
    fn differential_vs_brute_force() {
        // Random small systems over 3 variables in [-5, 5]; compare against
        // exhaustive search. Bounds included so brute force is complete.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..80 {
            let mut cs = vec![
                Constraint::ge(vec![1, 0, 0], 5),
                Constraint::ge(vec![-1, 0, 0], 5),
                Constraint::ge(vec![0, 1, 0], 5),
                Constraint::ge(vec![0, -1, 0], 5),
                Constraint::ge(vec![0, 0, 1], 5),
                Constraint::ge(vec![0, 0, -1], 5),
            ];
            for _ in 0..3 {
                let coeffs: Vec<i64> = (0..3).map(|_| (rnd() % 7) as i64 - 3).collect();
                let k = (rnd() % 11) as i64 - 5;
                if rnd() % 4 == 0 {
                    cs.push(Constraint::eq(coeffs, k));
                } else {
                    cs.push(Constraint::ge(coeffs, k));
                }
            }
            let mut brute = false;
            'search: for x in -5..=5i64 {
                for y in -5..=5i64 {
                    for z in -5..=5i64 {
                        if cs.iter().all(|c| c.eval(&[x, y, z])) {
                            brute = true;
                            break 'search;
                        }
                    }
                }
            }
            assert_eq!(sat(&cs), brute, "round {round}: {cs:?}");
        }
    }

    #[test]
    fn differential_vs_cooper() {
        // The same systems decided by both engines must agree.
        use crate::cooper::{self, PForm};
        use crate::linterm::LinTerm;
        use jahob_util::Symbol;

        let names = ["ox", "oy"];
        let mut state = 0x1111_2222_3333_4444u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let mut cs = Vec::new();
            for _ in 0..3 {
                let coeffs: Vec<i64> = (0..2).map(|_| (rnd() % 5) as i64 - 2).collect();
                let k = (rnd() % 9) as i64 - 4;
                if rnd() % 3 == 0 {
                    cs.push(Constraint::eq(coeffs, k));
                } else {
                    cs.push(Constraint::ge(coeffs, k));
                }
            }
            // Build the equivalent PForm.
            let mut conj = Vec::new();
            for c in &cs {
                let mut t = LinTerm::constant(c.konst);
                for (i, &coef) in c.coeffs.iter().enumerate() {
                    t = t.add(&LinTerm::var(Symbol::intern(names[i])).scale(coef));
                }
                // stored: t >= 0 i.e. -t <= 0; or t = 0.
                let atom = match c.kind {
                    ConstraintKind::Ge => cooper::PAtom::Le(t.scale(-1)),
                    ConstraintKind::Eq => cooper::PAtom::Eq(t),
                };
                conj.push(PForm::Atom(atom));
            }
            let body = PForm::and(conj);
            let cooper_sat = cooper::sat(&body);
            let omega = sat(&cs);
            assert_eq!(omega, cooper_sat, "round {round}: {cs:?}");
        }
    }
}
