//! Translation from the specification logic to Presburger formulas.
//!
//! Accepts the linear-integer-arithmetic fragment: integer variables and
//! literals, `+`, `-`, unary minus, multiplication by constants, the
//! comparisons `<`, `<=`, `=`, boolean connectives, and quantifiers over
//! `int`-sorted binders. Anything else (sets, objects, fields, `card`) is a
//! [`TranslateError`] and the dispatcher routes the goal elsewhere —
//! cardinality atoms go through `jahob-bapa`, which produces [`PForm`]s
//! itself.

use crate::cooper::PForm;
use crate::linterm::LinTerm;
use jahob_logic::{BinOp, Form, QKind, Sort, UnOp};
use jahob_util::budget::{Budget, Exhaustion};
use std::fmt;

/// Why a formula is outside the LIA fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    pub message: String,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "not in the Presburger fragment: {}", self.message)
    }
}

impl std::error::Error for TranslateError {}

fn err<T>(message: impl Into<String>) -> Result<T, TranslateError> {
    Err(TranslateError {
        message: message.into(),
    })
}

/// Translate an integer-sorted term to a linear term.
pub fn term_to_linterm(form: &Form) -> Result<LinTerm, TranslateError> {
    match form {
        Form::Var(name) => Ok(LinTerm::var(*name)),
        Form::IntLit(n) => Ok(LinTerm::constant(*n)),
        Form::Unop(UnOp::Neg, inner) => Ok(term_to_linterm(inner)?.scale(-1)),
        Form::Binop(BinOp::Add, lhs, rhs) => Ok(term_to_linterm(lhs)?.add(&term_to_linterm(rhs)?)),
        Form::Binop(BinOp::Sub, lhs, rhs) => Ok(term_to_linterm(lhs)?.sub(&term_to_linterm(rhs)?)),
        Form::Binop(BinOp::Mul, lhs, rhs) => {
            let l = term_to_linterm(lhs)?;
            let r = term_to_linterm(rhs)?;
            if l.is_constant() {
                Ok(r.scale(l.konst))
            } else if r.is_constant() {
                Ok(l.scale(r.konst))
            } else {
                err("nonlinear multiplication")
            }
        }
        other => err(format!("non-arithmetic term `{other}`")),
    }
}

/// Translate a boolean formula in the LIA fragment to a [`PForm`].
pub fn form_to_pform(form: &Form) -> Result<PForm, TranslateError> {
    match form {
        Form::BoolLit(true) => Ok(PForm::True),
        Form::BoolLit(false) => Ok(PForm::False),
        Form::And(parts) => Ok(PForm::and(
            parts.iter().map(form_to_pform).collect::<Result<_, _>>()?,
        )),
        Form::Or(parts) => Ok(PForm::or(
            parts.iter().map(form_to_pform).collect::<Result<_, _>>()?,
        )),
        Form::Unop(UnOp::Not, inner) => Ok(PForm::not(form_to_pform(inner)?)),
        Form::Binop(BinOp::Implies, lhs, rhs) => Ok(PForm::or(vec![
            PForm::not(form_to_pform(lhs)?),
            form_to_pform(rhs)?,
        ])),
        Form::Binop(BinOp::Iff, lhs, rhs) => {
            let l = form_to_pform(lhs)?;
            let r = form_to_pform(rhs)?;
            Ok(PForm::and(vec![
                PForm::or(vec![PForm::not(l.clone()), r.clone()]),
                PForm::or(vec![l, PForm::not(r)]),
            ]))
        }
        Form::Binop(BinOp::Lt, lhs, rhs) => {
            Ok(PForm::lt(term_to_linterm(lhs)?, term_to_linterm(rhs)?))
        }
        Form::Binop(BinOp::Le, lhs, rhs) => {
            Ok(PForm::le(term_to_linterm(lhs)?, term_to_linterm(rhs)?))
        }
        Form::Binop(BinOp::Eq, lhs, rhs) => {
            Ok(PForm::eq(term_to_linterm(lhs)?, term_to_linterm(rhs)?))
        }
        Form::Quant(kind, binders, body) => {
            let mut out = form_to_pform(body)?;
            for (name, sort) in binders.iter().rev() {
                if !matches!(sort, Sort::Int | Sort::Var(_)) {
                    return err(format!("quantifier over non-int binder `{name}`"));
                }
                out = match kind {
                    QKind::All => PForm::All(*name, Box::new(out)),
                    QKind::Ex => PForm::Ex(*name, Box::new(out)),
                };
            }
            Ok(out)
        }
        other => err(format!("non-LIA formula `{other}`")),
    }
}

/// Decide validity of a formula in the LIA fragment (free variables
/// universally quantified). `Err` means "not my fragment".
pub fn decide_valid(form: &Form) -> Result<bool, TranslateError> {
    let p = form_to_pform(form)?;
    Ok(crate::cooper::valid(&p))
}

/// Why a budgeted Presburger decision did not produce an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PresburgerFailure {
    /// The goal is outside the LIA fragment — route it elsewhere.
    Fragment(TranslateError),
    /// The budget ran out mid-elimination.
    Exhausted(Exhaustion),
}

impl fmt::Display for PresburgerFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PresburgerFailure::Fragment(e) => e.fmt(f),
            PresburgerFailure::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PresburgerFailure {}

/// Budgeted [`decide_valid`], separating "wrong fragment" from "ran out of
/// resources" so the dispatcher can record an honest failure reason.
pub fn decide_valid_budgeted(form: &Form, budget: &Budget) -> Result<bool, PresburgerFailure> {
    jahob_util::chaos::boundary("presburger.decide", budget)
        .map_err(PresburgerFailure::Exhausted)?;
    let p = form_to_pform(form).map_err(PresburgerFailure::Fragment)?;
    crate::cooper::valid_budgeted(&p, budget).map_err(PresburgerFailure::Exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    #[test]
    fn translates_paper_style_arithmetic() {
        assert_eq!(decide_valid(&form("x + 1 > x")), Ok(true));
        assert_eq!(decide_valid(&form("x < y --> x + 1 <= y")), Ok(true));
        assert_eq!(decide_valid(&form("x < y & y < z --> x < z")), Ok(true));
        assert_eq!(decide_valid(&form("x <= y --> x < y")), Ok(false));
        assert_eq!(decide_valid(&form("2 * x ~= 2 * y + 1")), Ok(true));
    }

    #[test]
    fn quantified() {
        assert_eq!(
            decide_valid(&form("ALL i::int. EX j::int. i < j")),
            Ok(true)
        );
        assert_eq!(
            decide_valid(&form("EX j::int. ALL i::int. i < j")),
            Ok(false)
        );
        assert_eq!(
            decide_valid(&form("ALL i::int. i = 2 * i --> i = 0")),
            Ok(true)
        );
    }

    #[test]
    fn rejects_non_lia() {
        assert!(decide_valid(&form("x : S")).is_err());
        assert!(decide_valid(&form("card S <= 3")).is_err());
        assert!(decide_valid(&form("x * y = y * x")).is_err());
        assert!(decide_valid(&form("f x = f x")).is_err());
    }

    #[test]
    fn unelaborated_binders_accepted_as_int() {
        // In the prove-CLI path, quantifiers may arrive pre-elaboration with
        // unknown binder sorts; the LIA translation takes them as int.
        assert_eq!(decide_valid(&form("ALL n. n <= n")), Ok(true));
    }
}
