//! Shared low-level substrate for the `jahob-rs` workspace.
//!
//! This crate deliberately has no dependencies. It provides the handful of
//! data structures that almost every other crate in the workspace needs:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher (the FxHash algorithm used
//!   inside rustc) plus `HashMap`/`HashSet` aliases built on it. Hashing is on
//!   the hot path of the congruence closure, the automata library, and the
//!   interner, and SipHash is measurably slower for the short integer keys we
//!   use everywhere.
//! * [`intern`] — a global string interner producing copy-able [`intern::Symbol`]
//!   handles, so formula ASTs compare names by `u32` equality.
//! * [`union_find`] — path-compressing union-find, used by the congruence
//!   closure and by DFA minimization.
//! * [`bitset`] — a fixed-capacity bitset, used by automata subset
//!   construction and the Boolean-heap shape domain.
//! * [`counters`] — lightweight named statistics counters for the benchmark
//!   harness and the dispatcher report.
//! * [`budget`] — cooperative resource budgets (deadline + fuel) threaded
//!   through every prover so no substrate can hang a verification run.
//! * [`chaos`] — deterministic, seeded fault injection at prover
//!   boundaries, for testing the dispatcher's recovery machinery under
//!   adversarial conditions.
//! * [`pool`] — a small work-stealing thread pool (panic isolation per
//!   task, budget-slice inheritance, worker-local state) that the
//!   verification pipeline uses to fan obligations out across cores.
//! * [`trace`] — the cached `JAHOB_TRACE` diagnostic flag.
//! * [`obs`] — the structured observability pipeline: typed events for
//!   run/method/obligation/attempt spans, pluggable sinks, and the
//!   recorder the dispatcher threads through the hot path.
//! * [`json`] — a tiny hand-rolled JSON writer backing [`obs`] and the
//!   verification report serialization (the workspace has no deps).
//! * [`store`] — a crash-safe, checksummed, append-only segment store
//!   that persists the goal cache across processes; corruption degrades
//!   to a cold cache, never a wrong answer.
//! * [`ipc`] — the length-prefixed, CRC-framed request/response protocol
//!   spoken between a verification session and its out-of-process prover
//!   workers, plus the little binary codec the frames carry.
//! * [`supervisor`] — the parent side of out-of-process prover execution:
//!   spawns worker children, enforces hard wall-clock deadlines with
//!   SIGKILL, applies memory ceilings, and quarantines crash-looping
//!   lanes so the session degrades to in-process execution instead of
//!   dying with its provers.

pub mod bitset;
pub mod budget;
pub mod chaos;
pub mod counters;
pub mod fxhash;
pub mod intern;
pub mod ipc;
pub mod json;
pub mod obs;
pub mod pool;
pub mod store;
pub mod supervisor;
pub mod trace;
pub mod union_find;

pub use bitset::BitSet;
pub use budget::{Budget, Exhaustion};
pub use chaos::{DiskFault, Fault, FaultPlan, IpcFault, Lie, SocketFault};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::Symbol;
pub use obs::{Event, JsonlSink, MemorySink, NullSink, Recorder, Sink, StderrSink};
pub use trace::trace_enabled;
pub use union_find::UnionFind;
