//! Union-find (disjoint set forest) with path halving and union by rank.
//!
//! Used by the congruence closure in `jahob-euf` and by Moore/Hopcroft
//! minimization in `jahob-mona`.

/// A disjoint-set forest over the integers `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Number of distinct classes.
    classes: usize,
}

impl UnionFind {
    /// Create `n` singleton classes.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            classes: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Add a new singleton element, returning its index.
    pub fn push(&mut self) -> usize {
        let idx = self.parent.len();
        self.parent.push(idx as u32);
        self.rank.push(0);
        self.classes += 1;
        idx
    }

    /// Find the representative of `x`'s class, with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Find without mutation (no path compression); used where only a shared
    /// reference is available.
    pub fn find_const(&self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            x = p;
        }
    }

    /// Merge the classes of `a` and `b`. Returns the surviving representative,
    /// or `None` if they were already in the same class.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        self.classes -= 1;
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner as u32;
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        Some(winner)
    }

    /// Are `a` and `b` in the same class?
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_distinct() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_classes(), 4);
        assert!(!uf.same(0, 1));
        assert!(uf.same(2, 2));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.num_classes(), 3);
    }

    #[test]
    fn union_same_class_is_noop() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 0).is_none());
        assert_eq!(uf.num_classes(), 2);
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(2);
        let c = uf.push();
        assert_eq!(c, 2);
        assert_eq!(uf.num_classes(), 3);
        uf.union(0, c);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new(10);
        for i in 0..9 {
            uf.union(i, i + 1);
        }
        for i in 0..10 {
            let via_mut = uf.clone().find(i);
            assert_eq!(uf.find_const(i), via_mut);
        }
    }

    #[test]
    fn large_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.num_classes(), 1);
        let rep = uf.find(0);
        assert_eq!(uf.find(n - 1), rep);
    }
}
