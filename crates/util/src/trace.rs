//! Cached diagnostic-trace flag.
//!
//! Tracing is controlled by the `JAHOB_TRACE` environment variable. The
//! lookup used to be `std::env::var("JAHOB_TRACE").is_ok()` at every call
//! site — an environment-map scan (with allocation on hit) on hot dispatch
//! paths. The flag cannot change meaningfully mid-run, so it is read once
//! and cached in a `OnceLock`.

use std::sync::OnceLock;

/// Is `JAHOB_TRACE` set? First call reads the environment; later calls are
/// a single atomic load.
pub fn trace_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("JAHOB_TRACE").is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        // Whatever the first answer is, it must never change.
        let first = trace_enabled();
        for _ in 0..1000 {
            assert_eq!(trace_enabled(), first);
        }
    }
}
