//! Structured observability: a typed, thread-safe event pipeline for the
//! verification hot path.
//!
//! The portfolio dispatcher used to narrate itself through scattered
//! `eprintln!`s gated on `JAHOB_TRACE`. That tells a human *something*,
//! but nothing can consume it: no per-prover timing, no fuel accounting,
//! no way to diff two runs. This module replaces those sites with typed
//! [`Event`]s emitted through a pluggable [`Sink`].
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** A [`Recorder`] is an `Option<Arc<..>>`;
//!    the disabled check is a single pointer test (cheaper than the one
//!    relaxed atomic load `trace_enabled()` pays) and event payloads are
//!    built inside a closure that never runs when disabled.
//! 2. **Deterministic streams.** The verification pipeline buffers events
//!    per method and assembles them in submission order — (method index,
//!    obligation index, attempt) — so the stream is bit-for-bit identical
//!    at any worker count. The one schedule-dependent signal, *which*
//!    worker physically computed a shared cache entry first, is rewritten
//!    by [`canonicalize`] so hit/miss attribution follows stream order
//!    instead of wall-clock order.
//! 3. **No new dependencies.** Serialization is the hand-rolled writer in
//!    [`crate::json`].
//!
//! Two recording modes cover the two consumers:
//!
//! * [`Recorder::buffered`] accumulates events in memory; the pipeline
//!   drains per-method buffers and emits them in canonical order. This is
//!   the only mode with an ordering guarantee.
//! * [`Recorder::streaming`] forwards each event to a sink immediately —
//!   real-time narration for a standalone dispatcher under `JAHOB_TRACE`,
//!   at the price of scheduler-dependent interleaving across threads.

use crate::json::Obj;
use std::cell::RefCell;
use std::io::Write as _;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// One observation. Variants mirror the span structure of a run:
/// `RunStart`/`RunEnd` bracket everything, `MethodStart`/`MethodEnd`
/// bracket one method, `ObligationStart`/`ObligationEnd` one proof
/// obligation, `PieceStart`/`PieceEnd` one conjunct piece; the remaining
/// variants are point events inside those spans.
///
/// Fields named `micros` — and `workers` on [`Event::RunStart`] — are
/// **unstable**: wall-clock measurements and machine configuration that
/// legitimately differ run to run. [`Event::to_json`] omits them unless
/// asked, so the deterministic serialization of a stream is
/// byte-comparable across runs *and across worker counts*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A verification run over a whole program begins.
    RunStart { methods: u64, workers: u64 },
    /// A verification run completed with this verdict tally.
    RunEnd {
        proved: u64,
        refuted: u64,
        unknown: u64,
        micros: u64,
    },
    /// Work on one method begins. `index` is the method's position in
    /// source order, which is also its position in the report.
    MethodStart { index: u64, name: String },
    /// Work on one method finished (`error` carries a pipeline failure —
    /// parse/VC-gen panic — when the method never reached the provers).
    MethodEnd {
        index: u64,
        error: Option<String>,
        micros: u64,
    },
    /// One proof obligation begins. `index` is its position within the
    /// method; `size` the node count of the formula.
    ObligationStart {
        index: u64,
        label: String,
        size: u64,
    },
    /// The obligation's final verdict, rendered as in the report.
    ObligationEnd {
        index: u64,
        verdict: String,
        micros: u64,
    },
    /// One conjunct piece of an obligation enters the portfolio.
    /// `fingerprint` is the 128-bit cache key when it was computed
    /// (cache enabled or observability on), `None` otherwise.
    PieceStart {
        fingerprint: Option<u128>,
        size: u64,
    },
    /// The piece left the portfolio with this verdict.
    PieceEnd { verdict: &'static str },
    /// Goal-cache consultation for a piece. On a hit, `saved_fuel` is the
    /// fuel the cached proof originally burned.
    CacheLookup {
        fingerprint: u128,
        hit: bool,
        saved_fuel: u64,
    },
    /// The watchdog failed to re-confirm a cached proof; entry evicted.
    CacheEvict { fingerprint: u128 },
    /// One governed prover attempt. `pass` is `first`, `retry`, or
    /// `confirm`; `outcome` is `proved`, `refuted`, `no-decision`, or a
    /// failure-taxonomy name; `fuel` is what the attempt burned.
    Attempt {
        prover: &'static str,
        pass: &'static str,
        outcome: String,
        fuel: u64,
        micros: u64,
    },
    /// A circuit breaker changed state (or skipped an attempt while open).
    Breaker {
        prover: &'static str,
        transition: &'static str,
    },
    /// First pass failed on governance; the retry pass got the remaining
    /// obligation budget (`fuel`).
    RetryEscalated { fuel: u64 },
    /// The escalated retry turned a governed failure into a verdict.
    RetryRecovered,
    /// The fault plan injected a fault at this boundary.
    ChaosInjected { site: String, fault: String },
    /// The seeded liar produced a wrong verdict that chaos suppressed.
    ChaosLied { prover: &'static str },
    /// Soundness watchdog activity: `checked`, `confirmed`,
    /// `unconfirmed`, or `disagreement`.
    Watchdog { outcome: &'static str },
    /// The persistent proof store was opened: `entries` records survived
    /// recovery across `segments` segments; `lock` is the advisory-lock
    /// outcome (`acquired`, `took-over-stale`, `read-only`).
    StoreOpen {
        entries: u64,
        segments: u64,
        lock: &'static str,
    },
    /// Surviving store records were replayed into the goal cache.
    StoreLoad { entries: u64 },
    /// A write-behind flush persisted `records` records as one new
    /// segment of `bytes` bytes.
    StoreFlush { records: u64, bytes: u64 },
    /// Recovery dropped torn/corrupt tail records, or reset the store
    /// outright (`reset` names why: digest change, format bump, missing
    /// manifest). Corruption degrades to a cold cache, so this event is
    /// diagnostic, never an error.
    StoreRecovered { dropped: u64, reset: Option<String> },
    /// Unreadable segments were quarantined to `*.corrupt` and skipped.
    StoreQuarantined { segments: u64 },
    /// Advisory-lock outcome on store open (`acquired`,
    /// `took-over-stale`, `read-only`).
    StoreLock { state: &'static str },
    /// A store IO operation (`open`, `flush`) failed; persistence
    /// degrades — the verification run itself is unaffected.
    StoreError { op: &'static str, error: String },
    /// A supervised worker lane spawned its first child process.
    SupervisorSpawn { lane: String },
    /// A lane replaced a dead child with a fresh one.
    SupervisorRestart { lane: String },
    /// The parent SIGKILLed a worker that overran its hard deadline
    /// (`reason` is `timeout`); the attempt records a `Timeout` failure.
    SupervisorKill {
        lane: &'static str,
        reason: &'static str,
    },
    /// A worker child died (or broke protocol) mid-attempt. `oom` marks
    /// deaths attributed to the memory ceiling, which surface as
    /// `resource-exceeded` instead of being retried in-process.
    SupervisorCrash { lane: &'static str, oom: bool },
    /// The attempt re-ran on the in-process path after a lane failure.
    SupervisorFallback { lane: &'static str },
    /// Crash-loop detection quarantined the lane after `crashes` failures
    /// inside the window; later attempts degrade to the in-process path.
    SupervisorQuarantined { lane: String, crashes: u64 },
    /// A worker's heartbeat went late (suspect state) without the hard
    /// deadline having expired yet.
    SupervisorHeartbeat { lane: String },
    /// A speculative race fanned `provers` prover attempts out
    /// concurrently for one obligation piece. Schedule-dependent: whether
    /// a race engages at all depends on breaker state and budget shape,
    /// and its payload is physical, so it stays out of canonical streams.
    RaceStart { provers: u64 },
    /// The first racer to decide (physically — the canonical winner is
    /// whatever the committed attempt stream says).
    RaceWin { prover: &'static str },
    /// A racer was cancelled — cooperatively via a revoked budget, by the
    /// supervisor's SIGKILL backstop, or spuriously by the race-cancel
    /// chaos knob.
    RaceCancelled { prover: &'static str },
    /// A cancelled racer's attempt was re-run inline because the
    /// canonical commit walk still needed its outcome (cancellation must
    /// never change what gets committed).
    RaceRerun { prover: &'static str },
    /// The relevance slicer dropped hypotheses outside the goal's symbol
    /// cone before dispatching a piece: the narrowest rung kept `kept` of
    /// `kept + dropped` hypotheses. Content-determined (the cone depends
    /// only on the formula), so it is canonical — bit-stable across
    /// worker counts, racing, and process isolation.
    SliceApplied { kept: u64, dropped: u64 },
    /// A sliced rung ended `Unknown` (or its counter-model was spurious),
    /// so the ladder widened the cone: the next dispatch is rung `rung`
    /// (1-based) carrying `kept` hypotheses.
    SliceWidened { rung: u64, kept: u64 },
    /// A counter-model found on sliced rung `rung` did not survive
    /// re-confirmation against the full sequent: it may depend on a
    /// dropped hypothesis being false, so it widens instead of refuting.
    SliceSpurious { rung: u64 },
    /// Adaptive-ordering statistics were loaded (`entries` distinct
    /// (goal-class, prover) records survived).
    AdaptiveLoad { entries: u64 },
    /// Adaptive-ordering statistics were flushed to the stats segment.
    AdaptiveFlush { entries: u64 },
    /// The verification daemon bound its socket and began accepting.
    ServiceStart { socket: String },
    /// The daemon accepted a client connection.
    ServiceAccept { client: u64 },
    /// A request was admitted to the daemon's queue (`queued` is the
    /// queue depth after admission).
    ServiceSubmit { client: u64, queued: u64 },
    /// Admission refused — queue full or draining; the client got a
    /// BUSY reply, never a silent drop.
    ServiceBusy { client: u64, queued: u64 },
    /// An admitted request finished (`outcome` is `verified` or
    /// `error`). An accepted request always reaches this event, even if
    /// its client is gone by the time the verdict lands.
    ServiceDone { client: u64, outcome: &'static str },
    /// A client connection ended: clean EOF, an injected socket fault,
    /// or a protocol violation. Never affects admitted requests.
    ServiceDisconnect { client: u64 },
    /// Graceful drain began with `queued` admitted requests left to
    /// finish.
    ServiceDrain { queued: u64 },
    /// The JSONL sink hit a write/flush error: the stream past this
    /// point is incomplete. Emitted at most once per sink, best-effort
    /// onto the failing stream itself, and always echoed to stderr.
    SinkError { error: String },
    /// Free-form narration with no structured payload.
    Note { text: String },
}

impl Event {
    /// The `type` tag used in JSONL serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run.start",
            Event::RunEnd { .. } => "run.end",
            Event::MethodStart { .. } => "method.start",
            Event::MethodEnd { .. } => "method.end",
            Event::ObligationStart { .. } => "obligation.start",
            Event::ObligationEnd { .. } => "obligation.end",
            Event::PieceStart { .. } => "piece.start",
            Event::PieceEnd { .. } => "piece.end",
            Event::CacheLookup { .. } => "cache.lookup",
            Event::CacheEvict { .. } => "cache.evict",
            Event::Attempt { .. } => "attempt",
            Event::Breaker { .. } => "breaker",
            Event::RetryEscalated { .. } => "retry.escalated",
            Event::RetryRecovered => "retry.recovered",
            Event::ChaosInjected { .. } => "chaos.injected",
            Event::ChaosLied { .. } => "chaos.lied",
            Event::Watchdog { .. } => "watchdog",
            Event::StoreOpen { .. } => "store.open",
            Event::StoreLoad { .. } => "store.load",
            Event::StoreFlush { .. } => "store.flush",
            Event::StoreRecovered { .. } => "store.recovered",
            Event::StoreQuarantined { .. } => "store.quarantined",
            Event::StoreLock { .. } => "store.lock",
            Event::StoreError { .. } => "store.error",
            Event::SupervisorSpawn { .. } => "supervisor.spawn",
            Event::SupervisorRestart { .. } => "supervisor.restart",
            Event::SupervisorKill { .. } => "supervisor.kill",
            Event::SupervisorCrash { .. } => "supervisor.crash",
            Event::SupervisorFallback { .. } => "supervisor.fallback",
            Event::SupervisorQuarantined { .. } => "supervisor.quarantined",
            Event::SupervisorHeartbeat { .. } => "supervisor.heartbeat",
            Event::RaceStart { .. } => "race.start",
            Event::RaceWin { .. } => "race.win",
            Event::RaceCancelled { .. } => "race.cancelled",
            Event::RaceRerun { .. } => "race.rerun",
            Event::SliceApplied { .. } => "slice.applied",
            Event::SliceWidened { .. } => "slice.widened",
            Event::SliceSpurious { .. } => "slice.spurious",
            Event::AdaptiveLoad { .. } => "adaptive.load",
            Event::AdaptiveFlush { .. } => "adaptive.flush",
            Event::ServiceStart { .. } => "service.start",
            Event::ServiceAccept { .. } => "service.accept",
            Event::ServiceSubmit { .. } => "service.submit",
            Event::ServiceBusy { .. } => "service.busy",
            Event::ServiceDone { .. } => "service.done",
            Event::ServiceDisconnect { .. } => "service.disconnect",
            Event::ServiceDrain { .. } => "service.drain",
            Event::SinkError { .. } => "sink.error",
            Event::Note { .. } => "note",
        }
    }

    /// True for events whose *presence* in the stream depends on thread
    /// and process scheduling, not on the verification semantics: the
    /// supervisor's lane-lifecycle events and the daemon's `service.*`
    /// connection-lifecycle events, which go straight to the sink
    /// from the monitor threads. Deterministic stream comparisons
    /// (goldens, worker-count identity) must filter these out, the same
    /// way `to_json(false)` strips wall-clock fields; everything else is
    /// ordered by the per-method recorder and is bit-stable.
    pub fn is_schedule_dependent(&self) -> bool {
        matches!(
            self,
            Event::SupervisorSpawn { .. }
                | Event::SupervisorRestart { .. }
                | Event::SupervisorQuarantined { .. }
                | Event::SupervisorHeartbeat { .. }
                | Event::RaceStart { .. }
                | Event::RaceWin { .. }
                | Event::RaceCancelled { .. }
                | Event::RaceRerun { .. }
                | Event::AdaptiveLoad { .. }
                | Event::AdaptiveFlush { .. }
                | Event::ServiceStart { .. }
                | Event::ServiceAccept { .. }
                | Event::ServiceSubmit { .. }
                | Event::ServiceBusy { .. }
                | Event::ServiceDone { .. }
                | Event::ServiceDisconnect { .. }
                | Event::ServiceDrain { .. }
        )
    }

    /// Serialize as one JSON object (one JSONL line, without the newline).
    ///
    /// With `include_unstable = false`, wall-clock fields (`micros`) are
    /// omitted entirely, making the serialization of a deterministic
    /// stream byte-comparable across runs and worker counts.
    pub fn to_json(&self, include_unstable: bool) -> String {
        let o = Obj::new().str("type", self.kind());
        let o = match self {
            Event::RunStart { methods, workers } => {
                let o = o.u64("methods", *methods);
                if include_unstable {
                    o.u64("workers", *workers)
                } else {
                    o
                }
            }
            Event::RunEnd {
                proved,
                refuted,
                unknown,
                micros,
            } => {
                let o = o
                    .u64("proved", *proved)
                    .u64("refuted", *refuted)
                    .u64("unknown", *unknown);
                if include_unstable {
                    o.u64("micros", *micros)
                } else {
                    o
                }
            }
            Event::MethodStart { index, name } => o.u64("index", *index).str("name", name),
            Event::MethodEnd {
                index,
                error,
                micros,
            } => {
                let o = o.u64("index", *index).opt_str("error", error.as_deref());
                if include_unstable {
                    o.u64("micros", *micros)
                } else {
                    o
                }
            }
            Event::ObligationStart { index, label, size } => o
                .u64("index", *index)
                .str("label", label)
                .u64("size", *size),
            Event::ObligationEnd {
                index,
                verdict,
                micros,
            } => {
                let o = o.u64("index", *index).str("verdict", verdict);
                if include_unstable {
                    o.u64("micros", *micros)
                } else {
                    o
                }
            }
            Event::PieceStart { fingerprint, size } => {
                let o = match fingerprint {
                    Some(fp) => o.u128("fingerprint", *fp),
                    None => o.raw("fingerprint", "null"),
                };
                o.u64("size", *size)
            }
            Event::PieceEnd { verdict } => o.str("verdict", verdict),
            Event::CacheLookup {
                fingerprint,
                hit,
                saved_fuel,
            } => o
                .u128("fingerprint", *fingerprint)
                .bool("hit", *hit)
                .u64("saved_fuel", *saved_fuel),
            Event::CacheEvict { fingerprint } => o.u128("fingerprint", *fingerprint),
            Event::Attempt {
                prover,
                pass,
                outcome,
                fuel,
                micros,
            } => {
                let o = o
                    .str("prover", prover)
                    .str("pass", pass)
                    .str("outcome", outcome)
                    .u64("fuel", *fuel);
                if include_unstable {
                    o.u64("micros", *micros)
                } else {
                    o
                }
            }
            Event::Breaker { prover, transition } => {
                o.str("prover", prover).str("transition", transition)
            }
            Event::RetryEscalated { fuel } => o.u64("fuel", *fuel),
            Event::RetryRecovered => o,
            Event::ChaosInjected { site, fault } => o.str("site", site).str("fault", fault),
            Event::ChaosLied { prover } => o.str("prover", prover),
            Event::Watchdog { outcome } => o.str("outcome", outcome),
            Event::StoreOpen {
                entries,
                segments,
                lock,
            } => o
                .u64("entries", *entries)
                .u64("segments", *segments)
                .str("lock", lock),
            Event::StoreLoad { entries } => o.u64("entries", *entries),
            Event::StoreFlush { records, bytes } => o.u64("records", *records).u64("bytes", *bytes),
            Event::StoreRecovered { dropped, reset } => o
                .u64("dropped", *dropped)
                .opt_str("reset", reset.as_deref()),
            Event::StoreQuarantined { segments } => o.u64("segments", *segments),
            Event::StoreLock { state } => o.str("state", state),
            Event::StoreError { op, error } => o.str("op", op).str("error", error),
            Event::SupervisorSpawn { lane } => o.str("lane", lane),
            Event::SupervisorRestart { lane } => o.str("lane", lane),
            Event::SupervisorKill { lane, reason } => o.str("lane", lane).str("reason", reason),
            Event::SupervisorCrash { lane, oom } => o.str("lane", lane).bool("oom", *oom),
            Event::SupervisorFallback { lane } => o.str("lane", lane),
            Event::SupervisorQuarantined { lane, crashes } => {
                o.str("lane", lane).u64("crashes", *crashes)
            }
            Event::SupervisorHeartbeat { lane } => o.str("lane", lane),
            Event::RaceStart { provers } => o.u64("provers", *provers),
            Event::RaceWin { prover } => o.str("prover", prover),
            Event::RaceCancelled { prover } => o.str("prover", prover),
            Event::RaceRerun { prover } => o.str("prover", prover),
            Event::SliceApplied { kept, dropped } => o.u64("kept", *kept).u64("dropped", *dropped),
            Event::SliceWidened { rung, kept } => o.u64("rung", *rung).u64("kept", *kept),
            Event::SliceSpurious { rung } => o.u64("rung", *rung),
            Event::AdaptiveLoad { entries } => o.u64("entries", *entries),
            Event::AdaptiveFlush { entries } => o.u64("entries", *entries),
            Event::ServiceStart { socket } => o.str("socket", socket),
            Event::ServiceAccept { client } => o.u64("client", *client),
            Event::ServiceSubmit { client, queued } => {
                o.u64("client", *client).u64("queued", *queued)
            }
            Event::ServiceBusy { client, queued } => {
                o.u64("client", *client).u64("queued", *queued)
            }
            Event::ServiceDone { client, outcome } => {
                o.u64("client", *client).str("outcome", outcome)
            }
            Event::ServiceDisconnect { client } => o.u64("client", *client),
            Event::ServiceDrain { queued } => o.u64("queued", *queued),
            Event::SinkError { error } => o.str("error", error),
            Event::Note { text } => o.str("text", text),
        };
        o.finish()
    }

    /// The stats-counter increments this event implies, reported through
    /// `bump(name, delta)`. This is the *single* mapping between the event
    /// taxonomy and the legacy `group.key` counter names: the dispatcher
    /// derives its counters from the events it emits through this method,
    /// so the event stream and the stats table cannot drift apart, and
    /// [`event_tallies`] rebuilds the same counters from a captured stream
    /// for agreement checks.
    ///
    /// Events with no counter (span starts/ends, notes) report nothing.
    /// `ChaosInjected` only counts for dispatcher-level sites
    /// (`dispatch.*`): faults injected at prover-crate boundaries surface
    /// as the failure the fault provokes, exactly as before observability.
    pub fn stat_increments(&self, mut bump: impl FnMut(&str, u64)) {
        match self {
            Event::CacheLookup {
                hit: true,
                saved_fuel,
                ..
            } => {
                bump("cache.hit", 1);
                bump("cache.saved.fuel", *saved_fuel);
            }
            Event::CacheLookup { hit: false, .. } => bump("cache.miss", 1),
            Event::CacheEvict { .. } => bump("cache.evicted", 1),
            Event::Breaker { prover, transition } => {
                bump(&format!("breaker.{prover}.{transition}"), 1)
            }
            Event::RetryEscalated { .. } => bump("retry.escalated", 1),
            Event::RetryRecovered => bump("retry.recovered", 1),
            Event::ChaosInjected { site, fault } if site.starts_with("dispatch.") => {
                bump(&format!("chaos.injected.{fault}"), 1);
            }
            Event::ChaosLied { prover } => bump(&format!("chaos.lied.{prover}"), 1),
            Event::Watchdog { outcome } => bump(&format!("watchdog.{outcome}"), 1),
            // Store counters carry a `store.` prefix on purpose: the
            // verify pipeline marks that whole group unstable, since the
            // counts depend on what was on disk before the run.
            Event::StoreOpen { .. } => bump("store.open", 1),
            Event::StoreLoad { entries } => {
                bump("store.load", 1);
                bump("store.load.entries", *entries);
            }
            Event::StoreFlush { records, bytes } => {
                bump("store.flush", 1);
                bump("store.flush.records", *records);
                bump("store.flush.bytes", *bytes);
            }
            Event::StoreRecovered { dropped, .. } => {
                bump("store.recovered", 1);
                bump("store.recovered.dropped", *dropped);
            }
            Event::StoreQuarantined { segments } => bump("store.quarantined", *segments),
            Event::StoreLock { state } => bump(&format!("store.lock.{state}"), 1),
            Event::StoreError { .. } => bump("store.error", 1),
            // Supervisor counters carry the `supervisor.` prefix on
            // purpose: the verify pipeline marks the group unstable
            // (spawn/restart timing races across pool workers).
            Event::SupervisorSpawn { .. } => bump("supervisor.spawn", 1),
            Event::SupervisorRestart { .. } => bump("supervisor.restart", 1),
            Event::SupervisorKill { .. } => bump("supervisor.kill", 1),
            Event::SupervisorCrash { oom, .. } => {
                bump("supervisor.crash", 1);
                if *oom {
                    bump("supervisor.crash.oom", 1);
                }
            }
            Event::SupervisorFallback { .. } => bump("supervisor.fallback", 1),
            Event::SupervisorQuarantined { .. } => bump("supervisor.quarantined", 1),
            Event::SupervisorHeartbeat { .. } => bump("supervisor.heartbeat.late", 1),
            // Race/adaptive counters carry their prefixes on purpose: the
            // verify pipeline marks both groups unstable (whether a race
            // engages, who physically wins, and how many losers get far
            // enough to cancel are all scheduling artifacts).
            Event::RaceStart { provers } => {
                bump("race.start", 1);
                bump("race.provers", *provers);
            }
            Event::RaceWin { prover } => bump(&format!("race.win.{prover}"), 1),
            Event::RaceCancelled { .. } => bump("race.cancelled", 1),
            Event::RaceRerun { .. } => bump("race.rerun", 1),
            // Slice counters are *stable*: the cone and the ladder are
            // functions of the formula alone, so the counts are identical
            // at any worker count, racing on or off, cold or warm.
            Event::SliceApplied { dropped, .. } => {
                bump("slice.applied", 1);
                bump("slice.dropped", *dropped);
            }
            Event::SliceWidened { .. } => bump("slice.widened", 1),
            Event::SliceSpurious { .. } => bump("slice.spurious", 1),
            Event::AdaptiveLoad { entries } => {
                bump("adaptive.load", 1);
                bump("adaptive.load.entries", *entries);
            }
            Event::AdaptiveFlush { entries } => {
                bump("adaptive.flush", 1);
                bump("adaptive.flush.entries", *entries);
            }
            // Service counters carry the `service.` prefix on purpose:
            // they count connection-lifecycle traffic, which is daemon
            // state, not verification semantics — they never enter a
            // `VerifyReport`'s stable stats.
            Event::ServiceStart { .. } => bump("service.start", 1),
            Event::ServiceAccept { .. } => bump("service.accept", 1),
            Event::ServiceSubmit { .. } => bump("service.submit", 1),
            Event::ServiceBusy { .. } => bump("service.busy", 1),
            Event::ServiceDone { outcome, .. } => bump(&format!("service.done.{outcome}"), 1),
            Event::ServiceDisconnect { .. } => bump("service.disconnect", 1),
            Event::ServiceDrain { .. } => bump("service.drain", 1),
            Event::SinkError { .. } => bump("sink.error", 1),
            Event::Attempt {
                prover, outcome, ..
            } => {
                // Only governance failures are counted at the attempt
                // level; successes keep their historical `proved.*` /
                // `refuted.*` names, bumped where the verdict is made.
                if matches!(
                    outcome.as_str(),
                    "fuel-exhausted" | "timeout" | "panicked" | "resource-exceeded"
                ) {
                    bump(&format!("failure.{prover}.{outcome}"), 1);
                }
            }
            _ => {}
        }
    }

    /// Render for a human reading stderr. Indentation mirrors the span
    /// nesting so a trace reads like an outline.
    pub fn human(&self) -> String {
        match self {
            Event::RunStart { methods, workers } => {
                format!("run start: {methods} methods, {workers} workers")
            }
            Event::RunEnd {
                proved,
                refuted,
                unknown,
                micros,
            } => format!(
                "run end: {proved} proved, {refuted} refuted, {unknown} unknown ({micros}µs)"
            ),
            Event::MethodStart { name, .. } => format!("method {name}"),
            Event::MethodEnd {
                error: Some(e),
                micros,
                ..
            } => format!("method failed: {e} ({micros}µs)"),
            Event::MethodEnd {
                error: None,
                micros,
                ..
            } => format!("method done ({micros}µs)"),
            Event::ObligationStart { label, size, .. } => {
                format!("  obligation {label} (size {size})")
            }
            Event::ObligationEnd {
                verdict, micros, ..
            } => {
                format!("  => {verdict} ({micros}µs)")
            }
            Event::PieceStart {
                fingerprint: Some(fp),
                size,
            } => format!("    piece {fp:032x} (size {size})"),
            Event::PieceStart {
                fingerprint: None,
                size,
            } => format!("    piece (size {size})"),
            Event::PieceEnd { verdict } => format!("    piece => {verdict}"),
            Event::CacheLookup {
                hit, saved_fuel, ..
            } => {
                if *hit {
                    format!("      cache hit (saved fuel {saved_fuel})")
                } else {
                    "      cache miss".to_owned()
                }
            }
            Event::CacheEvict { fingerprint } => {
                format!("      cache evict {fingerprint:032x}")
            }
            Event::Attempt {
                prover,
                pass,
                outcome,
                fuel,
                micros,
            } => format!("      {prover} [{pass}]: {outcome} (fuel {fuel}, {micros}µs)"),
            Event::Breaker { prover, transition } => {
                format!("      breaker {prover}: {transition}")
            }
            Event::RetryEscalated { fuel } => format!("      retry escalated (fuel {fuel})"),
            Event::RetryRecovered => "      retry recovered".to_owned(),
            Event::ChaosInjected { site, fault } => {
                format!("      chaos {fault} @ {site}")
            }
            Event::ChaosLied { prover } => format!("      chaos liar: {prover}"),
            Event::Watchdog { outcome } => format!("      watchdog {outcome}"),
            Event::StoreOpen {
                entries,
                segments,
                lock,
            } => format!("store open: {entries} entries from {segments} segments ({lock})"),
            Event::StoreLoad { entries } => format!("store load: {entries} entries into cache"),
            Event::StoreFlush { records, bytes } => {
                format!("store flush: {records} records ({bytes} bytes)")
            }
            Event::StoreRecovered {
                dropped,
                reset: Some(why),
            } => format!("store reset ({why}), {dropped} records dropped"),
            Event::StoreRecovered {
                dropped,
                reset: None,
            } => format!("store recovered: {dropped} torn records dropped"),
            Event::StoreQuarantined { segments } => {
                format!("store quarantined {segments} segment(s)")
            }
            Event::StoreLock { state } => format!("store lock: {state}"),
            Event::StoreError { op, error } => format!("store {op} failed: {error}"),
            Event::SupervisorSpawn { lane } => format!("supervisor spawn: {lane}"),
            Event::SupervisorRestart { lane } => format!("supervisor restart: {lane}"),
            Event::SupervisorKill { lane, reason } => {
                format!("      supervisor killed {lane} ({reason})")
            }
            Event::SupervisorCrash { lane, oom: true } => {
                format!("      supervisor: {lane} hit its memory ceiling")
            }
            Event::SupervisorCrash { lane, oom: false } => {
                format!("      supervisor: {lane} worker crashed")
            }
            Event::SupervisorFallback { lane } => {
                format!("      supervisor: {lane} fell back in-process")
            }
            Event::SupervisorQuarantined { lane, crashes } => {
                format!("supervisor quarantined {lane} after {crashes} crashes")
            }
            Event::SupervisorHeartbeat { lane } => {
                format!("supervisor: {lane} heartbeat late")
            }
            Event::RaceStart { provers } => format!("      race: {provers} provers fan out"),
            Event::RaceWin { prover } => format!("      race: {prover} decided first"),
            Event::RaceCancelled { prover } => format!("      race: {prover} cancelled"),
            Event::RaceRerun { prover } => format!("      race: {prover} re-run inline"),
            Event::SliceApplied { kept, dropped } => {
                format!("      slice: kept {kept}/{} hypotheses", kept + dropped)
            }
            Event::SliceWidened { rung, kept } => {
                format!("      slice: widened to rung {rung} ({kept} hypotheses)")
            }
            Event::SliceSpurious { rung } => {
                format!("      slice: rung {rung} counter-model spurious; widening")
            }
            Event::AdaptiveLoad { entries } => format!("adaptive stats: {entries} entries loaded"),
            Event::AdaptiveFlush { entries } => {
                format!("adaptive stats: {entries} entries flushed")
            }
            Event::ServiceStart { socket } => format!("service listening on {socket}"),
            Event::ServiceAccept { client } => format!("service: client {client} connected"),
            Event::ServiceSubmit { client, queued } => {
                format!("service: client {client} admitted (queue {queued})")
            }
            Event::ServiceBusy { client, queued } => {
                format!("service: client {client} shed busy (queue {queued})")
            }
            Event::ServiceDone { client, outcome } => {
                format!("service: client {client} request {outcome}")
            }
            Event::ServiceDisconnect { client } => {
                format!("service: client {client} disconnected")
            }
            Event::ServiceDrain { queued } => {
                format!("service drain: {queued} admitted request(s) to finish")
            }
            Event::SinkError { error } => format!("sink error: {error}"),
            Event::Note { text } => text.clone(),
        }
    }
}

/// Where events go. Implementations must be cheap to call from worker
/// threads; the pipeline serializes emission, a streaming [`Recorder`]
/// does not.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event);
    /// Called once at the end of a run; file-backed sinks flush here.
    fn flush(&self) {}
}

/// Human-readable narration on stderr (the `JAHOB_TRACE=1` replacement).
#[derive(Debug, Default)]
pub struct StderrSink;

impl StderrSink {
    pub fn new() -> StderrSink {
        StderrSink
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        eprintln!("[obs] {}", event.human());
    }
}

/// One JSON object per line to any writer (usually a file).
///
/// Telemetry must never take down verification, but it must not lie by
/// omission either: the first write or flush failure is reported once —
/// best-effort as a terminal [`Event::SinkError`] line on the stream
/// itself (the error may be transient or buffered-only) and always as a
/// diagnosed line on stderr. The sink also flushes on drop, so a session
/// torn down without an explicit end-of-run flush (early return, panic
/// unwind) does not lose its buffered tail.
pub struct JsonlSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
    include_unstable: bool,
    failed: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Create (truncate) `path` and write JSONL there, timing included.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(std::io::BufWriter::new(
            file,
        ))))
    }

    pub fn to_writer(out: Box<dyn std::io::Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
            include_unstable: true,
            failed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Omit unstable (wall-clock) fields, for byte-comparable output.
    pub fn deterministic(mut self) -> JsonlSink {
        self.include_unstable = false;
        self
    }

    /// Has this sink reported a write/flush failure? The stream on disk
    /// is incomplete when so.
    pub fn failed(&self) -> bool {
        self.failed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Report the first IO failure: one `sink.error` line onto the
    /// stream (best effort) plus an unmissable stderr line. Subsequent
    /// failures are silent — one diagnosis per sink is signal, a line
    /// per lost event is noise.
    fn report_failure(&self, out: &mut dyn std::io::Write, what: &str, error: &std::io::Error) {
        if self.failed.swap(true, std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let terminal = Event::SinkError {
            error: format!("{what}: {error}"),
        };
        let _ = writeln!(out, "{}", terminal.to_json(self.include_unstable));
        let _ = out.flush();
        eprintln!("[obs] JSONL sink {what}: {error}; stream is incomplete");
    }

    /// Lock the writer, recovering from poisoning: a panicking emitter
    /// must not cascade into aborts when the sink drops mid-unwind.
    fn writer(&self) -> std::sync::MutexGuard<'_, Box<dyn std::io::Write + Send>> {
        self.out.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json(self.include_unstable);
        let mut out = self.writer();
        if let Err(e) = writeln!(out, "{line}") {
            self.report_failure(&mut **out, "write failed", &e);
        }
    }

    fn flush(&self) {
        let mut out = self.writer();
        if let Err(e) = out.flush() {
            self.report_failure(&mut **out, "flush failed", &e);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Collects events in memory; the test-suite sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Serialize the collected stream, one JSON line per event, omitting
    /// unstable fields — the byte-comparable form used by the
    /// determinism tests and golden files.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events.lock().unwrap().iter() {
            out.push_str(&ev.to_json(false));
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Discards everything; exists so benches can measure pure event
/// construction/dispatch cost.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
}

enum Mode {
    /// Accumulate; the owner drains and orders. Deterministic.
    Buffer(Mutex<Vec<Event>>),
    /// Forward immediately. Real-time, but interleaving is scheduler-
    /// dependent when multiple threads share the recorder.
    Stream(Arc<dyn Sink>),
}

/// The handle the hot path holds. Cloning shares the underlying buffer
/// or sink. A disabled recorder is `None` inside: the enabled check is a
/// single pointer test and the event-building closure never runs.
#[derive(Clone, Default)]
pub struct Recorder {
    mode: Option<Arc<Mode>>,
}

impl Recorder {
    /// The do-nothing recorder; every `record_with` is one branch.
    pub fn disabled() -> Recorder {
        Recorder { mode: None }
    }

    /// Accumulate events in memory for ordered emission by the owner.
    pub fn buffered() -> Recorder {
        Recorder {
            mode: Some(Arc::new(Mode::Buffer(Mutex::new(Vec::new())))),
        }
    }

    /// Forward each event to `sink` the moment it is recorded.
    pub fn streaming(sink: Arc<dyn Sink>) -> Recorder {
        Recorder {
            mode: Some(Arc::new(Mode::Stream(sink))),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.is_some()
    }

    /// Record the event produced by `make` — which is not called at all
    /// when the recorder is disabled, so call sites pay no formatting or
    /// allocation cost on the fast path.
    #[inline]
    pub fn record_with(&self, make: impl FnOnce() -> Event) {
        if let Some(mode) = &self.mode {
            match &**mode {
                Mode::Buffer(buf) => buf.lock().unwrap().push(make()),
                Mode::Stream(sink) => sink.emit(&make()),
            }
        }
    }

    /// Take everything a buffered recorder accumulated (streaming and
    /// disabled recorders return an empty vec).
    pub fn drain(&self) -> Vec<Event> {
        match self.mode.as_deref() {
            Some(Mode::Buffer(buf)) => std::mem::take(&mut *buf.lock().unwrap()),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.mode.as_deref() {
            None => "disabled",
            Some(Mode::Buffer(_)) => "buffered",
            Some(Mode::Stream(_)) => "streaming",
        };
        f.debug_struct("Recorder").field("mode", &mode).finish()
    }
}

// ---------------------------------------------------------------------------
// Thread-scoped recorder: lets leaf code with no dispatcher reference
// (the chaos boundaries inside prover crates) contribute events to the
// recorder of whatever obligation is running on this thread.
// ---------------------------------------------------------------------------

thread_local! {
    static SCOPED: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previously scoped recorder. Deliberately
/// `!Send`: the guard must drop on the thread that armed it.
pub struct ScopeGuard {
    prev: Option<Recorder>,
    _not_send: PhantomData<*const ()>,
}

/// Arm `recorder` as this thread's scoped recorder until the guard
/// drops. Arming a disabled recorder clears the scope (leaf events from
/// a previous scope must not leak into an unobserved obligation).
pub fn scope(recorder: &Recorder) -> ScopeGuard {
    let next = recorder.enabled().then(|| recorder.clone());
    let prev = SCOPED.with(|s| s.replace(next));
    ScopeGuard {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPED.with(|s| *s.borrow_mut() = self.prev.take());
    }
}

/// Record into the thread's scoped recorder, if one is armed. `make` is
/// never called otherwise. Leaf call sites (chaos boundaries) use this;
/// it is only reached on already-slow paths, so the TLS access is fine.
pub fn record_scoped(make: impl FnOnce() -> Event) {
    SCOPED.with(|s| {
        if let Some(rec) = s.borrow().as_ref() {
            rec.record_with(make);
        }
    });
}

/// Rebuild the stats counters a captured event stream implies, using the
/// same [`Event::stat_increments`] mapping the dispatcher feeds its live
/// counters through. For the event-backed counter groups (`cache.*`,
/// `breaker.*`, `retry.*`, `watchdog.*`, `chaos.*`, `failure.*`) the
/// result agrees with the run report's stats map exactly — the agreement
/// the observability test suite pins.
pub fn event_tallies(events: &[Event]) -> std::collections::BTreeMap<String, u64> {
    let mut tallies = std::collections::BTreeMap::new();
    for ev in events {
        ev.stat_increments(|name, delta| {
            *tallies.entry(name.to_owned()).or_insert(0) += delta;
        });
    }
    tallies
}

// ---------------------------------------------------------------------------
// Canonicalization: schedule-independent cache attribution.
// ---------------------------------------------------------------------------

/// Rewrite a run's event stream so goal-cache attribution is a function
/// of stream position, not scheduling.
///
/// With a shared cache and several workers, *which* method physically
/// computes a shared goal first — and therefore which piece span carries
/// the miss plus the prover attempts, and which carries the hit — depends
/// on the scheduler. Everything else about a piece span is content-
/// determined (same normalized goal ⇒ same dispatch, same chaos
/// decisions, same verdict). So for each fingerprint this pass counts the
/// physical misses `M` among its lookups and reassigns span *contents* in
/// stream order: the first `M` spans get the miss contents (lookup +
/// attempts), the rest get the hit contents. Totals are preserved by
/// construction, so the stats counters — which keep physical tallies and
/// are themselves schedule-independent in aggregate — still agree with
/// the event stream.
///
/// Spans without a cache lookup (cache off, or standing down under
/// seeded chaos) are untouched.
pub fn canonicalize(events: Vec<Event>) -> Vec<Event> {
    // Locate piece spans: (start index, end index exclusive of PieceEnd),
    // plus the fingerprint of the span's cache lookup if it has one.
    // Piece spans never nest, so the next PieceEnd closes the open span.
    struct Span {
        inner_start: usize,
        inner_end: usize,
        lookup: Option<(u128, bool)>,
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut open: Option<usize> = None;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            Event::PieceStart { .. } => open = Some(i),
            Event::PieceEnd { .. } => {
                if let Some(start) = open.take() {
                    let inner = start + 1..i;
                    let lookup = events[inner.clone()].iter().find_map(|e| match e {
                        Event::CacheLookup {
                            fingerprint, hit, ..
                        } => Some((*fingerprint, *hit)),
                        _ => None,
                    });
                    spans.push(Span {
                        inner_start: inner.start,
                        inner_end: inner.end,
                        lookup,
                    });
                }
            }
            _ => {}
        }
    }

    // Group spans by fingerprint, in stream order.
    let mut groups: Vec<(u128, Vec<usize>)> = Vec::new();
    for (si, span) in spans.iter().enumerate() {
        let Some((fp, _)) = span.lookup else { continue };
        match groups.iter_mut().find(|(g, _)| *g == fp) {
            Some((_, members)) => members.push(si),
            None => groups.push((fp, vec![si])),
        }
    }

    // For each group, permute span contents so misses come first.
    let mut replacement: Vec<Option<Vec<Event>>> = (0..spans.len()).map(|_| None).collect();
    for (_, members) in &groups {
        let misses: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&si| matches!(spans[si].lookup, Some((_, false))))
            .collect();
        let hits: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&si| matches!(spans[si].lookup, Some((_, true))))
            .collect();
        if misses.is_empty() || hits.is_empty() {
            continue; // already canonical: uniform contents
        }
        // Canonical order: the first `misses.len()` member spans carry
        // the miss contents, the rest the hit contents.
        let sources: Vec<usize> = misses.into_iter().chain(hits).collect();
        for (&dest, &src) in members.iter().zip(sources.iter()) {
            if dest != src {
                replacement[dest] =
                    Some(events[spans[src].inner_start..spans[src].inner_end].to_vec());
            }
        }
    }

    if replacement.iter().all(|r| r.is_none()) {
        return events;
    }

    // Rebuild the stream with replaced span interiors.
    let mut out = Vec::with_capacity(events.len());
    let mut i = 0;
    let mut next_span = 0;
    while i < events.len() {
        if next_span < spans.len() && i == spans[next_span].inner_start {
            let span = &spans[next_span];
            match replacement[next_span].take() {
                Some(content) => out.extend(content),
                None => out.extend_from_slice(&events[span.inner_start..span.inner_end]),
            }
            i = span.inner_end;
            next_span += 1;
        } else {
            out.push(events[i].clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piece(fp: u128, hit: bool, attempts: usize) -> Vec<Event> {
        let mut v = vec![
            Event::PieceStart {
                fingerprint: Some(fp),
                size: 10,
            },
            Event::CacheLookup {
                fingerprint: fp,
                hit,
                saved_fuel: if hit { 42 } else { 0 },
            },
        ];
        for _ in 0..attempts {
            v.push(Event::Attempt {
                prover: "presburger",
                pass: "first",
                outcome: "proved".into(),
                fuel: 42,
                micros: 0,
            });
        }
        v.push(Event::PieceEnd { verdict: "proved" });
        v
    }

    #[test]
    fn disabled_recorder_never_builds_events() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.record_with(|| panic!("must not be called"));
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn buffered_recorder_accumulates_in_order() {
        let rec = Recorder::buffered();
        rec.record_with(|| Event::Note { text: "a".into() });
        rec.record_with(|| Event::Note { text: "b".into() });
        let evs = rec.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], Event::Note { text: "a".into() });
        assert!(rec.drain().is_empty(), "drain takes");
    }

    #[test]
    fn streaming_recorder_forwards_immediately() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::streaming(sink.clone());
        rec.record_with(|| Event::RetryRecovered);
        assert_eq!(sink.events(), vec![Event::RetryRecovered]);
        assert!(rec.drain().is_empty(), "streaming mode has no buffer");
    }

    #[test]
    fn scoped_recording_is_thread_local_and_restores() {
        let rec = Recorder::buffered();
        {
            let _g = scope(&rec);
            record_scoped(|| Event::Note { text: "in".into() });
            // Another thread sees no scope.
            std::thread::scope(|s| {
                s.spawn(|| record_scoped(|| panic!("not scoped here")));
            });
        }
        record_scoped(|| panic!("scope ended"));
        assert_eq!(rec.drain().len(), 1);
    }

    #[test]
    fn scoping_a_disabled_recorder_clears_the_scope() {
        let outer = Recorder::buffered();
        let _g = scope(&outer);
        {
            let _inner = scope(&Recorder::disabled());
            record_scoped(|| panic!("inner scope is off"));
        }
        record_scoped(|| Event::RetryRecovered);
        assert_eq!(outer.drain().len(), 1, "outer scope restored");
    }

    #[test]
    fn canonicalize_moves_the_miss_to_stream_order() {
        // Physical order: hit first (another worker computed it), miss
        // second. Canonical order: miss first.
        let mut stream = Vec::new();
        stream.push(Event::RunStart {
            methods: 2,
            workers: 8,
        });
        stream.extend(piece(0xabc, true, 0));
        stream.extend(piece(0xabc, false, 2));
        stream.push(Event::RunEnd {
            proved: 2,
            refuted: 0,
            unknown: 0,
            micros: 7,
        });
        let out = canonicalize(stream);
        // First span now carries the miss + its two attempts.
        assert_eq!(
            out[2],
            Event::CacheLookup {
                fingerprint: 0xabc,
                hit: false,
                saved_fuel: 0
            }
        );
        assert!(matches!(out[3], Event::Attempt { .. }));
        // Second span carries the bare hit.
        assert_eq!(
            out[7],
            Event::CacheLookup {
                fingerprint: 0xabc,
                hit: true,
                saved_fuel: 42
            }
        );
        assert_eq!(out.len(), 10);
        // Totals preserved: one hit, one miss.
        let hits = out
            .iter()
            .filter(|e| matches!(e, Event::CacheLookup { hit: true, .. }))
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn canonicalize_is_idempotent_and_schedule_invariant() {
        // Three spans for one fingerprint: any physical placement of the
        // single miss must canonicalize to the same stream.
        let orders = [
            [false, true, true],
            [true, false, true],
            [true, true, false],
        ];
        let mut canon: Option<Vec<Event>> = None;
        for order in orders {
            let mut stream = Vec::new();
            for hit in order {
                stream.extend(piece(0x77, hit, usize::from(!hit)));
            }
            let out = canonicalize(stream);
            let again = canonicalize(out.clone());
            assert_eq!(out, again, "idempotent");
            match &canon {
                None => canon = Some(out),
                Some(want) => assert_eq!(&out, want, "order {order:?}"),
            }
        }
    }

    #[test]
    fn canonicalize_leaves_uniform_and_lookupless_spans_alone() {
        let mut stream = Vec::new();
        stream.extend(piece(0x1, false, 1));
        stream.extend(piece(0x2, false, 1));
        // A span with no cache lookup at all (cache off).
        stream.push(Event::PieceStart {
            fingerprint: None,
            size: 3,
        });
        stream.push(Event::PieceEnd { verdict: "unknown" });
        let out = canonicalize(stream.clone());
        assert_eq!(out, stream);
    }

    #[test]
    fn jsonl_redacts_unstable_fields() {
        let ev = Event::Attempt {
            prover: "smt",
            pass: "retry",
            outcome: "timeout".into(),
            fuel: 9,
            micros: 1234,
        };
        let stable = ev.to_json(false);
        assert!(!stable.contains("micros"), "{stable}");
        let full = ev.to_json(true);
        assert!(full.contains("\"micros\":1234"), "{full}");
        assert_eq!(
            stable,
            r#"{"type":"attempt","prover":"smt","pass":"retry","outcome":"timeout","fuel":9}"#
        );
    }

    #[test]
    fn jsonl_sink_reports_first_write_error_once() {
        // A writer that accepts one full line then fails forever
        // (`writeln!` may split a line across several `write` calls).
        struct Flaky {
            log: Arc<Mutex<Vec<u8>>>,
        }
        impl std::io::Write for Flaky {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                let mut log = self.log.lock().unwrap();
                if log.contains(&b'\n') {
                    return Err(std::io::Error::other("disk gone"));
                }
                log.extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(Flaky { log: log.clone() })).deterministic();
        assert!(!sink.failed());
        sink.emit(&Event::RetryRecovered);
        assert!(!sink.failed());
        sink.emit(&Event::RetryRecovered); // fails → reported once
        sink.emit(&Event::RetryRecovered); // still failing → silent
        assert!(sink.failed());
        let text = String::from_utf8(log.lock().unwrap().clone()).unwrap();
        assert_eq!(text, "{\"type\":\"retry.recovered\"}\n");
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        struct CountFlush(Arc<Mutex<u32>>);
        impl std::io::Write for CountFlush {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                *self.0.lock().unwrap() += 1;
                Ok(())
            }
        }
        let flushes = Arc::new(Mutex::new(0));
        {
            let sink = JsonlSink::to_writer(Box::new(CountFlush(flushes.clone())));
            sink.emit(&Event::RetryRecovered);
        }
        assert!(*flushes.lock().unwrap() >= 1, "drop must flush");
    }

    #[test]
    fn store_events_serialize_and_tally() {
        let ev = Event::StoreOpen {
            entries: 3,
            segments: 2,
            lock: "acquired",
        };
        assert_eq!(
            ev.to_json(false),
            r#"{"type":"store.open","entries":3,"segments":2,"lock":"acquired"}"#
        );
        let stream = vec![
            ev,
            Event::StoreLoad { entries: 3 },
            Event::StoreFlush {
                records: 4,
                bytes: 120,
            },
            Event::StoreRecovered {
                dropped: 1,
                reset: None,
            },
            Event::StoreQuarantined { segments: 2 },
            Event::StoreLock { state: "read-only" },
            Event::StoreError {
                op: "flush",
                error: "no space".into(),
            },
        ];
        let tallies = event_tallies(&stream);
        assert_eq!(tallies["store.open"], 1);
        assert_eq!(tallies["store.load.entries"], 3);
        assert_eq!(tallies["store.flush.records"], 4);
        assert_eq!(tallies["store.recovered.dropped"], 1);
        assert_eq!(tallies["store.quarantined"], 2);
        assert_eq!(tallies["store.lock.read-only"], 1);
        assert_eq!(tallies["store.error"], 1);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::to_writer(Box::new(Shared(buf.clone()))).deterministic();
        sink.emit(&Event::RetryRecovered);
        sink.emit(&Event::Watchdog {
            outcome: "confirmed",
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"type\":\"retry.recovered\"}\n{\"type\":\"watchdog\",\"outcome\":\"confirmed\"}\n"
        );
    }
}
