//! A tiny hand-rolled JSON writer.
//!
//! The workspace deliberately has no third-party dependencies, but the
//! observability pipeline and the verification report both need a stable,
//! machine-readable serialization. This module provides just enough JSON:
//! objects and arrays with deterministic key order (keys are emitted in
//! the order the caller writes them), correct string escaping, and nothing
//! else — no parsing, no reflection, no derive.

use std::fmt::Write as _;

/// Escape `s` into `out` as the *contents* of a JSON string (no quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Incremental JSON object writer. Keys are emitted in call order, which
/// is what makes the output byte-stable across runs.
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// A field whose value is already valid JSON (nested object/array).
    pub fn raw(mut self, k: &str, json: &str) -> Obj {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    pub fn str(mut self, k: &str, v: &str) -> Obj {
        self.key(k);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    pub fn opt_str(self, k: &str, v: Option<&str>) -> Obj {
        match v {
            Some(v) => self.str(k, v),
            None => self.raw(k, "null"),
        }
    }

    pub fn u64(mut self, k: &str, v: u64) -> Obj {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn u128(mut self, k: &str, v: u128) -> Obj {
        // JSON numbers lose precision past 2^53; render wide ints as
        // strings so fingerprints survive any consumer.
        self.key(k);
        let _ = write!(self.buf, "\"{v:032x}\"");
        self
    }

    pub fn opt_u64(self, k: &str, v: Option<u64>) -> Obj {
        match v {
            Some(v) => self.u64(k, v),
            None => self.raw(k, "null"),
        }
    }

    pub fn bool(mut self, k: &str, v: bool) -> Obj {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Obj::new()
    }
}

/// Render an iterator of already-serialized JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_keys_in_call_order() {
        let j = Obj::new()
            .str("b", "x")
            .u64("a", 7)
            .bool("c", true)
            .opt_str("d", None)
            .finish();
        assert_eq!(j, r#"{"b":"x","a":7,"c":true,"d":null}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let inner = Obj::new().u64("n", 1).finish();
        let j = Obj::new().raw("xs", &array(vec![inner])).finish();
        assert_eq!(j, r#"{"xs":[{"n":1}]}"#);
    }

    #[test]
    fn wide_ints_are_hex_strings() {
        let j = Obj::new().u128("fp", 0xdead_beef).finish();
        assert_eq!(j, r#"{"fp":"000000000000000000000000deadbeef"}"#);
    }
}
