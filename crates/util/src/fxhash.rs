//! The FxHash algorithm (as used in rustc) and convenient collection aliases.
//!
//! FxHash is not DoS-resistant; it is only used on internal data (interned
//! symbols, node ids, automaton states), never on attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation
/// (closest prime-ish odd constant to 2^64 / golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher for short keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(i, "x");
        }
        assert_eq!(map.len(), 1000);
        assert!(map.contains_key(&999));
        assert!(!map.contains_key(&1000));
    }

    #[test]
    fn unaligned_tail_bytes_hash_consistently() {
        // 9 bytes: one full chunk + 1 remainder byte.
        let a = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut h1 = FxHasher::default();
        h1.write(&a);
        let mut h2 = FxHasher::default();
        h2.write(&a);
        assert_eq!(h1.finish(), h2.finish());

        let b = [1u8, 2, 3, 4, 5, 6, 7, 8, 10];
        let mut h3 = FxHasher::default();
        h3.write(&b);
        assert_ne!(h1.finish(), h3.finish());
    }
}
