//! A fixed-capacity bitset over `u64` words.
//!
//! Used as the state-set representation in automata subset construction
//! (`jahob-mona`) and as the abstract "Boolean heap" element representation in
//! `jahob-shape`, where a heap predicate valuation is one bitset.

use std::fmt;

/// A set of `usize` values below a fixed capacity.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
    /// Capacity in bits. Bits at positions >= len are always zero.
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for values `0..n`.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// A set containing all of `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = BitSet::new(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`). Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Is `self` a subset of `other`?
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Do `self` and `other` share an element?
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Flip all bits below capacity.
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        // Clear any bits past `len` in the final word.
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Iterate set elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

/// Iterator over set bits.
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset whose capacity is one more than the largest element
    /// (or zero if empty).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn boundary_bits() {
        let mut s = BitSet::new(128);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(127);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127]);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        for i in [1, 5, 65] {
            a.insert(i);
        }
        for i in [5, 9, 65] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 9, 65]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 65]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(a.intersects(&b));

        a.clear();
        assert!(!a.intersects(&b));
        assert!(a.is_subset(&b));
    }

    #[test]
    fn complement_respects_capacity() {
        let mut s = BitSet::new(67);
        s.insert(0);
        s.insert(66);
        s.complement();
        assert!(!s.contains(0));
        assert!(!s.contains(66));
        assert!(s.contains(1));
        assert!(s.contains(65));
        assert_eq!(s.count(), 65);
        // Double complement is identity.
        s.complement();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 66]);
    }

    #[test]
    fn full_and_first() {
        let s = BitSet::full(10);
        assert_eq!(s.count(), 10);
        assert_eq!(s.first(), Some(0));
        let e = BitSet::new(10);
        assert_eq!(e.first(), None);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [4usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 9]);
    }

    #[test]
    fn ord_is_stable_for_dedup() {
        // BitSet implements Ord so it can key BTree-based worklists.
        let mut a = BitSet::new(8);
        a.insert(1);
        let mut b = BitSet::new(8);
        b.insert(2);
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
