//! Global string interning.
//!
//! Formula terms, field names, class names, and variable names are all
//! interned into [`Symbol`]s so that the rest of the system compares and
//! hashes names as `u32`s. The interner is a process-global table behind a
//! mutex; lookups of already-interned strings take the lock briefly, and
//! `Symbol::as_str` leaks nothing because the table is append-only and stores
//! strings with a stable address for the lifetime of the process.

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare, and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    /// Map from string contents to symbol index.
    map: FxHashMap<&'static str, u32>,
    /// Symbol index to string contents. The `&'static str`s point into
    /// intentionally-leaked boxes; the table lives for the whole process.
    strings: Vec<&'static str>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&idx) = self.map.get(s) {
            return Symbol(idx);
        }
        let owned: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let idx = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(owned);
        self.map.insert(owned, idx);
        Symbol(idx)
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        self.strings[sym.0 as usize]
    }
}

fn global() -> &'static Mutex<Interner> {
    static GLOBAL: OnceLock<Mutex<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Interner::new()))
}

impl Symbol {
    /// Intern `s`, returning its symbol.
    pub fn intern(s: &str) -> Symbol {
        global().lock().unwrap().intern(s)
    }

    /// The string this symbol denotes.
    pub fn as_str(self) -> &'static str {
        global().lock().unwrap().resolve(self)
    }

    /// Raw index (stable within a process run); used by tools that need a
    /// dense numbering of names.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Make a fresh symbol guaranteed distinct from `base` by appending a
    /// numeric suffix not yet interned with the prefix `base'`.
    ///
    /// Used for alpha-renaming and skolemization. The result is still a
    /// normal interned symbol.
    pub fn fresh(base: Symbol) -> Symbol {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("{}'{}", base.as_str(), n))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_symbol() {
        assert_eq!(Symbol::intern("content"), Symbol::intern("content"));
    }

    #[test]
    fn different_strings_different_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn resolve_roundtrip() {
        let s = Symbol::intern("List.content");
        assert_eq!(s.as_str(), "List.content");
    }

    #[test]
    fn fresh_is_distinct() {
        let base = Symbol::intern("x");
        let f1 = Symbol::fresh(base);
        let f2 = Symbol::fresh(base);
        assert_ne!(f1, base);
        assert_ne!(f2, base);
        assert_ne!(f1, f2);
    }

    #[test]
    fn empty_string_ok() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn many_symbols_stay_stable() {
        let syms: Vec<Symbol> = (0..500).map(|i| Symbol::intern(&format!("v{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("v{i}"));
        }
    }
}
