//! Length-prefixed, CRC-framed IPC codec for the prover worker protocol.
//!
//! The supervisor ([`crate::supervisor`]) talks to its child worker
//! processes over plain stdin/stdout pipes. Every message is a *frame*:
//!
//! ```text
//! [magic u32 LE][len u32 LE][crc32 u32 LE][body: kind u8 + payload]
//! ```
//!
//! * `magic` is a fixed sentinel so a desynchronized stream (a worker
//!   that printed to stdout, a partial write) is detected immediately
//!   instead of misparsing garbage as a length.
//! * `len` is the body length (kind byte included) and is bounded by the
//!   reader's `max_len`, so a corrupt length can never trigger an
//!   unbounded allocation.
//! * `crc32` covers the body, reusing the same CRC-32 the segment store
//!   uses ([`crate::store::crc32`]); a bit-flipped or truncated frame is
//!   rejected, never half-parsed.
//!
//! Payload layout is the caller's business; [`Writer`]/[`Reader`] are the
//! little-endian cursor helpers both sides use to build and pick apart
//! payloads without pulling in a serialization dependency.

use crate::store::crc32;
use std::io;

/// Frame sentinel: `b"JHOB"` read as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"JHOB");

/// Default cap on a frame body. Requests carry one obligation's formula
/// variants; 16 MiB is orders of magnitude above anything the pipeline
/// produces while still bounding a corrupt length field.
pub const DEFAULT_MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Message kinds carried in the leading body byte.
pub mod kind {
    /// Worker → parent: ready banner after start-up.
    pub const HELLO: u8 = 1;
    /// Worker → parent: liveness beat while an attempt is running.
    pub const HEARTBEAT: u8 = 2;
    /// Parent → worker: one prover attempt.
    pub const REQUEST: u8 = 3;
    /// Worker → parent: the attempt's result.
    pub const REPLY: u8 = 4;
    /// Client → daemon: one verification request (source + options).
    pub const SUBMIT: u8 = 5;
    /// Daemon → client: a streamed obs line, the final rendered report,
    /// or a diagnosed pipeline error (see the tag byte in
    /// `jahob-core::service`).
    pub const REPORT: u8 = 6;
    /// Daemon → client: admission refused — the queue is full or the
    /// daemon is draining. Carries the queue depth so clients can back
    /// off informedly.
    pub const BUSY: u8 = 7;
    /// Client → daemon: status probe; daemon replies with the same kind
    /// carrying queue/in-flight/counter state.
    pub const STATUS: u8 = 8;
    /// Client → daemon: graceful drain request; the daemon finishes all
    /// admitted work, acks with the same kind, and exits.
    pub const DRAIN: u8 = 9;
}

/// One decoded frame: the kind byte plus the remaining payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: u8,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(kind: u8, payload: Vec<u8>) -> Self {
        Frame { kind, payload }
    }
}

/// Why a frame could not be read. `Eof` at a frame boundary is the
/// normal end-of-stream; everything else is a protocol violation the
/// supervisor treats as a crashed lane.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream (no bytes at a frame boundary).
    Eof,
    /// Underlying pipe error (includes mid-frame truncation).
    Io(io::Error),
    /// The magic sentinel did not match: the stream is desynchronized.
    BadMagic(u32),
    /// Declared body length exceeds the reader's cap.
    TooLong(u32),
    /// Body checksum mismatch: the frame was corrupted in flight.
    BadCrc { want: u32, got: u32 },
    /// A zero-length body (no kind byte) is never valid.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Io(e) => write!(f, "pipe error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::TooLong(n) => write!(f, "frame body of {n} bytes exceeds cap"),
            FrameError::BadCrc { want, got } => {
                write!(
                    f,
                    "frame checksum mismatch (want {want:#010x}, got {got:#010x})"
                )
            }
            FrameError::Empty => write!(f, "empty frame body"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame. The body (kind + payload) is assembled first so the
/// header's length and checksum describe exactly what goes on the wire.
pub fn write_frame(w: &mut impl io::Write, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(1 + frame.payload.len());
    body.push(frame.kind);
    body.extend_from_slice(&frame.payload);
    write_raw(w, &body, crc32(&body))
}

/// Write a frame whose checksum field is deliberately wrong — the chaos
/// harness uses this to exercise the receiver's corruption rejection.
pub fn write_corrupt_frame(w: &mut impl io::Write, frame: &Frame) -> io::Result<()> {
    let mut body = Vec::with_capacity(1 + frame.payload.len());
    body.push(frame.kind);
    body.extend_from_slice(&frame.payload);
    write_raw(w, &body, crc32(&body) ^ 0xdead_beef)
}

fn write_raw(w: &mut impl io::Write, body: &[u8], crc: u32) -> io::Result<()> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(body);
    w.write_all(&out)?;
    w.flush()
}

/// Read one frame, enforcing `max_len` on the declared body length.
///
/// Returns [`FrameError::Eof`] only when the stream ends cleanly *between*
/// frames; truncation inside a frame surfaces as `Io(UnexpectedEof)`.
pub fn read_frame(r: &mut impl io::Read, max_len: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; 12];
    // Distinguish "stream over" from "stream died mid-header".
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let want_crc = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if len > max_len {
        return Err(FrameError::TooLong(len));
    }
    if len == 0 {
        return Err(FrameError::Empty);
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let got_crc = crc32(&body);
    if got_crc != want_crc {
        return Err(FrameError::BadCrc {
            want: want_crc,
            got: got_crc,
        });
    }
    let payload = body[1..].to_vec();
    Ok(Frame {
        kind: body[0],
        payload,
    })
}

/// Little-endian payload builder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte run.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Decoding error for [`Reader`]: the payload ran short or held invalid
/// data. The supervisor maps this onto a crashed-lane outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncated;

impl std::fmt::Display for Truncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload truncated or malformed")
    }
}

/// Little-endian payload cursor. Every getter is bounds-checked; a short
/// read is an error, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Truncated> {
        let end = self.pos.checked_add(n).ok_or(Truncated)?;
        if end > self.buf.len() {
            return Err(Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, Truncated> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, Truncated> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, Truncated> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, Truncated> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], Truncated> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> Result<&'a str, Truncated> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| Truncated)
    }

    /// True when every payload byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, frame).unwrap();
        read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME).unwrap()
    }

    #[test]
    fn frame_roundtrip() {
        let frame = Frame::new(kind::REQUEST, b"hello worker".to_vec());
        assert_eq!(roundtrip(&frame), frame);
        let empty_payload = Frame::new(kind::HEARTBEAT, Vec::new());
        assert_eq!(roundtrip(&empty_payload), empty_payload);
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let frames = [
            Frame::new(kind::HELLO, vec![1, 2, 3]),
            Frame::new(kind::HEARTBEAT, Vec::new()),
            Frame::new(kind::REPLY, vec![0xff; 1000]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = wire.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), *f);
        }
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn bit_flips_anywhere_are_rejected() {
        let frame = Frame::new(kind::REPLY, b"the payload under test".to_vec());
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        for bit in 0..wire.len() * 8 {
            let mut bad = wire.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            // A flip may corrupt the magic, the length, the checksum, or
            // the body — every case must be an error, never a silent
            // mis-decode into a *different* valid frame.
            if let Ok(got) = read_frame(&mut bad.as_slice(), DEFAULT_MAX_FRAME) {
                panic!("bit {bit}: corrupt frame decoded as {got:?}");
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let frame = Frame::new(kind::REQUEST, vec![7; 64]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        for cut in 1..wire.len() {
            let short = &wire[..cut];
            assert!(
                read_frame(&mut &short[..], DEFAULT_MAX_FRAME).is_err(),
                "truncation to {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn oversize_length_is_capped_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(FrameError::TooLong(_))
        ));
    }

    #[test]
    fn corrupt_writer_is_rejected_by_reader() {
        let frame = Frame::new(kind::REPLY, b"garbled".to_vec());
        let mut wire = Vec::new();
        write_corrupt_frame(&mut wire, &frame).unwrap();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn cursor_roundtrip_and_bounds() {
        let mut w = Writer::new();
        w.put_u8(9);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_str("obligation");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_str().unwrap(), "obligation");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
        assert_eq!(r.get_u8(), Err(Truncated));

        // A length prefix pointing past the end is an error, not a panic.
        let mut w = Writer::new();
        w.put_u32(1_000_000);
        let buf = w.into_vec();
        assert_eq!(Reader::new(&buf).get_bytes(), Err(Truncated));
    }
}
