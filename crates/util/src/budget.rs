//! Cooperative resource budgets: deadlines plus fuel counters.
//!
//! Every reasoning substrate in the workspace is worst-case exponential
//! somewhere (subset construction, Cooper elimination, Venn-region
//! expansion, grounding). On the default in-process backend there is no
//! child to `kill -9`, so termination has to be cooperative: hot loops
//! call [`Budget::check`] and bail out with a structured [`Exhaustion`]
//! reason when the deadline passes or the fuel runs dry. The dispatcher
//! then records the failure and moves on to the next prover instead of
//! hanging the whole verification run. (The process backend in
//! [`crate::supervisor`] adds the non-cooperative backstop — SIGKILL at
//! a hard deadline — but the fuel accounting below still governs what an
//! attempt *records*, so the two backends stay verdict-identical.)
//!
//! Design constraints:
//!
//! * `check()` must be cheap enough to call once per CDCL conflict, per
//!   given-clause iteration, per DFA state expansion. Fuel is a single
//!   relaxed atomic decrement; the monotonic clock is only polled every
//!   [`POLL_INTERVAL`] checks (reading `Instant::now()` is a vDSO call —
//!   cheap, but not free on a loop that runs millions of times).
//! * Budgets are shared by reference across [`std::panic::catch_unwind`]
//!   boundaries, so all interior mutability is atomic (`Cell` would poison
//!   `RefUnwindSafe`).
//! * Exhaustion is *sticky*: once a budget has expired, every later
//!   `check()` reports the same reason without touching the clock again.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many `check()` calls elapse between deadline polls.
pub const POLL_INTERVAL: u64 = 1024;

/// Fuel value treated as "unmetered" — the counter is never decremented.
pub const INFINITE_FUEL: u64 = u64::MAX;

/// Why a budget ran out. This is deliberately a two-variant enum (not the
/// dispatcher's richer failure taxonomy): at the substrate level the only
/// things that can run out are wall-clock time and fuel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Timeout,
    /// The cooperative fuel counter reached zero.
    Fuel,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhaustion::Timeout => write!(f, "timeout"),
            Exhaustion::Fuel => write!(f, "fuel-exhausted"),
        }
    }
}

impl std::error::Error for Exhaustion {}

/// A cooperative resource budget: an optional wall-clock deadline plus an
/// optional fuel counter. Passed by shared reference into prover loops;
/// all mutation is interior and atomic.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    /// Remaining fuel. `INFINITE_FUEL` means unmetered.
    fuel: AtomicU64,
    /// Countdown until the next deadline poll.
    poll: AtomicU64,
    /// Sticky exhaustion marker: 0 = live, 1 = fuel, 2 = timeout.
    spent: AtomicU64,
}

impl Budget {
    /// A budget that never expires. `check()` still costs one atomic load.
    pub const fn unlimited() -> Budget {
        Budget {
            deadline: None,
            fuel: AtomicU64::new(INFINITE_FUEL),
            poll: AtomicU64::new(POLL_INTERVAL),
            spent: AtomicU64::new(0),
        }
    }

    /// A budget with both a deadline (from now) and a fuel allowance.
    pub fn new(time: Option<Duration>, fuel: u64) -> Budget {
        Budget {
            deadline: time.map(|t| Instant::now() + t),
            fuel: AtomicU64::new(fuel),
            poll: AtomicU64::new(POLL_INTERVAL),
            spent: AtomicU64::new(0),
        }
    }

    /// Deadline only; fuel is unmetered.
    pub fn with_deadline(time: Duration) -> Budget {
        Budget::new(Some(time), INFINITE_FUEL)
    }

    /// Fuel only; no deadline.
    pub fn with_fuel(fuel: u64) -> Budget {
        Budget::new(None, fuel)
    }

    /// Construct with an absolute deadline (used by [`Budget::child`]).
    fn at(deadline: Option<Instant>, fuel: u64) -> Budget {
        Budget {
            deadline,
            fuel: AtomicU64::new(fuel),
            poll: AtomicU64::new(POLL_INTERVAL),
            spent: AtomicU64::new(0),
        }
    }

    /// Split off a child budget for one prover attempt: the child's deadline
    /// is the *earlier* of the parent's deadline and `now + time` (so no
    /// attempt can outlive its obligation), and its fuel is capped by the
    /// parent's remaining fuel. Fuel spent by the child is not charged back
    /// to the parent — the parent's deadline is the global bound.
    pub fn child(&self, time: Option<Duration>, fuel: u64) -> Budget {
        let deadline = match (self.deadline, time) {
            (Some(d), Some(t)) => Some(d.min(Instant::now() + t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(Instant::now() + t),
            (None, None) => None,
        };
        Budget::at(deadline, fuel.min(self.fuel_remaining()))
    }

    /// Remaining fuel ([`INFINITE_FUEL`] if unmetered).
    pub fn fuel_remaining(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Has this budget already been observed to expire?
    pub fn exhausted(&self) -> Option<Exhaustion> {
        match self.spent.load(Ordering::Relaxed) {
            1 => Some(Exhaustion::Fuel),
            2 => Some(Exhaustion::Timeout),
            _ => None,
        }
    }

    fn mark(&self, why: Exhaustion) -> Exhaustion {
        let code = match why {
            Exhaustion::Fuel => 1,
            Exhaustion::Timeout => 2,
        };
        // First writer wins so the recorded reason stays stable.
        let _ = self
            .spent
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
        self.exhausted().unwrap_or(why)
    }

    /// Burn one unit of fuel and (amortized) poll the deadline. Call this
    /// from every hot loop; return `Err` means "stop now, unwind cleanly".
    #[inline]
    pub fn check(&self) -> Result<(), Exhaustion> {
        self.charge(1)
    }

    /// Burn `n` units of fuel at once (for loops that do measurable chunks
    /// of work per iteration, e.g. one unit per DFA state expanded).
    pub fn charge(&self, n: u64) -> Result<(), Exhaustion> {
        if let Some(why) = self.exhausted() {
            return Err(why);
        }
        let fuel = self.fuel.load(Ordering::Relaxed);
        if fuel != INFINITE_FUEL {
            if fuel < n {
                self.fuel.store(0, Ordering::Relaxed);
                return Err(self.mark(Exhaustion::Fuel));
            }
            self.fuel.store(fuel - n, Ordering::Relaxed);
        }
        if self.deadline.is_some() {
            let left = self.poll.load(Ordering::Relaxed);
            if left > n {
                self.poll.store(left - n, Ordering::Relaxed);
            } else {
                self.poll.store(POLL_INTERVAL, Ordering::Relaxed);
                self.poll_deadline()?;
            }
        }
        Ok(())
    }

    /// Revoke the budget from outside: the next `check()`/`charge()`/
    /// `poll_deadline()` on any thread reports a sticky [`Exhaustion::Fuel`].
    /// This is the cooperative half of race cancellation — a speculative
    /// attempt that lost its race is asked to unwind at its next fuel
    /// check, exactly as if its allowance had run dry. First writer wins:
    /// revoking a budget that already expired does not change the
    /// recorded reason.
    pub fn revoke(&self) {
        let _ = self.mark(Exhaustion::Fuel);
    }

    /// Poll the deadline *now*, bypassing amortization. Use at phase
    /// boundaries (e.g. before starting an expensive sub-procedure).
    pub fn poll_deadline(&self) -> Result<(), Exhaustion> {
        if let Some(why) = self.exhausted() {
            return Err(why);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(self.mark(Exhaustion::Timeout));
            }
        }
        Ok(())
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        for _ in 0..100_000 {
            assert!(b.check().is_ok());
        }
        assert_eq!(b.fuel_remaining(), INFINITE_FUEL);
        assert!(b.exhausted().is_none());
    }

    #[test]
    fn fuel_runs_dry_and_sticks() {
        let b = Budget::with_fuel(10);
        for _ in 0..10 {
            assert!(b.check().is_ok());
        }
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        // Sticky: the same reason forever after.
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.exhausted(), Some(Exhaustion::Fuel));
    }

    #[test]
    fn charge_consumes_in_chunks() {
        let b = Budget::with_fuel(100);
        assert!(b.charge(60).is_ok());
        assert!(b.charge(40).is_ok());
        assert_eq!(b.charge(1), Err(Exhaustion::Fuel));
    }

    #[test]
    fn zero_deadline_times_out() {
        let b = Budget::with_deadline(Duration::from_secs(0));
        assert_eq!(b.poll_deadline(), Err(Exhaustion::Timeout));
        // check() reports the sticky timeout even without a fresh poll.
        assert_eq!(b.check(), Err(Exhaustion::Timeout));
    }

    #[test]
    fn deadline_polled_within_interval() {
        let b = Budget::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let mut saw_timeout = false;
        for _ in 0..=POLL_INTERVAL {
            if b.check() == Err(Exhaustion::Timeout) {
                saw_timeout = true;
                break;
            }
        }
        assert!(saw_timeout, "timeout must surface within one poll interval");
    }

    #[test]
    fn child_inherits_tighter_constraints() {
        let parent = Budget::new(Some(Duration::from_secs(60)), 1000);
        let child = parent.child(None, 5000);
        // Fuel capped by the parent's remaining allowance.
        assert_eq!(child.fuel_remaining(), 1000);
        // Deadline inherited from the parent.
        assert!(child.time_remaining().unwrap() <= Duration::from_secs(60));

        let tight = parent.child(Some(Duration::from_millis(10)), 10);
        assert_eq!(tight.fuel_remaining(), 10);
        assert!(tight.time_remaining().unwrap() <= Duration::from_millis(10));
    }

    #[test]
    fn child_of_unlimited_is_standalone() {
        let parent = Budget::unlimited();
        let child = parent.child(Some(Duration::from_secs(1)), 42);
        assert_eq!(child.fuel_remaining(), 42);
        assert!(child.time_remaining().is_some());
    }

    #[test]
    fn revoke_is_sticky_fuel_exhaustion() {
        let b = Budget::unlimited();
        assert!(b.check().is_ok());
        b.revoke();
        assert_eq!(b.check(), Err(Exhaustion::Fuel));
        assert_eq!(b.poll_deadline(), Err(Exhaustion::Fuel));
        assert_eq!(b.exhausted(), Some(Exhaustion::Fuel));
    }

    #[test]
    fn revoke_never_rewrites_an_earlier_reason() {
        let b = Budget::with_deadline(Duration::from_secs(0));
        assert_eq!(b.poll_deadline(), Err(Exhaustion::Timeout));
        b.revoke();
        assert_eq!(b.exhausted(), Some(Exhaustion::Timeout));
    }

    #[test]
    fn budget_is_ref_unwind_safe() {
        fn assert_refs<T: std::panic::RefUnwindSafe + Sync>() {}
        assert_refs::<Budget>();
    }
}
