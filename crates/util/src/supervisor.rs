//! Out-of-process worker supervision: hard preemption, crash-loop
//! quarantine, and graceful degradation.
//!
//! A [`Supervisor`] owns a set of *lanes*, each backed by at most one
//! child worker process (a re-exec of the current binary in worker mode).
//! Requests go over the [`crate::ipc`] frame protocol on the child's
//! stdin/stdout; the parent enforces what the in-process budgets cannot:
//!
//! * **Hard wall-clock deadlines.** A worker wedged in a loop that never
//!   polls its fuel is SIGKILLed when the request deadline expires —
//!   [`Outcome::TimedOut`] — instead of stalling the run. Heartbeat
//!   frames from the worker let the parent distinguish "slow but alive"
//!   (suspect, reported once) from "about to be killed".
//! * **Memory ceilings.** Children apply `setrlimit(RLIMIT_AS)` (see
//!   [`apply_memory_limit`]) so a ballooning prover aborts in its own
//!   process; the parent maps the abort to [`Outcome::Crashed`] with
//!   `oom: true`.
//! * **Crash-loop quarantine.** `crash_threshold` failures inside
//!   `crash_window` quarantine the lane: no more children are spawned
//!   for it and every later request returns [`Outcome::Unavailable`], so
//!   the caller degrades to its in-process path. Verdicts never change —
//!   only the isolation weakens.
//!
//! Deadline kills are deliberately **not** crash-window entries: a hang
//! is attributed to the obligation (it becomes a `Timeout` failure),
//! while crashes are attributed to the lane. This keeps a plan that
//! injects hangs from ever tripping quarantine, which in turn keeps the
//! observable stream of a seeded hung-child run deterministic.
//!
//! The state machine per lane:
//!
//! ```text
//! spawn → healthy → suspect (late heartbeat) → killed (deadline)
//!            │
//!            └─ crashed ×K within window → quarantined → fallback
//! ```
//!
//! The supervisor knows nothing about provers or formulas — payloads are
//! opaque bytes; `jahob-core` layers the prover request/reply codec on
//! top.

use crate::counters::Stats;
use crate::ipc::{self, Frame, FrameError};
use crate::obs::{Event, Sink};
use std::collections::{BTreeSet, VecDeque};
use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable carrying the child's `RLIMIT_AS` ceiling (bytes).
pub const ENV_WORKER_MEM: &str = "JAHOB_WORKER_MEM";
/// Environment variable carrying the child's heartbeat interval (ms).
pub const ENV_WORKER_BEAT_MS: &str = "JAHOB_WORKER_BEAT_MS";

/// How to spawn and police worker children.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// The worker executable (typically the current binary).
    pub program: PathBuf,
    /// Arguments selecting worker mode (e.g. `["worker"]`).
    pub args: Vec<String>,
    /// `RLIMIT_AS` ceiling for each child, in bytes. `None` leaves the
    /// address space unlimited (glibc arenas make a tight default
    /// hazardous; callers opt in).
    pub memory_limit: Option<u64>,
    /// Worker heartbeat interval while an attempt runs.
    pub heartbeat_interval: Duration,
    /// Silent heartbeat intervals tolerated before the lane is reported
    /// suspect (the hard deadline applies regardless).
    pub heartbeat_grace: u32,
    /// How long a fresh child gets to send its HELLO banner.
    pub hello_timeout: Duration,
    /// Crashes inside `crash_window` that quarantine the lane.
    pub crash_threshold: u32,
    /// Sliding window for crash-loop detection.
    pub crash_window: Duration,
    /// Frame-size cap for child replies.
    pub max_frame: u32,
}

impl SupervisorConfig {
    /// Sensible defaults for `program` in worker mode via a `worker`
    /// argument.
    pub fn new(program: impl Into<PathBuf>) -> SupervisorConfig {
        SupervisorConfig {
            program: program.into(),
            args: vec!["worker".to_owned()],
            memory_limit: None,
            heartbeat_interval: Duration::from_millis(50),
            heartbeat_grace: 3,
            hello_timeout: Duration::from_secs(10),
            crash_threshold: 3,
            crash_window: Duration::from_secs(30),
            max_frame: ipc::DEFAULT_MAX_FRAME,
        }
    }
}

/// Result of one supervised request.
#[derive(Debug)]
pub enum Outcome {
    /// The worker replied inside the deadline.
    Reply(Vec<u8>),
    /// The deadline expired; the child was SIGKILLed and reaped. Not a
    /// crash-window entry — the hang belongs to the request, not the lane.
    TimedOut,
    /// The caller cancelled the request mid-flight (see
    /// [`Supervisor::request_cancellable`]); the child was SIGKILLed and
    /// reaped. Like a deadline kill this is not a crash-window entry —
    /// the kill belongs to the caller's race, not the lane.
    Cancelled,
    /// The child died or broke protocol mid-request (counts toward
    /// quarantine). `oom` is set when the death looks like the memory
    /// ceiling: the caller must *not* retry in-process, where the same
    /// allocation would take the parent down.
    Crashed { oom: bool, detail: String },
    /// The lane is quarantined; nothing was attempted.
    Unavailable,
}

/// What the reader thread forwards from the child's stdout.
enum Incoming {
    Frame(Frame),
    Corrupt(FrameError),
    Eof,
}

struct LiveChild {
    child: Child,
    stdin: ChildStdin,
    incoming: Receiver<Incoming>,
    stderr_tail: Arc<Mutex<String>>,
}

#[derive(Default)]
struct LaneState {
    child: Option<LiveChild>,
    crashes: VecDeque<Instant>,
    quarantined: bool,
    ever_spawned: bool,
}

/// A pool of supervised worker lanes. One child per lane; requests to
/// the same lane serialize, distinct lanes run concurrently.
pub struct Supervisor {
    config: SupervisorConfig,
    lanes: Mutex<std::collections::BTreeMap<String, Arc<Mutex<LaneState>>>>,
    /// Lane-scoped counters (`supervisor.*`). These are *unstable* run
    /// stats: spawn timing races across pool workers, so the counts are
    /// reported but excluded from deterministic report sections.
    stats: Stats,
    /// Optional direct sink for lane-scoped events (spawn / restart /
    /// quarantine / late heartbeat). Attempt-scoped events (kill, crash,
    /// fallback) are the *caller's* to record, through its deterministic
    /// per-attempt recorder.
    sink: Option<Arc<dyn Sink>>,
}

impl Supervisor {
    pub fn new(config: SupervisorConfig, sink: Option<Arc<dyn Sink>>) -> Supervisor {
        Supervisor {
            config,
            lanes: Mutex::new(Default::default()),
            stats: Stats::new(),
            sink,
        }
    }

    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Snapshot of the supervisor's own counters.
    pub fn stats_snapshot(&self) -> Vec<(String, u64)> {
        self.stats.snapshot()
    }

    /// Lanes currently quarantined, sorted.
    pub fn quarantined_lanes(&self) -> Vec<String> {
        let lanes = self.lanes.lock().unwrap();
        let mut out = BTreeSet::new();
        for (name, lane) in lanes.iter() {
            if lane.lock().unwrap().quarantined {
                out.insert(name.clone());
            }
        }
        out.into_iter().collect()
    }

    /// True when `lane` is quarantined (callers use this to skip the
    /// request path entirely and fall back silently).
    pub fn is_quarantined(&self, lane: &str) -> bool {
        let handle = {
            let lanes = self.lanes.lock().unwrap();
            match lanes.get(lane) {
                Some(l) => Arc::clone(l),
                None => return false,
            }
        };
        let q = handle.lock().unwrap().quarantined;
        q
    }

    fn emit(&self, event: Event) {
        event.stat_increments(|name, delta| self.stats.add(name, delta));
        if let Some(sink) = &self.sink {
            sink.emit(&event);
        }
    }

    fn lane(&self, name: &str) -> Arc<Mutex<LaneState>> {
        let mut lanes = self.lanes.lock().unwrap();
        Arc::clone(lanes.entry(name.to_owned()).or_default())
    }

    /// Send `payload` to `lane`'s worker and wait for its reply, policing
    /// the heartbeat and the hard `deadline`. Spawns (or respawns) the
    /// child on demand.
    pub fn request(&self, lane: &str, payload: &[u8], deadline: Duration) -> Outcome {
        self.request_cancellable(lane, payload, deadline, &|| false)
    }

    /// [`Supervisor::request`] with a cancellation hook: `cancelled` is
    /// polled once per heartbeat tick while the parent waits, and a
    /// `true` answer SIGKILLs the child immediately — the non-cooperative
    /// backstop for speculative racing, where a worker wedged past its
    /// loser's revoked budget must still die promptly. Returns
    /// [`Outcome::Cancelled`]; like deadline kills, cancellations never
    /// count toward crash-loop quarantine.
    pub fn request_cancellable(
        &self,
        lane: &str,
        payload: &[u8],
        deadline: Duration,
        cancelled: &(dyn Fn() -> bool + Sync),
    ) -> Outcome {
        let handle = self.lane(lane);
        let mut state = handle.lock().unwrap();
        if state.quarantined {
            return Outcome::Unavailable;
        }
        if state.child.is_none() {
            match self.spawn(state.ever_spawned) {
                Ok(live) => {
                    self.emit(if state.ever_spawned {
                        Event::SupervisorRestart {
                            lane: lane.to_owned(),
                        }
                    } else {
                        Event::SupervisorSpawn {
                            lane: lane.to_owned(),
                        }
                    });
                    state.ever_spawned = true;
                    state.child = Some(live);
                }
                Err(detail) => {
                    self.record_crash(&mut state, lane);
                    return Outcome::Crashed { oom: false, detail };
                }
            }
        }
        let mut live = state.child.take().expect("child ensured above");
        if let Err(e) = ipc::write_frame(
            &mut live.stdin,
            &Frame::new(ipc::kind::REQUEST, payload.to_vec()),
        ) {
            let (oom, detail) = reap(live, self.config.memory_limit.is_some());
            self.record_crash(&mut state, lane);
            return Outcome::Crashed {
                oom,
                detail: format!("request write failed: {e}; {detail}"),
            };
        }
        let hard_deadline = Instant::now() + deadline;
        let beat = self.config.heartbeat_interval.max(Duration::from_millis(1));
        let suspect_after = beat * (self.config.heartbeat_grace + 1);
        let mut last_beat = Instant::now();
        let mut suspected = false;
        loop {
            let now = Instant::now();
            if now >= hard_deadline {
                // Hard preemption: SIGKILL, reap, report a timeout. The
                // kill is not a crash-window entry (see module docs).
                let _ = live.child.kill();
                let _ = live.child.wait();
                return Outcome::TimedOut;
            }
            if cancelled() {
                // The caller lost interest (race loser): same hard
                // preemption as a deadline kill, same non-crash status.
                let _ = live.child.kill();
                let _ = live.child.wait();
                return Outcome::Cancelled;
            }
            let wait = (hard_deadline - now).min(beat);
            match live.incoming.recv_timeout(wait) {
                Ok(Incoming::Frame(frame)) => match frame.kind {
                    ipc::kind::HEARTBEAT => {
                        last_beat = Instant::now();
                        suspected = false;
                    }
                    ipc::kind::REPLY => {
                        state.child = Some(live);
                        return Outcome::Reply(frame.payload);
                    }
                    other => {
                        let (oom, detail) = reap(live, self.config.memory_limit.is_some());
                        self.record_crash(&mut state, lane);
                        return Outcome::Crashed {
                            oom,
                            detail: format!("unexpected frame kind {other}; {detail}"),
                        };
                    }
                },
                Ok(Incoming::Corrupt(err)) => {
                    let (oom, detail) = reap(live, self.config.memory_limit.is_some());
                    self.record_crash(&mut state, lane);
                    return Outcome::Crashed {
                        oom,
                        detail: format!("corrupt frame: {err}; {detail}"),
                    };
                }
                Ok(Incoming::Eof) => {
                    let (oom, detail) = reap(live, self.config.memory_limit.is_some());
                    self.record_crash(&mut state, lane);
                    return Outcome::Crashed { oom, detail };
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !suspected && last_beat.elapsed() > suspect_after {
                        suspected = true;
                        self.emit(Event::SupervisorHeartbeat {
                            lane: lane.to_owned(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Reader thread died without an Eof marker; treat as
                    // a crash.
                    let (oom, detail) = reap(live, self.config.memory_limit.is_some());
                    self.record_crash(&mut state, lane);
                    return Outcome::Crashed { oom, detail };
                }
            }
        }
    }

    fn spawn(&self, _restart: bool) -> Result<LiveChild, String> {
        let mut cmd = Command::new(&self.config.program);
        cmd.args(&self.config.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            // A worker must never decide to spawn workers of its own.
            .env_remove("JAHOB_ISOLATION")
            .env(
                ENV_WORKER_BEAT_MS,
                self.config.heartbeat_interval.as_millis().to_string(),
            );
        match self.config.memory_limit {
            Some(bytes) => cmd.env(ENV_WORKER_MEM, bytes.to_string()),
            None => cmd.env_remove(ENV_WORKER_MEM),
        };
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn `{}` failed: {e}", self.config.program.display()))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let stderr = child.stderr.take().expect("piped stderr");

        let stderr_tail = Arc::new(Mutex::new(String::new()));
        {
            let tail = Arc::clone(&stderr_tail);
            std::thread::spawn(move || {
                let mut stderr = stderr;
                let mut buf = [0u8; 1024];
                while let Ok(n) = stderr.read(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    let mut tail = tail.lock().unwrap();
                    tail.push_str(&String::from_utf8_lossy(&buf[..n]));
                    // Keep a bounded tail; the interesting line (an abort
                    // banner) is always the last one.
                    if tail.len() > 4096 {
                        let cut = tail.len() - 4096;
                        let boundary = (cut..tail.len())
                            .find(|&i| tail.is_char_boundary(i))
                            .unwrap_or(tail.len());
                        tail.drain(..boundary);
                    }
                }
            });
        }

        let (tx, rx) = mpsc::channel();
        let max_frame = self.config.max_frame;
        std::thread::spawn(move || {
            let mut stdout = stdout;
            loop {
                match ipc::read_frame(&mut stdout, max_frame) {
                    Ok(frame) => {
                        if tx.send(Incoming::Frame(frame)).is_err() {
                            break;
                        }
                    }
                    Err(FrameError::Eof) => {
                        let _ = tx.send(Incoming::Eof);
                        break;
                    }
                    Err(err) => {
                        let _ = tx.send(Incoming::Corrupt(err));
                        break;
                    }
                }
            }
        });

        let mut live = LiveChild {
            child,
            stdin,
            incoming: rx,
            stderr_tail,
        };
        // Handshake: the child announces readiness before the lane is
        // considered healthy.
        match live.incoming.recv_timeout(self.config.hello_timeout) {
            Ok(Incoming::Frame(f)) if f.kind == ipc::kind::HELLO => Ok(live),
            other => {
                let _ = live.child.kill();
                let (_, detail) = reap(live, false);
                let why = match other {
                    Ok(Incoming::Frame(f)) => format!("expected HELLO, got kind {}", f.kind),
                    Ok(Incoming::Corrupt(e)) => format!("corrupt HELLO: {e}"),
                    Ok(Incoming::Eof) => "exited before HELLO".to_owned(),
                    Err(_) => "no HELLO inside the handshake timeout".to_owned(),
                };
                Err(format!("{why}; {detail}"))
            }
        }
    }

    fn record_crash(&self, state: &mut LaneState, lane: &str) {
        let now = Instant::now();
        while let Some(&front) = state.crashes.front() {
            if now.duration_since(front) > self.config.crash_window {
                state.crashes.pop_front();
            } else {
                break;
            }
        }
        state.crashes.push_back(now);
        if !state.quarantined
            && self.config.crash_threshold > 0
            && state.crashes.len() >= self.config.crash_threshold as usize
        {
            state.quarantined = true;
            self.emit(Event::SupervisorQuarantined {
                lane: lane.to_owned(),
                crashes: state.crashes.len() as u64,
            });
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        let lanes = std::mem::take(&mut *self.lanes.lock().unwrap());
        for (_, lane) in lanes {
            if let Some(mut live) = lane.lock().unwrap().child.take() {
                // Workers are stateless; a kill loses nothing.
                let _ = live.child.kill();
                let _ = live.child.wait();
            }
        }
    }
}

/// Wait on a dead (or dying) child and classify the death. Returns
/// `(looks_like_oom, human detail)`.
fn reap(mut live: LiveChild, memory_limited: bool) -> (bool, String) {
    // Make death certain before waiting: a child classified as crashed
    // may be perfectly alive — a protocol breaker (say, one garbled
    // frame) goes straight back to listening on stdin, and waiting on it
    // while we still hold the write end would block forever. Kill is
    // harmless on a child that already died: the signal lands on a
    // zombie and `wait` still reports the original exit status, so OOM
    // classification below is undisturbed.
    drop(live.stdin);
    let _ = live.child.kill();
    let status = live.child.wait();
    let tail = live.stderr_tail.lock().unwrap().clone();
    // Rust's allocator aborts with this banner when `RLIMIT_AS` denies an
    // allocation; a SIGABRT under an active ceiling is the same story
    // even if stderr was lost.
    let oom_banner = tail.contains("memory allocation") && tail.contains("failed");
    let mut signal_abort = false;
    let status_text = match &status {
        Ok(st) => {
            #[cfg(unix)]
            {
                use std::os::unix::process::ExitStatusExt;
                if let Some(sig) = st.signal() {
                    signal_abort = sig == 6;
                }
            }
            format!("{st}")
        }
        Err(e) => format!("wait failed: {e}"),
    };
    let oom = oom_banner || (memory_limited && signal_abort);
    let detail = if tail.trim().is_empty() {
        format!("worker exited ({status_text})")
    } else {
        format!(
            "worker exited ({status_text}); stderr tail: {}",
            tail.trim()
                .chars()
                .rev()
                .take(200)
                .collect::<String>()
                .chars()
                .rev()
                .collect::<String>()
        )
    };
    (oom, detail)
}

/// Apply `setrlimit(RLIMIT_AS, bytes)` to the current process. Worker
/// children call this on start-up with [`ENV_WORKER_MEM`]. A no-op on
/// non-Linux targets (the supervisor still enforces deadlines there).
#[cfg(target_os = "linux")]
pub fn apply_memory_limit(bytes: u64) -> std::io::Result<()> {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_AS: i32 = 9;
    let lim = Rlimit {
        cur: bytes,
        max: bytes,
    };
    // SAFETY: `lim` is a valid, initialized rlimit for the duration of
    // the call; `setrlimit` reads it and touches nothing else.
    if unsafe { setrlimit(RLIMIT_AS, &lim) } == 0 {
        Ok(())
    } else {
        Err(std::io::Error::last_os_error())
    }
}

#[cfg(not(target_os = "linux"))]
pub fn apply_memory_limit(_bytes: u64) -> std::io::Result<()> {
    Ok(())
}

/// Shared handle the worker's request handler uses to steer heartbeats
/// (the chaos harness suppresses them to simulate a slow child).
#[derive(Clone)]
pub struct HeartbeatControl {
    suppressed: Arc<AtomicBool>,
}

impl HeartbeatControl {
    pub fn suppress(&self, on: bool) {
        self.suppressed.store(on, Ordering::Relaxed);
    }
}

/// A handler's answer: the reply payload, optionally written with a
/// deliberately bad checksum (chaos: garbled frame).
pub struct WorkerReply {
    pub payload: Vec<u8>,
    pub corrupt: bool,
}

/// Worker-mode options, resolved from the environment the supervisor
/// set at spawn time. Also applies [`ENV_WORKER_MEM`] via
/// [`apply_memory_limit`].
pub struct WorkerOptions {
    pub heartbeat_interval: Duration,
    pub max_frame: u32,
}

impl WorkerOptions {
    pub fn from_env() -> WorkerOptions {
        if let Some(bytes) = std::env::var(ENV_WORKER_MEM)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
        {
            // Best-effort: a failed rlimit weakens isolation, it does not
            // block the worker.
            let _ = apply_memory_limit(bytes);
        }
        let millis = std::env::var(ENV_WORKER_BEAT_MS)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(50)
            .max(1);
        WorkerOptions {
            heartbeat_interval: Duration::from_millis(millis),
            max_frame: ipc::DEFAULT_MAX_FRAME,
        }
    }
}

/// Run the worker side of the protocol on this process's stdin/stdout:
/// HELLO, then a request loop beating heartbeats while the handler runs.
/// Returns when the parent closes stdin (clean shutdown).
pub fn serve(
    opts: WorkerOptions,
    mut handler: impl FnMut(&HeartbeatControl, &[u8]) -> WorkerReply,
) -> std::io::Result<()> {
    let stdout: Arc<Mutex<std::io::Stdout>> = Arc::new(Mutex::new(std::io::stdout()));
    let busy = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let control = HeartbeatControl {
        suppressed: Arc::new(AtomicBool::new(false)),
    };
    {
        let stdout = Arc::clone(&stdout);
        let busy = Arc::clone(&busy);
        let stop = Arc::clone(&stop);
        let suppressed = Arc::clone(&control.suppressed);
        let interval = opts.heartbeat_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if stop.load(Ordering::Relaxed) {
                break;
            }
            if busy.load(Ordering::Relaxed) && !suppressed.load(Ordering::Relaxed) {
                let mut out = stdout.lock().unwrap();
                if ipc::write_frame(&mut *out, &Frame::new(ipc::kind::HEARTBEAT, Vec::new()))
                    .is_err()
                {
                    break;
                }
            }
        });
    }
    {
        let mut out = stdout.lock().unwrap();
        ipc::write_frame(&mut *out, &Frame::new(ipc::kind::HELLO, Vec::new()))?;
    }
    let mut stdin = std::io::stdin();
    let result = loop {
        match ipc::read_frame(&mut stdin, opts.max_frame) {
            Ok(frame) if frame.kind == ipc::kind::REQUEST => {
                busy.store(true, Ordering::Relaxed);
                let reply = handler(&control, &frame.payload);
                busy.store(false, Ordering::Relaxed);
                control.suppressed.store(false, Ordering::Relaxed);
                let mut out = stdout.lock().unwrap();
                let frame = Frame::new(ipc::kind::REPLY, reply.payload);
                let write = if reply.corrupt {
                    ipc::write_corrupt_frame(&mut *out, &frame)
                } else {
                    ipc::write_frame(&mut *out, &frame)
                };
                if let Err(e) = write {
                    break Err(e);
                }
            }
            Ok(frame) => {
                break Err(std::io::Error::other(format!(
                    "unexpected frame kind {} from parent",
                    frame.kind
                )))
            }
            Err(FrameError::Eof) => break Ok(()),
            Err(FrameError::Io(e)) => break Err(e),
            Err(e) => break Err(std::io::Error::other(format!("bad frame from parent: {e}"))),
        }
    };
    stop.store(true, Ordering::Relaxed);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(program: &str, args: &[&str]) -> SupervisorConfig {
        SupervisorConfig {
            program: PathBuf::from(program),
            args: args.iter().map(|s| (*s).to_owned()).collect(),
            memory_limit: None,
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_grace: 2,
            hello_timeout: Duration::from_millis(750),
            crash_threshold: 3,
            crash_window: Duration::from_secs(30),
            max_frame: ipc::DEFAULT_MAX_FRAME,
        }
    }

    /// A printf-able escape string for one protocol frame.
    #[cfg(unix)]
    fn frame_escapes(kind: u8, payload: &[u8]) -> String {
        let mut wire = Vec::new();
        ipc::write_frame(&mut wire, &Frame::new(kind, payload.to_vec())).unwrap();
        wire.iter().map(|b| format!("\\{b:03o}")).collect()
    }

    #[cfg(unix)]
    #[test]
    fn reply_roundtrip_through_a_shell_worker() {
        // A worker that speaks just enough protocol: HELLO, then one
        // canned REPLY, then blocks on (ignored) stdin.
        let script = format!(
            "printf '{}{}'; cat > /dev/null",
            frame_escapes(ipc::kind::HELLO, b""),
            frame_escapes(ipc::kind::REPLY, b"pong"),
        );
        let sup = Supervisor::new(test_config("sh", &["-c", &script]), None);
        match sup.request("lane", b"ping", Duration::from_secs(5)) {
            Outcome::Reply(payload) => assert_eq!(payload, b"pong"),
            other => panic!("expected a reply, got {other:?}"),
        }
        assert_eq!(sup.stats.get("supervisor.spawn"), 1);
        assert!(sup.quarantined_lanes().is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn hung_child_is_killed_at_the_deadline() {
        // HELLO then silence: the hard deadline must SIGKILL it.
        let script = format!(
            "printf '{}'; sleep 600",
            frame_escapes(ipc::kind::HELLO, b""),
        );
        let sup = Supervisor::new(test_config("sh", &["-c", &script]), None);
        let started = Instant::now();
        match sup.request("lane", b"ping", Duration::from_millis(300)) {
            Outcome::TimedOut => {}
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "kill must not wait for the child's sleep"
        );
        // Deadline kills never count toward quarantine.
        assert!(sup.quarantined_lanes().is_empty());
        assert_eq!(sup.lane("lane").lock().unwrap().crashes.len(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn cancellation_kills_the_child_without_a_crash_entry() {
        // HELLO then silence: an already-cancelled request must SIGKILL
        // the child at the first poll instead of waiting out the deadline.
        let script = format!(
            "printf '{}'; sleep 600",
            frame_escapes(ipc::kind::HELLO, b""),
        );
        let sup = Supervisor::new(test_config("sh", &["-c", &script]), None);
        let started = Instant::now();
        match sup.request_cancellable("lane", b"ping", Duration::from_secs(60), &|| true) {
            Outcome::Cancelled => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cancel must not wait for the deadline"
        );
        // Cancellations never count toward quarantine.
        assert!(sup.quarantined_lanes().is_empty());
        assert_eq!(sup.lane("lane").lock().unwrap().crashes.len(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn garbage_output_is_a_crash() {
        let sup = Supervisor::new(
            test_config("sh", &["-c", "echo this is not a frame; sleep 600"]),
            None,
        );
        match sup.request("lane", b"ping", Duration::from_secs(5)) {
            Outcome::Crashed { oom: false, .. } => {}
            other => panic!("expected a crash, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn crash_loop_quarantines_after_threshold() {
        // `true` exits immediately: every request is a crash (no HELLO).
        let sup = Supervisor::new(test_config("true", &[]), None);
        for round in 0..3 {
            match sup.request("lane", b"ping", Duration::from_secs(5)) {
                Outcome::Crashed { .. } => {}
                other => panic!("round {round}: expected a crash, got {other:?}"),
            }
        }
        assert_eq!(sup.quarantined_lanes(), vec!["lane".to_owned()]);
        assert_eq!(sup.stats.get("supervisor.quarantined"), 1);
        // Quarantined lanes refuse work without spawning anything.
        match sup.request("lane", b"ping", Duration::from_secs(5)) {
            Outcome::Unavailable => {}
            other => panic!("expected unavailable, got {other:?}"),
        }
        // Other lanes are unaffected by the quarantine.
        assert!(!sup.is_quarantined("other"));
    }

    #[test]
    fn missing_program_is_a_crash_not_a_panic() {
        let sup = Supervisor::new(test_config("/nonexistent/jahob-worker-binary", &[]), None);
        match sup.request("lane", b"ping", Duration::from_secs(5)) {
            Outcome::Crashed { oom: false, detail } => {
                assert!(detail.contains("spawn"), "{detail}")
            }
            other => panic!("expected a crash, got {other:?}"),
        }
    }
}
