//! Deterministic fault injection for the prover portfolio.
//!
//! The dispatcher's whole value proposition is that one misbehaving
//! reasoner never corrupts or aborts a verification run. That property is
//! only worth anything if it can be *tested under adversarial conditions*,
//! so this module provides a seeded, fully reproducible fault injector: a
//! [`FaultPlan`] derived from a single `u64` seed (no wall clock, no
//! ambient RNG) decides, at every registered prover boundary, whether that
//! invocation misbehaves and how.
//!
//! Two layers consult a plan:
//!
//! * **Prover entry crates** register their public budgeted entry point as
//!   a chaos boundary by calling [`boundary`] first thing. When no plan is
//!   armed on the current thread this is a single thread-local counter
//!   load — the fast path the governance benches pin at "no measurable
//!   overhead". When a plan is armed, the boundary may panic, report a
//!   spurious exhaustion, or burn the caller's fuel without progress.
//! * **The dispatcher** polls its own per-prover sites directly (it holds
//!   the plan in its config) and additionally applies the two faults only
//!   it can express: *wrong verdict* (a prover lies `Proved`/`Refuted`)
//!   and fabricated failures in its taxonomy.
//!
//! Determinism: every seeded decision is a pure function of `(seed, site
//! name, obligation key, per-obligation invocation index)` via splitmix64
//! whenever an [`obligation_scope`] is active on the current thread — the
//! dispatcher opens one per obligation, keyed on the obligation's
//! content-derived fingerprint. Scoped keying is what keeps chaos runs
//! bit-for-bit reproducible when obligations are dispatched *in parallel*:
//! the faults an obligation sees depend on what the obligation *is*, never
//! on the order in which worker threads happened to reach the boundary.
//! Outside any scope, decisions fall back to `(seed, site, global per-site
//! invocation index)`, which is reproducible for single-threaded use.
//!
//! Targeted [`FaultPlan::inject`] rules always match against the global
//! per-site invocation counter (tests that drive a dispatcher sequentially
//! rely on ranges like `0..3` spanning successive obligations). Parallel
//! tests should use ranges that are insensitive to arrival order, such as
//! `0..u64::MAX`.
//!
//! The *single-liar rule*: a plan lets at most one site emit wrong-verdict
//! faults (the first site the seeded distribution selects claims the liar
//! role; targeted rules name their liar explicitly). Cross-prover
//! soundness watchdogs — like cross-validating encodings against an
//! independent prover — assume independent failures; a portfolio where
//! *every* member lies has no trusted majority left to appeal to.

use crate::budget::{Budget, Exhaustion};
use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

/// Which way a lying prover lies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lie {
    /// The prover claims the goal is proved.
    ClaimProved,
    /// The prover claims a (fabricated) refutation.
    ClaimRefuted,
}

/// On-disk failure modes for the persistent store's IO boundary (see
/// [`crate::store`]). Each models one way real storage betrays a cache:
/// a crash mid-append, silent media corruption, a filesystem that stops
/// cooperating, or a lock file orphaned by a dead process. The store's
/// recovery ladder must degrade every one of them to a cold (or partial)
/// cache — never to a wrong verdict, a panic, or an unopenable directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DiskFault {
    /// An append writes only a prefix of the record batch before the
    /// "crash": the segment lands on disk with a torn tail.
    TornWrite,
    /// One bit of the encoded batch flips after checksumming — silent
    /// media corruption that only the per-record CRC can catch.
    BitFlip,
    /// A segment read returns fewer bytes than the file holds (the tail
    /// vanishes mid-read).
    ShortRead,
    /// The write fails with ENOSPC-style storage exhaustion.
    NoSpace,
    /// The temp file writes fine but the atomic rename fails, stranding
    /// a `*.tmp` orphan.
    RenameFail,
    /// A lock file from a dead process blocks the directory until the
    /// stale-lock takeover path reclaims it.
    StaleLock,
}

impl std::fmt::Display for DiskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DiskFault::TornWrite => "torn-write",
            DiskFault::BitFlip => "bit-flip",
            DiskFault::ShortRead => "short-read",
            DiskFault::NoSpace => "no-space",
            DiskFault::RenameFail => "rename-fail",
            DiskFault::StaleLock => "stale-lock",
        })
    }
}

/// Failure modes for the out-of-process worker boundary (see
/// [`crate::supervisor`]). Each models one way a child prover process
/// betrays its parent: wedging in a loop the fuel meter cannot see,
/// dying outright, corrupting the reply stream, blowing its memory
/// ceiling, or going quiet without actually hanging. The supervisor must
/// degrade every one of them to a diagnosed failure or an in-process
/// fallback — never to a stuck run or a changed verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpcFault {
    /// The worker stops responding mid-attempt (still beating or not);
    /// only the parent's hard deadline + SIGKILL can end it.
    HungChild,
    /// The worker process dies abruptly mid-attempt.
    KilledChild,
    /// The worker's reply frame arrives with a corrupted checksum.
    GarbledFrame,
    /// The worker suppresses heartbeats and dawdles past the suspect
    /// threshold, then answers normally.
    SlowHeartbeat,
    /// The worker allocates until its `RLIMIT_AS` ceiling aborts it.
    OomChild,
}

impl std::fmt::Display for IpcFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IpcFault::HungChild => "hung-child",
            IpcFault::KilledChild => "killed-child",
            IpcFault::GarbledFrame => "garbled-frame",
            IpcFault::SlowHeartbeat => "slow-heartbeat",
            IpcFault::OomChild => "oom-child",
        })
    }
}

/// Failure modes for the verification service's socket boundary (see
/// `jahob-core::service`). Each models one way a client betrays the
/// daemon: a frame torn mid-write, a connection that goes silent, a
/// client that vanishes mid-request, or one that drains its replies at a
/// crawl. The daemon must degrade every one of them to a dropped
/// *connection* — never to a dropped accepted request, a wedged queue,
/// or a changed verdict for any other client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SocketFault {
    /// A frame arrives (or departs) with a corrupted body: the CRC layer
    /// rejects it and the connection is abandoned.
    TornFrame,
    /// The peer stops sending mid-conversation; only a read timeout ends
    /// the wait.
    HungClient,
    /// The peer disconnects abruptly mid-request.
    Disconnect,
    /// The peer drains replies slowly; writes stall but complete.
    SlowReader,
}

impl std::fmt::Display for SocketFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SocketFault::TornFrame => "torn-frame",
            SocketFault::HungClient => "hung-client",
            SocketFault::Disconnect => "disconnect",
            SocketFault::SlowReader => "slow-reader",
        })
    }
}

/// The injectable failure modes. The first four exercise the existing
/// failure taxonomy; `WrongVerdict` is adversarial and only detectable by
/// cross-checking verdicts; `Disk` faults only apply at the persistent
/// store's IO boundary (prover boundaries and the dispatcher ignore
/// them, exactly as the store ignores prover faults).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The boundary panics (exercises `catch_unwind` isolation).
    Panic,
    /// The boundary reports a wall-clock timeout that never happened.
    Timeout,
    /// The boundary reports fuel exhaustion without burning any fuel.
    Starvation,
    /// The boundary burns all the fuel it was given, makes no progress,
    /// and then reports honest exhaustion — a prover that spins.
    SlowBurn,
    /// The boundary fabricates a verdict. Only the dispatcher can apply
    /// this (entry-crate boundaries ignore it); subject to the
    /// single-liar rule.
    WrongVerdict(Lie),
    /// A disk fault at the persistent store's IO boundary. Only the
    /// store applies these (see [`FaultPlan::decide_disk`]).
    Disk(DiskFault),
    /// A worker-process fault at a `supervisor.*` boundary. Only the
    /// process-isolation backend applies these (see
    /// [`FaultPlan::decide_ipc`]).
    Ipc(IpcFault),
    /// A client-connection fault at a `service.*` boundary. Only the
    /// verification daemon applies these (see
    /// [`FaultPlan::decide_socket`]).
    Socket(SocketFault),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Panic => write!(f, "panic"),
            Fault::Timeout => write!(f, "timeout"),
            Fault::Starvation => write!(f, "starvation"),
            Fault::SlowBurn => write!(f, "slow-burn"),
            Fault::WrongVerdict(Lie::ClaimProved) => write!(f, "wrong-verdict-proved"),
            Fault::WrongVerdict(Lie::ClaimRefuted) => write!(f, "wrong-verdict-refuted"),
            Fault::Disk(d) => write!(f, "disk-{d}"),
            Fault::Ipc(k) => write!(f, "ipc-{k}"),
            Fault::Socket(s) => write!(f, "socket-{s}"),
        }
    }
}

/// A targeted injection rule: fault `fault` fires at site `site` for the
/// invocation indices in `range` (indices count `decide` calls per site,
/// starting at 0).
#[derive(Clone, Debug)]
struct Rule {
    site: String,
    range: Range<u64>,
    fault: Fault,
}

/// The outcome of the shared decision core: a targeted rule matched
/// verbatim, or the seeded distribution fired and the caller maps the raw
/// kind onto its own fault domain (prover faults vs disk faults).
enum RawDecision {
    Rule(Fault),
    Seeded(u64),
}

/// A deterministic fault-injection plan.
///
/// Construct with [`FaultPlan::from_seed`] for seeded chaos (every
/// boundary misbehaves with probability ≈ 1/4, fault kind drawn from the
/// seed) or [`FaultPlan::quiet`] + [`FaultPlan::inject`] for surgical,
/// test-oriented injection at named sites.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Numerator over 256 of the per-invocation injection probability for
    /// the seeded distribution (0 = targeted rules only).
    rate: u16,
    rules: Vec<Rule>,
    /// Per-site invocation counters (site → number of `decide` calls).
    counters: Mutex<HashMap<String, u64>>,
    /// The single site allowed to emit wrong verdicts, claimed by the
    /// first site the seeded distribution selects for lying. Targeted
    /// rules claim the role at plan-construction time.
    liar: Mutex<Option<String>>,
}

/// splitmix64: tiny, high-quality, deterministic mixer (public domain,
/// Steele et al.). All chaos decisions flow through this.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a over the site name: stable across runs and platforms (the
    // sibling FxHasher is stable too, but spelling the fold out keeps the
    // chaos layer's determinism self-evident).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// A seeded chaos plan: every boundary invocation misbehaves with
    /// probability ≈ 1/4, the fault kind drawn deterministically from
    /// `(seed, site, invocation)`.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: 64,
            ..FaultPlan::default()
        }
    }

    /// A plan with no seeded faults; add targeted [`FaultPlan::inject`]
    /// rules to it. Replaces the old `DispatchConfig::inject_panic` hook.
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: fault `fault` fires at `site` for invocation indices in
    /// `range`. A `WrongVerdict` rule claims the liar role for `site`;
    /// adding wrong-verdict rules for two different sites panics (the
    /// single-liar rule is a construction-time invariant for targeted
    /// plans).
    pub fn inject(self, site: &str, range: Range<u64>, fault: Fault) -> FaultPlan {
        if matches!(fault, Fault::WrongVerdict(_)) {
            let mut liar = lock(&self.liar);
            match liar.as_deref() {
                None => *liar = Some(site.to_owned()),
                Some(existing) if existing == site => {}
                Some(existing) => {
                    panic!("single-liar rule: {existing} already lies; cannot also make {site} lie")
                }
            }
            drop(liar);
        }
        let mut plan = self;
        plan.rules.push(Rule {
            site: site.to_owned(),
            range,
            fault,
        });
        plan
    }

    /// Plan from the `JAHOB_CHAOS_SEED` environment variable, if set to a
    /// parseable `u64`.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("JAHOB_CHAOS_SEED").ok()?;
        raw.trim().parse::<u64>().ok().map(FaultPlan::from_seed)
    }

    /// The seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does this plan inject seeded (probabilistic) faults, as opposed to
    /// only targeted rules? Seeded decisions are keyed per obligation, so
    /// layers that share results *across* obligations (the goal cache)
    /// stand down while a seeded plan is armed.
    pub fn is_seeded(&self) -> bool {
        self.rate > 0
    }

    /// The shared decision core: bump the per-site counter, check targeted
    /// rules (which always match on the global counter), then roll the
    /// seeded distribution. Returns either the matched rule's fault or the
    /// raw seeded kind for the caller to map onto its fault domain.
    fn raw_decide(&self, site: &str) -> Option<RawDecision> {
        let index = {
            let mut counters = lock(&self.counters);
            let c = counters.entry(site.to_owned()).or_insert(0);
            let index = *c;
            *c += 1;
            index
        };
        for rule in &self.rules {
            if rule.site == site && rule.range.contains(&index) {
                return Some(RawDecision::Rule(rule.fault));
            }
        }
        if self.rate == 0 {
            return None;
        }
        let roll = match scoped_index(site) {
            Some((key, local)) => splitmix64(
                splitmix64(self.seed ^ site_hash(site)) ^ splitmix64(key) ^ local.rotate_left(32),
            ),
            None => splitmix64(self.seed ^ site_hash(site) ^ splitmix64(index)),
        };
        if (roll & 0xff) as u16 >= self.rate {
            return None;
        }
        Some(RawDecision::Seeded(splitmix64(roll)))
    }

    /// Decide the fate of the next invocation of `site`. Targeted rules
    /// match the global per-site invocation counter (which always
    /// advances); the seeded distribution is keyed on `(seed, site,
    /// obligation key, per-obligation index)` when an [`obligation_scope`]
    /// is active on this thread, and on the global counter otherwise.
    ///
    /// Seeded kinds at prover boundaries never include disk faults —
    /// those are drawn only by [`FaultPlan::decide_disk`] at store sites.
    pub fn decide(&self, site: &str) -> Option<Fault> {
        match self.raw_decide(site)? {
            RawDecision::Rule(fault) => Some(fault),
            RawDecision::Seeded(kind) => Some(match kind % 6 {
                0 => Fault::Panic,
                1 => Fault::Timeout,
                2 => Fault::Starvation,
                3 => Fault::SlowBurn,
                4 => Fault::WrongVerdict(Lie::ClaimProved),
                _ => Fault::WrongVerdict(Lie::ClaimRefuted),
            }),
        }
    }

    /// Decide the fate of the next IO operation at store site `site`.
    /// The seeded distribution maps onto the six [`DiskFault`] kinds;
    /// targeted rules fire only when they name a `Fault::Disk` (a panic
    /// rule aimed at a store site is meaningless and is ignored, exactly
    /// as prover boundaries ignore wrong-verdict rules).
    pub fn decide_disk(&self, site: &str) -> Option<DiskFault> {
        match self.raw_decide(site)? {
            RawDecision::Rule(Fault::Disk(d)) => Some(d),
            RawDecision::Rule(_) => None,
            RawDecision::Seeded(kind) => Some(match kind % 6 {
                0 => DiskFault::TornWrite,
                1 => DiskFault::BitFlip,
                2 => DiskFault::ShortRead,
                3 => DiskFault::NoSpace,
                4 => DiskFault::RenameFail,
                _ => DiskFault::StaleLock,
            }),
        }
    }

    /// Decide the fate of the next worker request at supervisor boundary
    /// `site` (`supervisor.<prover>`). The seeded distribution maps onto
    /// the five [`IpcFault`] kinds; targeted rules fire only when they
    /// name a `Fault::Ipc` (other rule kinds aimed at a supervisor site
    /// are ignored, exactly as store sites ignore prover faults).
    pub fn decide_ipc(&self, site: &str) -> Option<IpcFault> {
        match self.raw_decide(site)? {
            RawDecision::Rule(Fault::Ipc(k)) => Some(k),
            RawDecision::Rule(_) => None,
            RawDecision::Seeded(kind) => Some(match kind % 5 {
                0 => IpcFault::HungChild,
                1 => IpcFault::KilledChild,
                2 => IpcFault::GarbledFrame,
                3 => IpcFault::SlowHeartbeat,
                _ => IpcFault::OomChild,
            }),
        }
    }

    /// Decide the fate of the next connection operation at service
    /// boundary `site` (`service.accept`/`service.read`/`service.write`).
    /// The seeded distribution maps onto the four [`SocketFault`] kinds;
    /// targeted rules fire only when they name a `Fault::Socket` (other
    /// rule kinds aimed at a service site are ignored, exactly as
    /// supervisor sites ignore disk faults).
    pub fn decide_socket(&self, site: &str) -> Option<SocketFault> {
        match self.raw_decide(site)? {
            RawDecision::Rule(Fault::Socket(s)) => Some(s),
            RawDecision::Rule(_) => None,
            RawDecision::Seeded(kind) => Some(match kind % 4 {
                0 => SocketFault::TornFrame,
                1 => SocketFault::HungClient,
                2 => SocketFault::Disconnect,
                _ => SocketFault::SlowReader,
            }),
        }
    }

    /// Enforce the single-liar rule: `site` may emit a wrong verdict only
    /// if it is (or becomes, being the first to ask) the plan's designated
    /// liar. Deterministic for a deterministic run: the portfolio visits
    /// sites in a fixed order, so the same site claims the role on every
    /// replay of the same seed.
    pub fn claim_liar(&self, site: &str) -> bool {
        let mut liar = lock(&self.liar);
        match liar.as_deref() {
            None => {
                *liar = Some(site.to_owned());
                true
            }
            Some(l) => l == site,
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Plans are shared across catch_unwind boundaries; a panic injected
    // *while deciding* cannot happen (decide holds the lock only around
    // pure bookkeeping), but recover from poisoning anyway.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---- thread-local arming -------------------------------------------------
//
// Prover entry crates cannot see the dispatcher's config, so the plan is
// armed on the current thread for the duration of a dispatch. The unarmed
// fast path must cost next to nothing: one thread-local counter load.

thread_local! {
    static ARMED_DEPTH: Cell<u32> = const { Cell::new(0) };
    static ARMED_PLAN: std::cell::RefCell<Vec<Arc<FaultPlan>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Is a fault plan armed on this thread?
#[inline]
pub fn armed() -> bool {
    ARMED_DEPTH.with(|d| d.get() != 0)
}

/// RAII guard returned by [`arm`]; disarms (one level) on drop.
pub struct ArmedGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Arm `plan` on the current thread until the returned guard drops.
/// Nesting is allowed; the innermost plan wins.
pub fn arm(plan: Arc<FaultPlan>) -> ArmedGuard {
    ARMED_PLAN.with(|p| p.borrow_mut().push(plan));
    ARMED_DEPTH.with(|d| d.set(d.get() + 1));
    ArmedGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        ARMED_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        ARMED_PLAN.with(|p| {
            p.borrow_mut().pop();
        });
    }
}

// ---- obligation scopes ---------------------------------------------------
//
// Seeded chaos decisions must not depend on the order in which worker
// threads reach a boundary, or parallel runs stop being reproducible. An
// obligation scope pins the decision key to the obligation being
// dispatched: the dispatcher opens a scope keyed on the obligation's
// content fingerprint, and every boundary crossed until the guard drops
// draws its faults from `(seed, site, obligation key, local index)` with a
// fresh per-scope index counter. Two dispatches of the same obligation —
// on any thread, in any order — therefore see the same fault sequence.

thread_local! {
    static SCOPES: std::cell::RefCell<Vec<ScopeFrame>> = const { std::cell::RefCell::new(Vec::new()) };
}

struct ScopeFrame {
    key: u64,
    counters: HashMap<String, u64>,
}

/// RAII guard returned by [`obligation_scope`]; closes the scope on drop.
pub struct ObligationScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open an obligation scope keyed on `key` (typically the obligation's
/// normalized-goal fingerprint). Nesting is allowed; the innermost scope
/// wins.
pub fn obligation_scope(key: u64) -> ObligationScope {
    SCOPES.with(|s| {
        s.borrow_mut().push(ScopeFrame {
            key,
            counters: HashMap::new(),
        })
    });
    ObligationScope {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ObligationScope {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The innermost scope's `(key, next per-site index)` for `site`, if a
/// scope is active on this thread. Advances the scope-local counter.
fn scoped_index(site: &str) -> Option<(u64, u64)> {
    SCOPES.with(|s| {
        let mut scopes = s.borrow_mut();
        let frame = scopes.last_mut()?;
        let c = frame.counters.entry(site.to_owned()).or_insert(0);
        let local = *c;
        *c += 1;
        Some((frame.key, local))
    })
}

/// Run `f` against the innermost armed plan, if any.
pub fn with_armed<R>(f: impl FnOnce(&FaultPlan) -> R) -> Option<R> {
    if !armed() {
        return None;
    }
    ARMED_PLAN
        .with(|p| p.borrow().last().cloned())
        .map(|p| f(&p))
}

/// Register a prover boundary: the budgeted entry point of a reasoning
/// substrate calls this first. Unarmed, it is a thread-local load and
/// nothing else. Armed, the plan may:
///
/// * panic (the dispatcher's `catch_unwind` must isolate it),
/// * report a spurious [`Exhaustion::Timeout`] or [`Exhaustion::Fuel`],
/// * burn the caller's remaining fuel without progress (slow-burn), then
///   report exhaustion.
///
/// Wrong-verdict faults are ignored here — a generic boundary cannot
/// fabricate domain verdicts; only the dispatcher applies those.
#[inline]
pub fn boundary(site: &str, budget: &Budget) -> Result<(), Exhaustion> {
    if !armed() {
        return Ok(());
    }
    boundary_slow(site, budget)
}

#[cold]
fn boundary_slow(site: &str, budget: &Budget) -> Result<(), Exhaustion> {
    let fault = with_armed(|plan| plan.decide(site)).flatten();
    if let Some(fault) = fault {
        // Contribute to whatever obligation's recorder is scoped on this
        // thread; boundary sites live inside prover crates that have no
        // dispatcher reference. Scoped keying of `decide` keeps these
        // events deterministic under seeded plans.
        crate::obs::record_scoped(|| crate::obs::Event::ChaosInjected {
            site: site.to_owned(),
            fault: fault.to_string(),
        });
    }
    match fault {
        // Wrong-verdict faults are dispatcher-only; disk faults fire only
        // at store IO sites via `decide_disk`; IPC faults only at
        // supervisor boundaries via `decide_ipc`; socket faults only at
        // service boundaries via `decide_socket`. All no-ops here.
        None
        | Some(Fault::WrongVerdict(_))
        | Some(Fault::Disk(_))
        | Some(Fault::Ipc(_))
        | Some(Fault::Socket(_)) => Ok(()),
        Some(Fault::Panic) => panic!("chaos: injected panic at boundary `{site}`"),
        Some(Fault::Timeout) => Err(Exhaustion::Timeout),
        Some(Fault::Starvation) => Err(Exhaustion::Fuel),
        Some(Fault::SlowBurn) => {
            let remaining = budget.fuel_remaining();
            if remaining != crate::budget::INFINITE_FUEL {
                let _ = budget.charge(remaining);
            }
            Err(Exhaustion::Fuel)
        }
    }
}

/// The process-wide chaos seed from `JAHOB_CHAOS_SEED`, cached like
/// `trace_enabled`. `None` when unset or unparseable.
pub fn env_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("JAHOB_CHAOS_SEED")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_reproducible() {
        let a = FaultPlan::from_seed(42);
        let b = FaultPlan::from_seed(42);
        for _ in 0..200 {
            assert_eq!(a.decide("dispatch.bapa"), b.decide("dispatch.bapa"));
            assert_eq!(a.decide("mona.decide"), b.decide("mona.decide"));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::from_seed(1);
        let b = FaultPlan::from_seed(2);
        let seq_a: Vec<_> = (0..256).map(|_| a.decide("s")).collect();
        let seq_b: Vec<_> = (0..256).map(|_| b.decide("s")).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn seeded_rate_is_roughly_a_quarter() {
        let plan = FaultPlan::from_seed(7);
        let fired = (0..4096).filter(|_| plan.decide("x").is_some()).count();
        // 1/4 ± generous slack.
        assert!((512..=1536).contains(&fired), "fired {fired}/4096");
    }

    #[test]
    fn targeted_rules_fire_exactly_in_range() {
        let plan = FaultPlan::quiet().inject("dispatch.lia", 1..3, Fault::Panic);
        assert_eq!(plan.decide("dispatch.lia"), None); // invocation 0
        assert_eq!(plan.decide("dispatch.lia"), Some(Fault::Panic)); // 1
        assert_eq!(plan.decide("dispatch.lia"), Some(Fault::Panic)); // 2
        assert_eq!(plan.decide("dispatch.lia"), None); // 3
        assert_eq!(plan.decide("dispatch.other"), None);
    }

    #[test]
    fn single_liar_rule_claims_once() {
        let plan = FaultPlan::from_seed(3);
        assert!(plan.claim_liar("a"));
        assert!(plan.claim_liar("a"));
        assert!(!plan.claim_liar("b"));
    }

    #[test]
    #[should_panic(expected = "single-liar rule")]
    fn targeted_double_liar_rejected() {
        let _ = FaultPlan::quiet()
            .inject("a", 0..1, Fault::WrongVerdict(Lie::ClaimProved))
            .inject("b", 0..1, Fault::WrongVerdict(Lie::ClaimRefuted));
    }

    #[test]
    fn unarmed_boundary_is_a_no_op() {
        let b = Budget::with_fuel(10);
        assert!(!armed());
        for _ in 0..100 {
            assert_eq!(boundary("anywhere", &b), Ok(()));
        }
        assert_eq!(b.fuel_remaining(), 10);
    }

    #[test]
    fn armed_boundary_applies_faults() {
        let plan = Arc::new(
            FaultPlan::quiet()
                .inject("t.timeout", 0..1, Fault::Timeout)
                .inject("t.starve", 0..1, Fault::Starvation)
                .inject("t.burn", 0..1, Fault::SlowBurn),
        );
        let _g = arm(plan);
        assert!(armed());
        let b = Budget::with_fuel(100);
        assert_eq!(boundary("t.timeout", &b), Err(Exhaustion::Timeout));
        assert_eq!(b.fuel_remaining(), 100);
        assert_eq!(boundary("t.starve", &b), Err(Exhaustion::Fuel));
        assert_eq!(b.fuel_remaining(), 100, "starvation burns nothing");
        assert_eq!(boundary("t.burn", &b), Err(Exhaustion::Fuel));
        assert_eq!(b.fuel_remaining(), 0, "slow-burn drains the budget");
    }

    #[test]
    fn arming_guard_restores() {
        {
            let _g = arm(Arc::new(FaultPlan::quiet()));
            assert!(armed());
        }
        assert!(!armed());
    }

    #[test]
    fn scoped_decisions_ignore_global_arrival_order() {
        // Burn the global counter on plan `a` so the two plans' global
        // per-site counters disagree wildly; inside matching scopes the
        // decisions must still replay identically.
        let a = FaultPlan::from_seed(99);
        let b = FaultPlan::from_seed(99);
        for _ in 0..137 {
            let _ = a.decide("warmup");
            let _ = a.decide("dispatch.smt");
        }
        let seq_a: Vec<_> = {
            let _scope = obligation_scope(0xfeed);
            (0..32).map(|_| a.decide("dispatch.smt")).collect()
        };
        let seq_b: Vec<_> = {
            let _scope = obligation_scope(0xfeed);
            (0..32).map(|_| b.decide("dispatch.smt")).collect()
        };
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn scoped_decisions_differ_across_keys() {
        let plan = FaultPlan::from_seed(5);
        let seq_a: Vec<_> = {
            let _scope = obligation_scope(1);
            (0..256).map(|_| plan.decide("s")).collect()
        };
        let seq_b: Vec<_> = {
            let _scope = obligation_scope(2);
            (0..256).map(|_| plan.decide("s")).collect()
        };
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn scope_guard_restores_global_keying() {
        let a = FaultPlan::from_seed(21);
        let b = FaultPlan::from_seed(21);
        {
            let _scope = obligation_scope(7);
            // Scoped decisions advance the scope-local counter only; the
            // global counter still advances for targeted rules.
            let _ = a.decide("site");
        }
        {
            let _scope = obligation_scope(7);
            let _ = b.decide("site");
        }
        // Back outside any scope: both plans have identical global
        // counters, so the global-keyed stream agrees again.
        let seq_a: Vec<_> = (0..64).map(|_| a.decide("site")).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.decide("site")).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn targeted_rules_match_global_counter_even_inside_scopes() {
        let plan = FaultPlan::quiet().inject("t.rule", 1..2, Fault::Panic);
        let _scope = obligation_scope(42);
        assert_eq!(plan.decide("t.rule"), None); // global invocation 0
        assert_eq!(plan.decide("t.rule"), Some(Fault::Panic)); // 1
        assert_eq!(plan.decide("t.rule"), None); // 2
    }

    #[test]
    fn targeted_ipc_rules_fire_only_via_decide_ipc() {
        let plan = FaultPlan::quiet()
            .inject("supervisor.hol-auto", 0..2, Fault::Ipc(IpcFault::HungChild))
            .inject("supervisor.hol-auto", 2..3, Fault::Panic);
        assert_eq!(
            plan.decide_ipc("supervisor.hol-auto"),
            Some(IpcFault::HungChild)
        );
        assert_eq!(
            plan.decide_ipc("supervisor.hol-auto"),
            Some(IpcFault::HungChild)
        );
        // A prover fault aimed at a supervisor site is inert there.
        assert_eq!(plan.decide_ipc("supervisor.hol-auto"), None);
        // An IPC rule is equally inert at the disk decider, and a generic
        // boundary treats it as a no-op.
        let plan = Arc::new(FaultPlan::quiet().inject("s", 0..10, Fault::Ipc(IpcFault::OomChild)));
        assert_eq!(plan.decide_disk("s"), None);
        let _g = arm(Arc::clone(&plan));
        let b = Budget::unlimited();
        assert_eq!(boundary("s", &b), Ok(()));
    }

    #[test]
    fn seeded_ipc_decisions_replay_and_cover_every_kind() {
        let seed = env_seed().unwrap_or(0) ^ 0x51c3;
        let site = "supervisor.nelson-oppen";
        let roll = |plan: &FaultPlan| -> Vec<Option<IpcFault>> {
            (0..512)
                .map(|i| {
                    let _scope = obligation_scope(i);
                    plan.decide_ipc(site)
                })
                .collect()
        };
        let seq_a = roll(&FaultPlan::from_seed(seed));
        let seq_b = roll(&FaultPlan::from_seed(seed));
        assert_eq!(seq_a, seq_b, "seeded IPC decisions must replay");
        let kinds: std::collections::HashSet<_> = seq_a.into_iter().flatten().collect();
        assert_eq!(
            kinds.len(),
            5,
            "512 rolls must cover all IPC kinds: {kinds:?}"
        );
    }

    #[test]
    fn targeted_socket_rules_fire_only_via_decide_socket() {
        let plan = FaultPlan::quiet()
            .inject("service.read", 0..2, Fault::Socket(SocketFault::TornFrame))
            .inject("service.read", 2..3, Fault::Panic);
        assert_eq!(
            plan.decide_socket("service.read"),
            Some(SocketFault::TornFrame)
        );
        assert_eq!(
            plan.decide_socket("service.read"),
            Some(SocketFault::TornFrame)
        );
        // A prover fault aimed at a service site is inert there.
        assert_eq!(plan.decide_socket("service.read"), None);
        // A socket rule is equally inert at the disk and IPC deciders,
        // and a generic boundary treats it as a no-op.
        let plan =
            Arc::new(FaultPlan::quiet().inject("s", 0..10, Fault::Socket(SocketFault::Disconnect)));
        assert_eq!(plan.decide_disk("s"), None);
        assert_eq!(plan.decide_ipc("s"), None);
        let _g = arm(Arc::clone(&plan));
        let b = Budget::unlimited();
        assert_eq!(boundary("s", &b), Ok(()));
    }

    #[test]
    fn seeded_socket_decisions_replay_and_cover_every_kind() {
        let seed = env_seed().unwrap_or(0) ^ 0x50c7;
        let site = "service.write";
        let roll = |plan: &FaultPlan| -> Vec<Option<SocketFault>> {
            (0..512)
                .map(|i| {
                    let _scope = obligation_scope(i);
                    plan.decide_socket(site)
                })
                .collect()
        };
        let seq_a = roll(&FaultPlan::from_seed(seed));
        let seq_b = roll(&FaultPlan::from_seed(seed));
        assert_eq!(seq_a, seq_b, "seeded socket decisions must replay");
        let kinds: std::collections::HashSet<_> = seq_a.into_iter().flatten().collect();
        assert_eq!(
            kinds.len(),
            4,
            "512 rolls must cover all socket kinds: {kinds:?}"
        );
    }

    #[test]
    fn wrong_verdict_ignored_at_generic_boundary() {
        let plan = Arc::new(FaultPlan::quiet().inject(
            "t.lie",
            0..1,
            Fault::WrongVerdict(Lie::ClaimProved),
        ));
        let _g = arm(plan);
        let b = Budget::unlimited();
        assert_eq!(boundary("t.lie", &b), Ok(()));
    }
}
