//! A small work-stealing thread pool for fanning independent tasks out
//! across worker threads.
//!
//! Jahob's architectural bet (§3 of the paper) is that each proof
//! obligation is independent, so the portfolio can be thrown at all of
//! them at once. This pool is the substrate for that fan-out. It is
//! deliberately tiny and deterministic-friendly:
//!
//! * **Indexed tasks, indexed results.** Every task carries its index in
//!   the submitted item list and writes its result into the slot with the
//!   same index, so callers get results back in submission order no matter
//!   which worker ran what. Parallel callers that need bit-for-bit
//!   reproducible output (the verification pipeline does) re-sort for
//!   free.
//! * **Work stealing.** Items are dealt into per-worker deques in
//!   contiguous chunks; a worker drains its own deque from the front and,
//!   when empty, steals from the *back* of a victim's deque. No task is
//!   ever spawned from inside a task, so "all deques empty" means "no more
//!   work will appear" and idle workers simply exit — there is no parked
//!   thread to wake and no spin loop.
//! * **Panic isolation per task.** A panicking task is caught and reported
//!   as [`TaskPanic`] in its own result slot; the worker carries on with
//!   the next task. One poisoned obligation must never take down the other
//!   N-1.
//! * **Budget-slice inheritance.** When the caller hands in a parent
//!   [`Budget`], each task can derive a child slice via
//!   [`TaskCtx::budget_slice`]: the parent's deadline is inherited and the
//!   parent's remaining fuel is divided fairly over the tasks not yet
//!   started, so an early heavyweight task cannot drain the fuel the rest
//!   of the batch was promised.
//! * **Worker-local state.** [`run_with_local`] gives every worker thread
//!   a locally constructed value (e.g. a parsed program full of un-`Send`
//!   `Rc`s) built once per worker and reused across its tasks. The local
//!   value never crosses a thread boundary, so it needs no `Send` bound.

use crate::budget::{Budget, INFINITE_FUEL};
use crate::counters::Stats;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A task panicked; the payload message stands in for its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Index of the item whose task panicked.
    pub index: usize,
    /// Panic payload rendered as a string (`"non-string panic payload"`
    /// when the payload was neither `&str` nor `String`).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

/// Per-task context handed to the task body.
pub struct TaskCtx<'p> {
    /// Which worker thread is running this task.
    pub worker: usize,
    /// The task's index in the submitted item list.
    pub index: usize,
    parent: Option<&'p Budget>,
    unstarted: &'p AtomicUsize,
}

impl TaskCtx<'_> {
    /// Derive a fair budget slice from the pool's parent budget, if one was
    /// provided: the parent's deadline is inherited and the parent's
    /// remaining fuel is split evenly over the tasks that have not started
    /// yet (this one included). Returns `None` when the pool is ungoverned.
    pub fn budget_slice(&self) -> Option<Budget> {
        self.parent.map(|parent| {
            let pending = self.unstarted.load(Ordering::Relaxed).max(1) as u64;
            let remaining = parent.fuel_remaining();
            let fair = if remaining == INFINITE_FUEL {
                INFINITE_FUEL
            } else {
                (remaining / pending).max(1)
            };
            parent.child(None, fair)
        })
    }
}

/// Run `f` over `items` on `workers` threads. Results come back in
/// submission order; a panicking task yields `Err(TaskPanic)` in its slot.
pub fn run<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(&TaskCtx<'_>, T) -> R + Sync,
{
    run_governed(workers, None, items, f)
}

/// [`run`] with an optional parent budget for [`TaskCtx::budget_slice`].
pub fn run_governed<T, R, F>(
    workers: usize,
    parent: Option<&Budget>,
    items: Vec<T>,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(&TaskCtx<'_>, T) -> R + Sync,
{
    run_with_local(workers, parent, items, |_| (), |(), cx, item| f(cx, item))
}

/// The full-featured entry point: like [`run_governed`], but every worker
/// thread first builds a local value with `init(worker_id)` and hands a
/// mutable reference to it to each task it runs. The local value is
/// constructed *on* the worker thread and never leaves it, so it may
/// contain non-`Send` data (`Rc`-heavy ASTs, caches, scratch buffers).
pub fn run_with_local<L, T, R, I, F>(
    workers: usize,
    parent: Option<&Budget>,
    items: Vec<T>,
    init: I,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> L + Sync,
    F: Fn(&mut L, &TaskCtx<'_>, T) -> R + Sync,
{
    run_with_local_observed(workers, parent, None, items, init, f)
}

/// [`run_with_local`] plus pool-level telemetry: when `stats` is given,
/// the pool records `pool.tasks` (one per task executed) and
/// `pool.steals` (tasks a worker pulled from a victim's deque instead of
/// its own). `pool.steals` is inherently schedule-dependent — consumers
/// comparing runs must exclude the `pool.` group, as the verification
/// pipeline's `deterministic_lines` does.
pub fn run_with_local_observed<L, T, R, I, F>(
    workers: usize,
    parent: Option<&Budget>,
    stats: Option<&Stats>,
    items: Vec<T>,
    init: I,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    I: Fn(usize) -> L + Sync,
    F: Fn(&mut L, &TaskCtx<'_>, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);

    // Deal items into per-worker deques in contiguous chunks so each
    // worker starts on its own run of indices and steals only when idle.
    let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let chunk = n.div_ceil(workers);
    {
        let mut qs: Vec<_> = queues.iter_mut().map(|q| q.get_mut().unwrap()).collect();
        for (i, item) in items.into_iter().enumerate() {
            qs[(i / chunk).min(workers - 1)].push_back((i, item));
        }
    }

    let results: Vec<Mutex<Option<Result<R, TaskPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let unstarted = AtomicUsize::new(n);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let results = &results;
            let unstarted = &unstarted;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut local = init(w);
                loop {
                    // Own deque first (front), then steal from a victim's
                    // back; all deques empty means no work will ever
                    // appear again (tasks do not spawn tasks), so exit.
                    // The own-queue guard must drop before stealing: a
                    // guard held across the victim locks deadlocks two
                    // idle workers stealing from each other (ABBA).
                    let mut stolen = false;
                    let own = queues[w].lock().unwrap().pop_front();
                    let next = own.or_else(|| {
                        (1..workers)
                            .map(|d| (w + d) % workers)
                            .find_map(|v| queues[v].lock().unwrap().pop_back())
                            .inspect(|_| stolen = true)
                    });
                    let Some((index, item)) = next else { break };
                    if let Some(stats) = stats {
                        stats.bump("pool.tasks");
                        if stolen {
                            stats.bump("pool.steals");
                        }
                    }
                    unstarted.fetch_sub(1, Ordering::Relaxed);
                    let cx = TaskCtx {
                        worker: w,
                        index,
                        parent,
                        unstarted,
                    };
                    let out = catch_unwind(AssertUnwindSafe(|| f(&mut local, &cx, item))).map_err(
                        |payload| TaskPanic {
                            index,
                            message: panic_message(payload.as_ref()).to_owned(),
                        },
                    );
                    *results[index].lock().unwrap() = Some(out);
                }
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner().unwrap().unwrap_or(Err(TaskPanic {
                index: i,
                message: "task was never run".to_owned(),
            }))
        })
        .collect()
}

/// Render a caught panic payload as a message string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_submission_order() {
        for workers in [1, 2, 4, 9] {
            let out = run(workers, (0..50).collect(), |_cx, i: u64| i * 2);
            let got: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(got, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out = run(4, Vec::<u32>::new(), |_cx, i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = run(16, vec![1u32, 2], |_cx, i| i + 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Ok(2));
        assert_eq!(out[1], Ok(3));
    }

    #[test]
    fn panics_are_isolated_per_task() {
        let out = run(3, (0..10).collect(), |_cx, i: u32| {
            if i == 4 {
                panic!("boom on {i}");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 4 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("boom on 4"), "{err}");
            } else {
                assert_eq!(*r, Ok(i as u32));
            }
        }
    }

    #[test]
    fn idle_workers_steal_from_busy_ones() {
        // Two workers, all heavy items dealt to worker 0's chunk. If
        // stealing works, worker 1 picks up part of the chunk and more
        // than one distinct worker id shows up.
        let seen: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        let out = run(2, (0..64).collect(), |cx, i: u64| {
            seen[cx.worker].fetch_add(1, Ordering::Relaxed);
            // Give the scheduler a chance to interleave.
            std::thread::yield_now();
            i
        });
        assert!(out.iter().all(|r| r.is_ok()));
        let counts: Vec<u64> = seen.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(counts.iter().sum::<u64>(), 64);
        // Stealing is scheduler-dependent; on a single-core box worker 0
        // may legitimately finish everything. Only require that no task
        // was lost and the distribution sums up — the determinism tests
        // pin the interesting property (identical results either way).
    }

    #[test]
    fn concurrent_stealing_does_not_deadlock() {
        // Regression: the own-queue guard was once held across the victim
        // locks (one statement, one temporary), so two workers that went
        // idle together and stole from each other deadlocked ABBA-style.
        // Small batches with more workers than items force every worker
        // into the steal path at once, repeatedly.
        for round in 0..64 {
            let out = run(8, (0..3u64).collect(), |_cx, i| {
                std::thread::yield_now();
                i
            });
            assert_eq!(out.len(), 3, "round {round}");
            assert!(out.iter().all(|r| r.is_ok()), "round {round}");
        }
    }

    #[test]
    fn budget_slices_inherit_and_divide() {
        let parent = Budget::with_fuel(1000);
        let out = run_governed(2, Some(&parent), (0..4).collect(), |cx, _i: u32| {
            let slice = cx.budget_slice().expect("governed pool");
            let fuel = slice.fuel_remaining();
            assert!(fuel >= 1, "fair share is never zero");
            assert!(fuel <= 1000, "slice cannot exceed the parent");
            // Burn the slice, not the parent: the parent is only drained
            // by what tasks explicitly charge back.
            let _ = slice.charge(fuel.min(10));
            fuel
        });
        assert!(out.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn ungoverned_pool_has_no_budget() {
        let out = run(2, vec![0u32], |cx, _| cx.budget_slice().is_none());
        assert_eq!(out[0], Ok(true));
    }

    #[test]
    fn observed_pool_counts_every_task() {
        let stats = Stats::new();
        let out = run_with_local_observed(
            3,
            None,
            Some(&stats),
            (0..40).collect(),
            |_| (),
            |(), _cx, i: u64| i,
        );
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(stats.get("pool.tasks"), 40);
        // Steals are scheduler-dependent; they can only be bounded.
        assert!(stats.get("pool.steals") <= 40);
    }

    #[test]
    fn worker_local_state_is_built_once_per_worker() {
        let inits = AtomicU64::new(0);
        let out = run_with_local(
            3,
            None,
            (0..30).collect(),
            |w| {
                inits.fetch_add(1, Ordering::Relaxed);
                // Worker-local scratch: (worker id, tasks run so far).
                (w, 0u64)
            },
            |local, cx, i: u64| {
                local.1 += 1;
                assert_eq!(local.0, cx.worker);
                i
            },
        );
        assert!(out.iter().all(|r| r.is_ok()));
        let built = inits.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&built),
            "one local per spawned worker, got {built}"
        );
    }
}
