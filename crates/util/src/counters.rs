//! Lightweight named statistics counters.
//!
//! The dispatcher and the benchmark harness report how often each decision
//! procedure was invoked, succeeded, or gave up. Counters are cheap atomic
//! increments grouped in a [`Stats`] value that can be snapshotted and
//! rendered as a table.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A set of named monotone counters.
///
/// Counter names are organized as `group.key` by convention, e.g.
/// `mona.proved`, `bapa.venn_regions`.
#[derive(Default)]
pub struct Stats {
    counters: Mutex<BTreeMap<String, AtomicU64>>,
}

impl Stats {
    /// A fresh, all-zero stats table.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Add `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&self, name: &str, delta: u64) {
        let map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        drop(map);
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment counter `name` by one.
    pub fn bump(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Reset every counter to zero (keeps the names).
    pub fn reset(&self) {
        for (_, v) in self.counters.lock().unwrap().iter() {
            v.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.snapshot() {
            writeln!(f, "{name:<40} {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_get() {
        let s = Stats::new();
        assert_eq!(s.get("x"), 0);
        s.bump("x");
        s.bump("x");
        s.add("x", 3);
        assert_eq!(s.get("x"), 5);
    }

    #[test]
    fn snapshot_sorted() {
        let s = Stats::new();
        s.bump("b.two");
        s.bump("a.one");
        let snap = s.snapshot();
        assert_eq!(snap[0].0, "a.one");
        assert_eq!(snap[1].0, "b.two");
    }

    #[test]
    fn reset_zeroes() {
        let s = Stats::new();
        s.add("k", 7);
        s.reset();
        assert_eq!(s.get("k"), 0);
    }

    #[test]
    fn concurrent_bumps() {
        use std::sync::Arc;
        let s = Arc::new(Stats::new());
        s.bump("n"); // pre-create so all threads take the fast path
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.bump("n");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.get("n"), 8001);
    }

    #[test]
    fn display_renders_all() {
        let s = Stats::new();
        s.bump("mona.proved");
        s.bump("bapa.proved");
        let out = s.to_string();
        assert!(out.contains("mona.proved"));
        assert!(out.contains("bapa.proved"));
    }
}
