//! Crash-safe append-only segment store for the persistent goal cache.
//!
//! The store persists opaque `(key, payload)` records — the goal cache's
//! proved entries and eviction tombstones — across process boundaries,
//! with one non-negotiable invariant mirrored from the chaos suite:
//!
//! > corruption, torn writes, ENOSPC, vanished files, or concurrent
//! > processes degrade to a **cold cache**, never to a wrong verdict or
//! > a crashed run.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/MANIFEST            format version + semantic-config digest
//! <dir>/LOCK                advisory PID lock (held while a writer is open)
//! <dir>/seg-00000000.log    append-only record segments, replayed in order
//! <dir>/seg-00000001.log
//! <dir>/seg-00000003.log.corrupt   quarantined unreadable segment
//! ```
//!
//! Every segment starts with an 8-byte magic and then a sequence of
//! records framed as `[len: u32 LE][crc32: u32 LE][body]` where the body
//! is `[key: u128 LE][flags: u8][payload bytes]` (flag bit 0 marks a
//! tombstone). The CRC covers the body; `len` is the body length and is
//! sanity-capped, so a torn tail is detected by length, checksum, or
//! truncation and simply dropped. Segments are never modified in place:
//! each flush serializes a fresh segment to `*.tmp`, fsyncs it, and
//! atomically renames it into place, so readers never observe a
//! half-written segment under a crash at any instruction boundary.
//!
//! # Invalidation
//!
//! The `MANIFEST` records the store [`FORMAT_VERSION`] and a caller
//! -supplied semantic digest (prover configuration + code version). A
//! mismatch on open resets the store: entries proved under different
//! semantics are never replayed. Resetting cached data is always safe —
//! the next run just re-proves.
//!
//! # Recovery ladder (on open)
//!
//! 1. orphaned `*.tmp` files from interrupted flushes are deleted;
//! 2. a missing/garbled/mismatched `MANIFEST` resets the store;
//! 3. each segment is scanned record-by-record: a bad length, CRC
//!    mismatch, or truncation drops that record and the rest of the
//!    segment (torn tail);
//! 4. a segment that cannot be read at all, or whose magic is wrong, is
//!    quarantined by renaming to `*.corrupt` and skipped;
//! 5. whatever records survive are replayed in segment order.
//!
//! # Concurrency
//!
//! A `LOCK` file holding the writer's PID provides advisory mutual
//! exclusion. A lock whose PID is no longer alive (checked via
//! `/proc/<pid>`) is stale and taken over; a live holder demotes this
//! open to read-only — entries load, flushes are skipped.
//!
//! # Fault injection
//!
//! The store threads an optional [`FaultPlan`] through every IO
//! operation and consults [`FaultPlan::decide_disk`] at the `store.load`
//! / `store.flush` / `store.lock` sites. Each site applies the fault
//! kinds that are physically meaningful for it (a torn write cannot
//! happen during a read) and ignores the rest, exactly as prover
//! boundaries ignore wrong-verdict faults.

use crate::chaos::{DiskFault, FaultPlan};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::OnceLock;

/// Bumped whenever the record framing or manifest layout changes; a
/// mismatch on open resets the store rather than misparsing old bytes.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every segment file. A segment without them is not
/// ours (or had its head destroyed) and is quarantined wholesale.
const SEGMENT_MAGIC: &[u8; 8] = b"JHSEG\x00\x00\x01";

/// Upper bound on a single record body; anything larger is framing
/// corruption, not data (goal-cache payloads are ~30 bytes).
const MAX_RECORD_LEN: u32 = 1 << 20;

/// Chaos sites for the store's three IO boundaries.
const SITE_LOAD: &str = "store.load";
const SITE_FLUSH: &str = "store.flush";
const SITE_LOCK: &str = "store.lock";

/// One persisted cache operation: a proved entry (`tombstone == false`,
/// payload = encoded proof metadata) or an eviction (`tombstone == true`,
/// empty payload). Replay applies records in order; later records win.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The goal-cache fingerprint this record is keyed on.
    pub key: u128,
    /// `true` erases `key` on replay (watchdog-evicted entry).
    pub tombstone: bool,
    /// Opaque payload; the goal cache owns the encoding.
    pub payload: Vec<u8>,
}

impl Record {
    /// A proved-entry record.
    pub fn entry(key: u128, payload: Vec<u8>) -> Record {
        Record {
            key,
            tombstone: false,
            payload,
        }
    }

    /// An eviction tombstone.
    pub fn tombstone(key: u128) -> Record {
        Record {
            key,
            tombstone: true,
            payload: Vec::new(),
        }
    }

    /// Serialized frame size of this record (header + body).
    pub fn frame_len(&self) -> u64 {
        8 + 17 + self.payload.len() as u64
    }
}

/// How the advisory lock was (or wasn't) acquired on open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockState {
    /// The lock was free and is now held by this store.
    Acquired,
    /// A stale lock (dead PID) was removed and the lock re-acquired.
    TookOverStale,
    /// Another live process holds the lock; this store loads entries but
    /// never writes.
    ReadOnly,
}

impl LockState {
    /// Short stable label for observability events.
    pub fn label(self) -> &'static str {
        match self {
            LockState::Acquired => "acquired",
            LockState::TookOverStale => "took-over-stale",
            LockState::ReadOnly => "read-only",
        }
    }
}

/// What [`Store::open`] found and did, for observability and tests.
#[derive(Debug)]
pub struct OpenReport {
    /// Surviving records in replay order (across segments).
    pub records: Vec<Record>,
    /// Segments read successfully (fully or up to a torn tail).
    pub segments: u64,
    /// Records dropped to torn/corrupt tails.
    pub dropped: u64,
    /// Segments quarantined to `*.corrupt`.
    pub quarantined: u64,
    /// `Some(reason)` when the store was reset (version/digest mismatch,
    /// unreadable manifest); existing segments were discarded.
    pub reset: Option<String>,
    /// Advisory-lock outcome.
    pub lock: LockState,
}

/// A handle on an open store directory. Dropping the handle releases the
/// advisory lock. All mutation goes through [`Store::append`], which
/// writes a whole new segment atomically.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    next_segment: u64,
    lock: LockState,
    plan: Option<Arc<FaultPlan>>,
}

impl Store {
    /// Open (creating if necessary) the store at `dir`, keyed by the
    /// caller's semantic `digest`. Never replays entries recorded under a
    /// different digest or format version. Hard-errors only when the
    /// directory itself cannot be created or listed — every data-level
    /// problem degrades per the recovery ladder and is reported in the
    /// [`OpenReport`].
    pub fn open(
        dir: &Path,
        digest: u64,
        plan: Option<Arc<FaultPlan>>,
    ) -> io::Result<(Store, OpenReport)> {
        fs::create_dir_all(dir)?;
        let lock = acquire_lock(dir, plan.as_deref())?;

        // Sweep orphaned temp files from interrupted flushes. Only when
        // we hold the lock: a live writer's in-flight temp is not ours.
        if lock != LockState::ReadOnly {
            for path in list_dir(dir)? {
                if path.extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(&path);
                }
            }
        }

        let reset = check_manifest(dir, digest, lock)?;
        let mut report = OpenReport {
            records: Vec::new(),
            segments: 0,
            dropped: 0,
            quarantined: 0,
            reset,
            lock,
        };

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for path in list_dir(dir)? {
            if let Some(index) = segment_index(&path) {
                segments.push((index, path));
            }
        }
        segments.sort();
        let next_segment = segments.last().map_or(0, |(i, _)| i + 1);

        if report.reset.is_some() {
            // A reset with the lock held already deleted the segments; a
            // read-only reset cannot, but must still refuse to replay
            // entries recorded under foreign semantics.
            segments.clear();
        }
        for (_, path) in segments {
            match read_segment(&path, plan.as_deref()) {
                Ok((records, dropped)) => {
                    report.segments += 1;
                    report.dropped += dropped;
                    report.records.extend(records);
                }
                Err(_) => {
                    // Unreadable or wrong magic: quarantine. If even the
                    // rename fails the segment is simply skipped — it will
                    // be retried (and likely re-quarantined) next open.
                    let mut corrupt = path.clone().into_os_string();
                    corrupt.push(".corrupt");
                    if lock != LockState::ReadOnly && fs::rename(&path, &corrupt).is_ok() {
                        report.quarantined += 1;
                    }
                }
            }
        }

        Ok((
            Store {
                dir: dir.to_owned(),
                next_segment,
                lock,
                plan,
            },
            report,
        ))
    }

    /// The advisory-lock outcome this handle opened with.
    pub fn lock_state(&self) -> LockState {
        self.lock
    }

    /// `true` when another live process holds the lock; appends are
    /// rejected and the caller should skip flushing.
    pub fn read_only(&self) -> bool {
        self.lock == LockState::ReadOnly
    }

    /// Append `records` as one new segment, written atomically
    /// (temp + fsync + rename). Returns the bytes written. An empty batch
    /// writes nothing. Errors leave the store directory consistent: the
    /// worst outcome of a failed append is an orphaned temp file (swept
    /// on next open) or a torn segment tail (dropped on next open).
    pub fn append(&mut self, records: &[Record]) -> io::Result<u64> {
        if records.is_empty() {
            return Ok(0);
        }
        if self.read_only() {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "store is read-only: another live process holds the lock",
            ));
        }

        let fault = self
            .plan
            .as_deref()
            .and_then(|plan| plan.decide_disk(SITE_FLUSH));
        if matches!(fault, Some(DiskFault::NoSpace)) {
            // Model ENOSPC at write time: nothing lands on disk.
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected ENOSPC at store.flush",
            ));
        }

        let mut buf: Vec<u8> = Vec::with_capacity(
            SEGMENT_MAGIC.len()
                + records
                    .iter()
                    .map(|r| r.frame_len() as usize)
                    .sum::<usize>(),
        );
        buf.extend_from_slice(SEGMENT_MAGIC);
        for record in records {
            encode_record(record, &mut buf);
        }

        if matches!(fault, Some(DiskFault::BitFlip)) {
            // Flip one payload bit AFTER checksumming, modeling silent
            // media corruption: the write "succeeds" and the damage is
            // caught by CRC on the next open.
            let at = SEGMENT_MAGIC.len() + 8 + 4; // first record's body
            if at < buf.len() {
                buf[at] ^= 0x10;
            }
        }
        if matches!(fault, Some(DiskFault::TornWrite)) {
            // Model a crash mid-write: only a prefix reaches the disk,
            // but the rename completed (journal reordering). The torn
            // tail must be dropped by the next open.
            let keep = SEGMENT_MAGIC.len() + (buf.len() - SEGMENT_MAGIC.len()) / 2;
            buf.truncate(keep.max(SEGMENT_MAGIC.len() + 9));
        }

        let name = format!("seg-{:08}.log", self.next_segment);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let dst = self.dir.join(&name);
        let written = buf.len() as u64;
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        if matches!(fault, Some(DiskFault::RenameFail)) {
            // The temp file is complete but never published; it is swept
            // as an orphan on the next open.
            return Err(io::Error::other(
                "chaos: injected rename failure at store.flush",
            ));
        }
        fs::rename(&tmp, &dst)?;
        // Publishing the rename durably requires fsyncing the directory.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.next_segment += 1;

        if matches!(fault, Some(DiskFault::TornWrite)) {
            // The torn prefix is on disk under the final name; surface
            // the failure so the caller can count it.
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "chaos: injected torn write at store.flush",
            ));
        }
        Ok(written)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if self.lock != LockState::ReadOnly {
            let _ = fs::remove_file(self.dir.join("LOCK"));
        }
    }
}

// ---------------------------------------------------------------------
// Record framing

fn encode_record(record: &Record, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(17 + record.payload.len());
    body.extend_from_slice(&record.key.to_le_bytes());
    body.push(record.tombstone as u8);
    body.extend_from_slice(&record.payload);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
}

/// Decode records from `bytes` (after the segment magic). Returns the
/// surviving records and the count of dropped torn-tail records (0 or 1
/// detectable frames — everything after the first bad frame is
/// unframeable, so the drop count tallies frames we *know* were lost,
/// which is what the obs events report).
fn decode_records(mut bytes: &[u8]) -> (Vec<Record>, u64) {
    let mut records = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 8 {
            return (records, 1); // torn header
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if !(17..=MAX_RECORD_LEN).contains(&len) || bytes.len() < 8 + len as usize {
            return (records, 1); // corrupt length or truncated body
        }
        let body = &bytes[8..8 + len as usize];
        if crc32(body) != crc {
            return (records, 1); // checksum mismatch
        }
        let mut key = [0u8; 16];
        key.copy_from_slice(&body[..16]);
        records.push(Record {
            key: u128::from_le_bytes(key),
            tombstone: body[16] & 1 != 0,
            payload: body[17..].to_vec(),
        });
        bytes = &bytes[8 + len as usize..];
    }
    (records, 0)
}

/// Read one segment file. `Err` means the segment is unreadable or not
/// ours (wrong magic) — the caller quarantines it. A torn tail is NOT an
/// error: the readable prefix is returned with the drop count.
fn read_segment(path: &Path, plan: Option<&FaultPlan>) -> io::Result<(Vec<Record>, u64)> {
    let fault = plan.and_then(|p| p.decide_disk(SITE_LOAD));
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    match fault {
        Some(DiskFault::ShortRead) => {
            // Model a truncated read (bad sector, vanished tail).
            bytes.truncate(bytes.len() / 2);
        }
        Some(DiskFault::BitFlip) => {
            // Model silent media corruption on the read path.
            let at = bytes.len().saturating_sub(1) / 2;
            if let Some(b) = bytes.get_mut(at) {
                *b ^= 0x04;
            }
        }
        _ => {} // write-side and lock-side kinds are meaningless here
    }
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad segment magic",
        ));
    }
    Ok(decode_records(&bytes[SEGMENT_MAGIC.len()..]))
}

fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if digits.len() == 8 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

fn list_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    Ok(paths)
}

// ---------------------------------------------------------------------
// Manifest

/// Validate (or initialize) the manifest. Returns `Some(reason)` when the
/// store had to be reset: segments deleted, fresh manifest written.
fn check_manifest(dir: &Path, digest: u64, lock: LockState) -> io::Result<Option<String>> {
    let path = dir.join("MANIFEST");
    let have_segments = list_dir(dir)?.iter().any(|p| segment_index(p).is_some());
    let reason = match fs::read_to_string(&path) {
        Ok(text) => match parse_manifest(&text) {
            Some((FORMAT_VERSION, d)) if d == digest => None,
            Some((FORMAT_VERSION, _)) => Some("config digest changed".to_owned()),
            Some((v, _)) => Some(format!("format version {v} != {FORMAT_VERSION}")),
            None => Some("unreadable manifest".to_owned()),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            if have_segments {
                // Segments without a manifest cannot be trusted: the
                // digest they were recorded under is unknown.
                Some("manifest missing with segments present".to_owned())
            } else {
                // Pristine directory: initialize silently.
                if lock != LockState::ReadOnly {
                    write_manifest(dir, digest)?;
                }
                None
            }
        }
        Err(e) => Some(format!("manifest unreadable: {e}")),
    };
    if reason.is_some() && lock != LockState::ReadOnly {
        // A read-only open cannot reset someone else's store; it just
        // refuses to replay (segments are skipped because `reason` is
        // reported and the caller starts cold anyway).
        for path in list_dir(dir)? {
            if segment_index(&path).is_some() {
                let _ = fs::remove_file(&path);
            }
        }
        write_manifest(dir, digest)?;
    }
    Ok(reason)
}

fn parse_manifest(text: &str) -> Option<(u32, u64)> {
    let mut version = None;
    let mut digest = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("format ") {
            version = v.trim().parse::<u32>().ok();
        } else if let Some(d) = line.strip_prefix("digest ") {
            digest = u64::from_str_radix(d.trim(), 16).ok();
        }
    }
    Some((version?, digest?))
}

fn write_manifest(dir: &Path, digest: u64) -> io::Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let dst = dir.join("MANIFEST");
    {
        let mut file = File::create(&tmp)?;
        write!(
            file,
            "jahob-store\nformat {FORMAT_VERSION}\ndigest {digest:016x}\n"
        )?;
        file.sync_all()?;
    }
    fs::rename(&tmp, &dst)
}

// ---------------------------------------------------------------------
// Advisory lock

/// Acquire the advisory PID lock at `<dir>/LOCK`. A missing lock is
/// created; a lock naming a dead PID is stale and taken over (once); a
/// live holder demotes to [`LockState::ReadOnly`].
fn acquire_lock(dir: &Path, plan: Option<&FaultPlan>) -> io::Result<LockState> {
    acquire_lock_with(dir, plan, &pid_alive)
}

/// [`acquire_lock`] with an injectable liveness probe, so the takeover
/// and demotion paths are testable without fabricating real PIDs.
fn acquire_lock_with(
    dir: &Path,
    plan: Option<&FaultPlan>,
    probe: &dyn Fn(u32) -> bool,
) -> io::Result<LockState> {
    if let Some(DiskFault::StaleLock) = plan.and_then(|p| p.decide_disk(SITE_LOCK)) {
        // Fabricate a crashed writer: a LOCK naming a PID that is long
        // dead, forcing this open through the takeover path.
        let _ = fs::write(dir.join("LOCK"), "999999999\n");
    }
    let path = dir.join("LOCK");
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                let _ = writeln!(file, "{}", std::process::id());
                let _ = file.sync_all();
                return Ok(if attempt == 0 {
                    LockState::Acquired
                } else {
                    LockState::TookOverStale
                });
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let stale = match holder {
                    // Our own PID means another handle in this very
                    // process holds the lock — definitely alive.
                    Some(pid) if pid == std::process::id() => false,
                    Some(pid) => !probe(pid),
                    // An unparseable lock body is a torn lock write from
                    // a crashed holder: stale.
                    None => true,
                };
                if stale && attempt == 0 {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                return Ok(LockState::ReadOnly);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(LockState::ReadOnly)
}

/// Is the lock-holding PID still alive? Compile-time dispatch: the
/// `/proc` probe only exists on Linux, so other platforms must not use
/// it — a `/proc`-less OS would report every holder dead and let two
/// live processes both take write ownership of the same segment dir.
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// Non-Linux unix: probe with `kill(pid, 0)`. The raw syscall is
/// declared inline because the workspace has no deps (no `libc`).
/// `0` or `EPERM` (the process exists but belongs to someone else)
/// both mean alive; only `ESRCH` proves the holder is gone. Any other
/// errno is "can't tell", which conservatively counts as alive — we
/// demote to read-only rather than risk corrupting a live writer.
#[cfg(all(unix, not(target_os = "linux")))]
fn pid_alive(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let pid = match i32::try_from(pid) {
        Ok(p) if p > 0 => p,
        _ => return true, // unrepresentable holder: can't tell, assume live
    };
    if unsafe { kill(pid, 0) } == 0 {
        return true;
    }
    const ESRCH: i32 = 3; // same value on every unix we could run on
    std::io::Error::last_os_error().raw_os_error() != Some(ESRCH)
}

/// No portable liveness probe at all: every holder looks alive, so a
/// crashed writer's lock pins later opens to read-only until removed by
/// hand. Safe (never corrupts), merely conservative.
#[cfg(not(unix))]
fn pid_alive(_pid: u32) -> bool {
    true
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected). Hand-rolled: the workspace has no deps.

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32/IEEE over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("jahob-store-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(n: u8) -> Record {
        Record::entry(
            0x1111_0000_0000_0000_0000_0000_0000_0000u128 + n as u128,
            vec![n; 5],
        )
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let (mut store, report) = Store::open(&dir, 7, None).unwrap();
            assert_eq!(report.lock, LockState::Acquired);
            assert!(report.records.is_empty());
            store.append(&[sample(1), sample(2)]).unwrap();
            store
                .append(&[Record::tombstone(sample(1).key), sample(3)])
                .unwrap();
        }
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.reset, None);
        assert_eq!(report.records.len(), 4);
        assert!(report.records[2].tombstone);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_mismatch_resets() {
        let dir = temp_dir("digest");
        {
            let (mut store, _) = Store::open(&dir, 7, None).unwrap();
            store.append(&[sample(1)]).unwrap();
        }
        let (_store, report) = Store::open(&dir, 8, None).unwrap();
        assert!(report.reset.is_some(), "digest change must reset");
        assert!(report.records.is_empty());
        drop(_store);
        // And the reset is durable: reopening under the new digest is clean.
        let (_store, report) = Store::open(&dir, 8, None).unwrap();
        assert_eq!(report.reset, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        {
            let (mut store, _) = Store::open(&dir, 7, None).unwrap();
            store.append(&[sample(1), sample(2), sample(3)]).unwrap();
        }
        // Chop the last 10 bytes off the segment, as a crash mid-write
        // would (if rename had still landed).
        let seg = dir.join("seg-00000000.log");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 10]).unwrap();
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_is_caught_by_crc() {
        let dir = temp_dir("flip");
        {
            let (mut store, _) = Store::open(&dir, 7, None).unwrap();
            store.append(&[sample(1)]).unwrap();
        }
        let seg = dir.join("seg-00000000.log");
        let mut bytes = fs::read(&seg).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.records.len(), 0);
        assert_eq!(report.dropped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_segment_is_quarantined() {
        let dir = temp_dir("garbage");
        {
            let (mut store, _) = Store::open(&dir, 7, None).unwrap();
            store.append(&[sample(1)]).unwrap();
        }
        fs::write(dir.join("seg-00000001.log"), b"not a segment at all").unwrap();
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.records.len(), 1, "good segment still loads");
        assert_eq!(report.quarantined, 1);
        assert!(dir.join("seg-00000001.log.corrupt").exists());
        drop(_store);
        // The quarantined file never comes back.
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_lock_demotes_to_read_only() {
        let dir = temp_dir("lock");
        let (mut writer, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.lock, LockState::Acquired);
        writer.append(&[sample(1)]).unwrap();
        // Second open while the first handle is alive: read-only, but the
        // entries still load.
        let (mut reader, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.lock, LockState::ReadOnly);
        assert_eq!(report.records.len(), 1);
        assert!(reader.append(&[sample(2)]).is_err());
        drop(reader);
        // The reader's drop must NOT release the writer's lock.
        assert!(dir.join("LOCK").exists());
        drop(writer);
        assert!(!dir.join("LOCK").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_taken_over() {
        let dir = temp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("LOCK"), "999999999\n").unwrap();
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.lock, LockState::TookOverStale);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_says_dead_takes_over_stale_lock() {
        // Through the probe seam, independent of the host OS's notion of
        // PID liveness: a holder the probe declares dead is taken over.
        let dir = temp_dir("seam-dead");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("LOCK"), "12345\n").unwrap();
        let state = acquire_lock_with(&dir, None, &|_| false).unwrap();
        assert_eq!(state, LockState::TookOverStale);
        // The takeover rewrote the lock with our own PID.
        let body = fs::read_to_string(dir.join("LOCK")).unwrap();
        assert_eq!(body.trim().parse::<u32>().unwrap(), std::process::id());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_says_alive_demotes_to_read_only() {
        // "Can't tell" and "alive" both report true from the probe (the
        // non-Linux fallbacks): the open must demote, never steal.
        let dir = temp_dir("seam-live");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("LOCK"), "12345\n").unwrap();
        let state = acquire_lock_with(&dir, None, &|_| true).unwrap();
        assert_eq!(state, LockState::ReadOnly);
        // The live holder's lock file is untouched.
        let body = fs::read_to_string(dir.join("LOCK")).unwrap();
        assert_eq!(body.trim(), "12345");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lock_is_stale_without_consulting_the_probe() {
        use std::cell::Cell;
        let dir = temp_dir("seam-torn");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("LOCK"), "not a pid").unwrap();
        let asked = Cell::new(false);
        let state = acquire_lock_with(&dir, None, &|_| {
            asked.set(true);
            true
        })
        .unwrap();
        assert_eq!(state, LockState::TookOverStale);
        assert!(!asked.get(), "torn lock bodies are stale by definition");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn own_pid_holder_is_live_without_consulting_the_probe() {
        use std::cell::Cell;
        let dir = temp_dir("seam-own");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("LOCK"), format!("{}\n", std::process::id())).unwrap();
        let asked = Cell::new(false);
        let state = acquire_lock_with(&dir, None, &|_| {
            asked.set(true);
            false
        })
        .unwrap();
        assert_eq!(state, LockState::ReadOnly);
        assert!(!asked.get(), "our own PID is alive by definition");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_tmp_files_are_swept() {
        let dir = temp_dir("orphan");
        {
            let (mut store, _) = Store::open(&dir, 7, None).unwrap();
            store.append(&[sample(1)]).unwrap();
        }
        fs::write(dir.join("seg-00000099.log.tmp"), b"half-written").unwrap();
        let (_store, report) = Store::open(&dir, 7, None).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(!dir.join("seg-00000099.log.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_injected_disk_fault_degrades_cleanly() {
        use crate::chaos::Fault;
        for fault in [
            DiskFault::TornWrite,
            DiskFault::BitFlip,
            DiskFault::ShortRead,
            DiskFault::NoSpace,
            DiskFault::RenameFail,
            DiskFault::StaleLock,
        ] {
            let dir = temp_dir("chaos");
            // Seed the store cleanly first.
            {
                let (mut store, _) = Store::open(&dir, 7, None).unwrap();
                store.append(&[sample(1), sample(2)]).unwrap();
            }
            let plan = Arc::new(
                FaultPlan::quiet()
                    .inject(SITE_FLUSH, 0..u64::MAX, Fault::Disk(fault))
                    .inject(SITE_LOAD, 0..u64::MAX, Fault::Disk(fault))
                    .inject(SITE_LOCK, 0..u64::MAX, Fault::Disk(fault)),
            );
            // Open under the fault: never panics, never hard-errors.
            let (mut store, _report) = Store::open(&dir, 7, Some(Arc::clone(&plan))).unwrap();
            // Appending may fail (ENOSPC, torn write, rename) but must
            // not panic and must leave the directory reopenable.
            let _ = store.append(&[sample(3)]);
            drop(store);
            let (_store, report) = Store::open(&dir, 7, None).unwrap();
            // Whatever survived is well-formed; the store works again.
            for r in &report.records {
                assert!(r.payload.len() <= 5, "fault {fault} corrupted a payload");
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
