//! First-order axiomatization of reachability — the [52] component.
//!
//! `rtrancl_pt (% x y. f x = y) s t` atoms are replaced by applications of a
//! fresh reachability predicate `$reach_f(s, t)`, and axiom schemas that are
//! *sound* for the intended interpretation (R = reflexive-transitive closure
//! of the functional edge `x ↦ f x`) are added:
//!
//! 1. `∀x. R(x, x)`                                  (reflexivity)
//! 2. `∀x y z. R(x,y) ∧ R(y,z) → R(x,z)`             (transitivity)
//! 3. `∀x. R(x, f x)`                                 (step)
//! 4. `∀x y. R(x,y) → x = y ∨ R(f x, y)`              (unfold first step)
//! 5. `∀x y z. R(x,y) ∧ R(x,z) → R(y,z) ∨ R(z,y)`     (chain linearity —
//!    sound because `f` is a function)
//!
//! Full transitive closure is not first-order axiomatizable ([61], [52]); the
//! schemas make the prover *incomplete but sound*: derived refutations hold
//! in every model of the axioms, which include all intended heap models.
//!
//! Updated fields: a lambda body `fieldWrite f a b x = y` introduces a fresh
//! function symbol `u` with bridging axioms `u(a) = b` and
//! `∀x. x ≠ a → u(x) = f(x)`, then reachability over `u` as above.
//!
//! `tree [...]` atoms are abstracted to opaque propositional constants —
//! sound in both polarities because an uninterpreted atom only weakens the
//! derivable consequences.

use jahob_logic::{form::sym, BinOp, Form, Sort};
use jahob_util::{FxHashMap, Symbol};
use std::rc::Rc;

/// Rewrite reachability/tree atoms and return the needed axioms.
pub fn prepare(goal: &Form, _sig: &FxHashMap<Symbol, Sort>) -> (Form, Vec<Form>) {
    let mut cx = ReachCx {
        reach_funs: Vec::new(),
        update_count: 0,
        update_axioms: Vec::new(),
        tree_count: 0,
    };
    let rewritten = cx.rewrite(goal);
    let mut axioms = cx.update_axioms.clone();
    for f in &cx.reach_funs {
        axioms.extend(reach_axioms(*f));
    }
    (rewritten, axioms)
}

struct ReachCx {
    /// Edge functions with registered reachability predicates.
    reach_funs: Vec<Symbol>,
    update_count: u32,
    update_axioms: Vec<Form>,
    tree_count: u32,
}

/// The reachability predicate name for edge function `f`.
pub fn reach_pred(f: Symbol) -> Symbol {
    Symbol::intern(&format!("$reach_{f}"))
}

impl ReachCx {
    fn register(&mut self, f: Symbol) {
        if !self.reach_funs.contains(&f) {
            self.reach_funs.push(f);
        }
    }

    /// Try to read a lambda as a functional edge: `% x y. F x = y` where `F`
    /// is a plain function symbol, or `% x y. fieldWrite f a b x = y`.
    /// Returns the edge-function symbol to use.
    fn edge_function(&mut self, lambda: &Form) -> Option<Symbol> {
        let Form::Lambda(binders, body) = lambda else {
            return None;
        };
        if binders.len() != 2 {
            return None;
        }
        let (x, y) = (binders[0].0, binders[1].0);
        let Form::Binop(BinOp::Eq, lhs, rhs) = body.as_ref() else {
            return None;
        };
        // rhs must be the second binder.
        if rhs.as_ref() != &Form::Var(y) {
            return None;
        }
        match lhs.as_ref() {
            // f x = y.
            Form::App(head, args) if args.len() == 1 && args[0] == Form::Var(x) => {
                match head.as_ref() {
                    Form::Var(f) if f.as_str() == sym::FIELD_WRITE => None,
                    Form::Var(f) => {
                        self.register(*f);
                        Some(*f)
                    }
                    _ => None,
                }
            }
            // fieldWrite f a b x = y.
            Form::App(head, args) if args.len() == 4 && args[3] == Form::Var(x) => {
                let Form::Var(fw) = head.as_ref() else {
                    return None;
                };
                if fw.as_str() != sym::FIELD_WRITE {
                    return None;
                }
                let Form::Var(base) = &args[0] else {
                    return None;
                };
                // The update point and value must not mention the binders.
                for t in &args[1..3] {
                    let fv = t.free_vars();
                    if fv.contains(&x) || fv.contains(&y) {
                        return None;
                    }
                }
                let u = Symbol::intern(&format!("$upd{}_{base}", self.update_count));
                self.update_count += 1;
                let at = self.rewrite(&args[1]);
                let val = self.rewrite(&args[2]);
                // u(at) = val.
                self.update_axioms
                    .push(Form::eq(Form::app(Form::Var(u), vec![at.clone()]), val));
                // ∀x. x ≠ at → u(x) = base(x).
                let xv = Symbol::intern("$ux");
                self.update_axioms.push(Form::forall(
                    vec![(xv, Sort::Obj)],
                    Form::implies(
                        Form::ne(Form::Var(xv), at),
                        Form::eq(
                            Form::app(Form::Var(u), vec![Form::Var(xv)]),
                            Form::app(Form::Var(*base), vec![Form::Var(xv)]),
                        ),
                    ),
                ));
                self.register(u);
                Some(u)
            }
            _ => None,
        }
    }

    fn rewrite(&mut self, form: &Form) -> Form {
        // Reachability atoms.
        if let Some(args) = form.as_app_of(Symbol::intern(sym::RTRANCL)) {
            if args.len() == 3 {
                if let Some(f) = self.edge_function(&args[0]) {
                    let s = self.rewrite(&args[1]);
                    let t = self.rewrite(&args[2]);
                    return Form::app(Form::Var(reach_pred(f)), vec![s, t]);
                }
            }
        }
        match form {
            Form::Tree(fields) => {
                // Opaque proposition per tree atom (keyed by the printed
                // field terms, so syntactically equal atoms coincide).
                let name: String = fields
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("_")
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect();
                self.tree_count += 1;
                Form::Var(Symbol::intern(&format!("$tree_{name}")))
            }
            Form::Var(_) | Form::IntLit(_) | Form::BoolLit(_) | Form::Null | Form::EmptySet => {
                form.clone()
            }
            Form::FiniteSet(es) => Form::FiniteSet(es.iter().map(|e| self.rewrite(e)).collect()),
            Form::And(ps) => Form::and(ps.iter().map(|p| self.rewrite(p)).collect()),
            Form::Or(ps) => Form::or(ps.iter().map(|p| self.rewrite(p)).collect()),
            Form::Unop(op, a) => Form::Unop(*op, Rc::new(self.rewrite(a))),
            Form::Old(a) => Form::Old(Rc::new(self.rewrite(a))),
            Form::Binop(op, a, b) => Form::binop(*op, self.rewrite(a), self.rewrite(b)),
            Form::Ite(c, t, e) => Form::Ite(
                Rc::new(self.rewrite(c)),
                Rc::new(self.rewrite(t)),
                Rc::new(self.rewrite(e)),
            ),
            Form::App(h, args) => Form::app(
                self.rewrite(h),
                args.iter().map(|a| self.rewrite(a)).collect(),
            ),
            Form::Quant(k, bs, body) => Form::Quant(*k, bs.clone(), Rc::new(self.rewrite(body))),
            Form::Lambda(bs, body) => Form::Lambda(bs.clone(), Rc::new(self.rewrite(body))),
            Form::Compr(x, s, body) => Form::Compr(*x, s.clone(), Rc::new(self.rewrite(body))),
        }
    }
}

/// The axiom schemas for `$reach_f`.
fn reach_axioms(f: Symbol) -> Vec<Form> {
    let r = reach_pred(f);
    let rel = |a: Form, b: Form| Form::app(Form::Var(r), vec![a, b]);
    let fx = |a: Form| Form::app(Form::Var(f), vec![a]);
    let x = Symbol::intern("$rx");
    let y = Symbol::intern("$ry");
    let z = Symbol::intern("$rz");
    let vx = Form::Var(x);
    let vy = Form::Var(y);
    let vz = Form::Var(z);
    vec![
        // Reflexivity.
        Form::forall(vec![(x, Sort::Obj)], rel(vx.clone(), vx.clone())),
        // Transitivity.
        Form::forall(
            vec![(x, Sort::Obj), (y, Sort::Obj), (z, Sort::Obj)],
            Form::implies(
                Form::and(vec![
                    rel(vx.clone(), vy.clone()),
                    rel(vy.clone(), vz.clone()),
                ]),
                rel(vx.clone(), vz.clone()),
            ),
        ),
        // Step.
        Form::forall(vec![(x, Sort::Obj)], rel(vx.clone(), fx(vx.clone()))),
        // Unfold first step.
        Form::forall(
            vec![(x, Sort::Obj), (y, Sort::Obj)],
            Form::implies(
                rel(vx.clone(), vy.clone()),
                Form::or(vec![
                    Form::eq(vx.clone(), vy.clone()),
                    rel(fx(vx.clone()), vy.clone()),
                ]),
            ),
        ),
        // Chain linearity (soundness uses functionality of f).
        Form::forall(
            vec![(x, Sort::Obj), (y, Sort::Obj), (z, Sort::Obj)],
            Form::implies(
                Form::and(vec![
                    rel(vx.clone(), vy.clone()),
                    rel(vx.clone(), vz.clone()),
                ]),
                Form::or(vec![
                    rel(vy.clone(), vz.clone()),
                    rel(vz.clone(), vy.clone()),
                ]),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol_valid;
    use jahob_logic::form;

    fn sig() -> FxHashMap<Symbol, Sort> {
        FxHashMap::default()
    }

    fn valid(src: &str) -> bool {
        fol_valid(&form(src), &sig()).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    #[test]
    fn reach_reflexive_and_step() {
        assert!(valid("rtrancl_pt (% x y. next x = y) a a"));
        assert!(valid("rtrancl_pt (% x y. next x = y) a (next a)"));
        assert!(valid("rtrancl_pt (% x y. next x = y) a (next (next a))"));
    }

    #[test]
    fn reach_transitive() {
        assert!(valid(
            "rtrancl_pt (% x y. next x = y) a b & rtrancl_pt (% x y. next x = y) b c \
             --> rtrancl_pt (% x y. next x = y) a c"
        ));
    }

    #[test]
    fn reach_not_symmetric() {
        assert!(!valid(
            "rtrancl_pt (% x y. next x = y) a b --> rtrancl_pt (% x y. next x = y) b a"
        ));
    }

    #[test]
    fn reach_unfold() {
        assert!(valid(
            "rtrancl_pt (% x y. next x = y) a b & a ~= b \
             --> rtrancl_pt (% x y. next x = y) (next a) b"
        ));
    }

    #[test]
    fn reach_linearity() {
        assert!(valid(
            "rtrancl_pt (% x y. next x = y) a b & rtrancl_pt (% x y. next x = y) a c \
             --> rtrancl_pt (% x y. next x = y) b c | rtrancl_pt (% x y. next x = y) c b"
        ));
    }

    #[test]
    fn updated_field_reachability() {
        // After next[a := b], a reaches b in one step.
        assert!(valid("rtrancl_pt (% x y. fieldWrite next a b x = y) a b"));
        // Unchanged entries still step: c ≠ a → c reaches next c.
        assert!(valid(
            "c ~= a --> rtrancl_pt (% x y. fieldWrite next a b x = y) c (next c)"
        ));
    }

    #[test]
    fn tree_atoms_are_opaque() {
        // tree hypotheses do not break clausification, and identical atoms
        // cancel.
        assert!(valid("tree [f1] --> tree [f1]"));
        assert!(!valid("tree [f1] --> tree [g1]"));
    }

    #[test]
    fn prepare_produces_axioms() {
        let (rewritten, axioms) = prepare(
            &form("rtrancl_pt (% x y. next x = y) a b"),
            &FxHashMap::default(),
        );
        assert!(rewritten
            .as_app_of(reach_pred(Symbol::intern("next")))
            .is_some());
        assert_eq!(axioms.len(), 5);
    }
}
