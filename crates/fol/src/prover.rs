//! The given-clause saturation loop: binary resolution + factoring, with
//! equality axioms, forward subsumption, and effort limits.

use crate::clause::{eq_pred, signature, Clause, Literal};
use crate::term::{matches, unify, FTerm, Subst};
use jahob_util::budget::{Budget, Exhaustion};
use std::collections::{BinaryHeap, VecDeque};

/// Effort limits for the saturation loop.
#[derive(Clone, Debug)]
pub struct ProverConfig {
    /// Stop after this many given-clause iterations.
    pub max_iterations: usize,
    /// Discard derived clauses larger than this (symbol count).
    pub max_clause_size: usize,
    /// Stop when the clause database exceeds this.
    pub max_clauses: usize,
    /// Discard derived clauses containing terms nested deeper than this —
    /// blocks runaway `f(f(f(...)))` chains from the step axioms.
    pub max_term_depth: usize,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_iterations: 4000,
            max_clause_size: 24,
            max_clauses: 20000,
            max_term_depth: 4,
        }
    }
}

/// Result of a saturation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProveResult {
    /// Derived the empty clause: the input set is unsatisfiable.
    Proved,
    /// Effort limits reached or saturated without refutation.
    GaveUp,
}

/// Priority-queue entry: smaller clauses first.
struct Queued(Clause);

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.0.size() == other.0.size()
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for smallest-first.
        other.0.size().cmp(&self.0.size())
    }
}

/// Equality axioms for the symbols occurring in the problem.
fn equality_axioms(clauses: &[Clause]) -> Vec<Clause> {
    let uses_eq = clauses
        .iter()
        .any(|c| c.literals.iter().any(|l| l.pred == eq_pred()));
    if !uses_eq {
        return Vec::new();
    }
    let eq = eq_pred();
    let mut axioms = Vec::new();
    let lit = |positive, pred, args: Vec<FTerm>| Literal {
        positive,
        pred,
        args,
    };
    // Reflexivity: x = x.
    axioms.push(Clause {
        literals: vec![lit(true, eq, vec![FTerm::Var(0), FTerm::Var(0)])],
    });
    // Symmetry: x ≠ y ∨ y = x.
    axioms.push(Clause {
        literals: vec![
            lit(false, eq, vec![FTerm::Var(0), FTerm::Var(1)]),
            lit(true, eq, vec![FTerm::Var(1), FTerm::Var(0)]),
        ],
    });
    // Transitivity: x ≠ y ∨ y ≠ z ∨ x = z.
    axioms.push(Clause {
        literals: vec![
            lit(false, eq, vec![FTerm::Var(0), FTerm::Var(1)]),
            lit(false, eq, vec![FTerm::Var(1), FTerm::Var(2)]),
            lit(true, eq, vec![FTerm::Var(0), FTerm::Var(2)]),
        ],
    });
    // Congruence schemas.
    let (funs, preds) = signature(clauses);
    for (f, arity) in funs {
        let xs: Vec<FTerm> = (0..arity as u32).map(FTerm::Var).collect();
        let ys: Vec<FTerm> = (0..arity as u32)
            .map(|i| FTerm::Var(i + arity as u32))
            .collect();
        let mut literals: Vec<Literal> = (0..arity)
            .map(|i| lit(false, eq, vec![xs[i].clone(), ys[i].clone()]))
            .collect();
        literals.push(lit(
            true,
            eq,
            vec![FTerm::Fun(f, xs.clone()), FTerm::Fun(f, ys.clone())],
        ));
        axioms.push(Clause { literals });
    }
    for (p, arity) in preds {
        let xs: Vec<FTerm> = (0..arity as u32).map(FTerm::Var).collect();
        let ys: Vec<FTerm> = (0..arity as u32)
            .map(|i| FTerm::Var(i + arity as u32))
            .collect();
        let mut literals: Vec<Literal> = (0..arity)
            .map(|i| lit(false, eq, vec![xs[i].clone(), ys[i].clone()]))
            .collect();
        literals.push(lit(false, p, xs.clone()));
        literals.push(lit(true, p, ys.clone()));
        axioms.push(Clause { literals });
    }
    axioms
}

/// Does `general` subsume `specific` (∃θ. general·θ ⊆ specific)?
fn subsumes(general: &Clause, specific: &Clause) -> bool {
    if general.literals.len() > specific.literals.len() {
        return false;
    }
    fn rec(glits: &[Literal], specific: &Clause, subst: &Subst) -> bool {
        let Some((first, rest)) = glits.split_first() else {
            return true;
        };
        for target in &specific.literals {
            if target.positive != first.positive
                || target.pred != first.pred
                || target.args.len() != first.args.len()
            {
                continue;
            }
            let mut candidate = subst.clone();
            let ok = first
                .args
                .iter()
                .zip(&target.args)
                .all(|(p, t)| matches(p, t, &mut candidate));
            if ok && rec(rest, specific, &candidate) {
                return true;
            }
        }
        false
    }
    rec(&general.literals, specific, &Subst::new())
}

/// Literal indices eligible for resolution under negative selection: when a
/// clause has negative literals, only its first negative literal is
/// selected; otherwise every (positive) literal is eligible. Refutationally
/// complete and prunes the search space dramatically.
fn selected(clause: &Clause) -> Vec<usize> {
    match clause.literals.iter().position(|l| !l.positive) {
        Some(i) => vec![i],
        None => {
            // Positive clause: resolve only on maximal-size literals — an
            // ordered-resolution style restriction that keeps the search
            // tractable.
            let max = clause.literals.iter().map(Literal::size).max().unwrap();
            clause
                .literals
                .iter()
                .enumerate()
                .filter(|(_, l)| l.size() == max)
                .map(|(i, _)| i)
                .collect()
        }
    }
}

/// All binary resolvents of `a` and `b` (variables renamed apart), with
/// negative selection on both sides.
fn resolvents(a: &Clause, b: &Clause) -> Vec<Clause> {
    let offset = a.num_vars();
    let b_shifted: Vec<Literal> = b.literals.iter().map(|l| l.shift(offset)).collect();
    let mut out = Vec::new();
    for i in selected(a) {
        let la = &a.literals[i];
        for j in selected(b) {
            let lb = &b_shifted[j];
            if la.positive == lb.positive || la.pred != lb.pred || la.args.len() != lb.args.len() {
                continue;
            }
            let mut subst = Subst::new();
            let unified = la
                .args
                .iter()
                .zip(&lb.args)
                .all(|(x, y)| unify(x, y, &mut subst));
            if !unified {
                continue;
            }
            let mut literals = Vec::new();
            for (k, l) in a.literals.iter().enumerate() {
                if k != i {
                    literals.push(l.apply(&subst));
                }
            }
            for (k, l) in b_shifted.iter().enumerate() {
                if k != j {
                    literals.push(l.apply(&subst));
                }
            }
            out.push(Clause { literals });
        }
    }
    out
}

/// Positive factors of a clause (unify two positive literals); negative
/// factoring is unnecessary under negative selection.
fn factors(c: &Clause) -> Vec<Clause> {
    if c.literals.iter().any(|l| !l.positive) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..c.literals.len() {
        for j in (i + 1)..c.literals.len() {
            let (li, lj) = (&c.literals[i], &c.literals[j]);
            if li.positive != lj.positive || li.pred != lj.pred || li.args.len() != lj.args.len() {
                continue;
            }
            let mut subst = Subst::new();
            let unified = li
                .args
                .iter()
                .zip(&lj.args)
                .all(|(x, y)| unify(x, y, &mut subst));
            if !unified {
                continue;
            }
            let literals: Vec<Literal> = c
                .literals
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != j)
                .map(|(_, l)| l.apply(&subst))
                .collect();
            out.push(Clause { literals });
        }
    }
    out
}

/// Like [`prove`] but printing every given clause (debugging aid).
pub fn prove_trace(input: Vec<Clause>, config: &ProverConfig) -> ProveResult {
    prove_inner(input, config, true, &Budget::unlimited())
        .expect("unlimited budget cannot be exhausted")
}

/// Run the given-clause loop on the input set (plus equality axioms).
pub fn prove(input: Vec<Clause>, config: &ProverConfig) -> ProveResult {
    prove_inner(input, config, false, &Budget::unlimited())
        .expect("unlimited budget cannot be exhausted")
}

/// Budgeted given-clause loop: one fuel unit per iteration, with the
/// deadline polled cooperatively. `Err` means the budget ran dry before the
/// configured effort limits did — distinguishable from an honest `GaveUp`.
pub fn prove_budgeted(
    input: Vec<Clause>,
    config: &ProverConfig,
    budget: &Budget,
) -> Result<ProveResult, Exhaustion> {
    jahob_util::chaos::boundary("fol.prove", budget)?;
    prove_inner(input, config, false, budget)
}

fn prove_inner(
    input: Vec<Clause>,
    config: &ProverConfig,
    trace: bool,
    budget: &Budget,
) -> Result<ProveResult, Exhaustion> {
    let mut passive: BinaryHeap<Queued> = BinaryHeap::new();
    let axioms = equality_axioms(&input);
    // The reflexivity axiom `x = x` must bypass normalize(): its tautology
    // rule deletes `t = t` clauses, which is exactly right for *derived*
    // clauses (they are redundant once reflexivity is present) but would
    // delete the axiom itself.
    for c in axioms {
        passive.push(Queued(c));
    }
    for c in input {
        match c.normalize() {
            None => {}
            Some(c) if c.is_empty() => return Ok(ProveResult::Proved),
            Some(c) => passive.push(Queued(c)),
        }
    }
    let mut active: Vec<Clause> = Vec::new();
    let mut old_queue: std::collections::VecDeque<Clause> = VecDeque::new();
    let mut total = passive.len();

    for iteration in 0..config.max_iterations {
        budget.check()?;
        // Age/weight alternation: mostly smallest-first, but every fifth
        // pick takes the oldest clause so heavy clauses are not starved.
        let given = if iteration % 5 == 4 {
            old_queue
                .pop_front()
                .or_else(|| passive.pop().map(|Queued(c)| c))
        } else {
            passive.pop().map(|Queued(c)| c)
        };
        if trace {
            if let Some(g) = &given {
                eprintln!("GIVEN: {g}");
            }
        }
        let Some(given) = given else {
            // Saturated without the empty clause: consistent input (within
            // the equality axiomatization), so the refutation fails.
            return Ok(ProveResult::GaveUp);
        };
        if given.is_empty() {
            return Ok(ProveResult::Proved);
        }
        // Forward subsumption (short clauses only — cost control).
        if active
            .iter()
            .any(|a| a.literals.len() <= 3 && subsumes(a, &given))
        {
            continue;
        }
        // Generate.
        let mut fresh: Vec<Clause> = Vec::new();
        for other in active.iter().chain(std::iter::once(&given)) {
            fresh.extend(resolvents(&given, other));
        }
        fresh.extend(factors(&given));
        active.push(given);

        for c in fresh {
            let Some(c) = c.normalize() else {
                continue;
            };
            if trace {
                eprintln!("  DERIVED: {c}");
            }
            if c.is_empty() {
                return Ok(ProveResult::Proved);
            }
            if c.size() > config.max_clause_size {
                continue;
            }
            let too_deep = c
                .literals
                .iter()
                .any(|l| l.args.iter().any(|t| t.depth() > config.max_term_depth));
            if too_deep {
                continue;
            }
            if active
                .iter()
                .any(|a| a.literals.len() <= 3 && subsumes(a, &c))
            {
                continue;
            }
            old_queue.push_back(c.clone());
            passive.push(Queued(c));
            total += 1;
            if total > config.max_clauses {
                return Ok(ProveResult::GaveUp);
            }
        }
    }
    Ok(ProveResult::GaveUp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::clausify;
    use jahob_logic::{form, Form};

    fn proves(hypotheses: &[&str], goal: &str) -> bool {
        let mut clauses = Vec::new();
        for h in hypotheses {
            clauses.extend(clausify(&form(h)).unwrap());
        }
        clauses.extend(clausify(&Form::not(form(goal))).unwrap());
        prove(clauses, &ProverConfig::default()) == ProveResult::Proved
    }

    #[test]
    fn modus_ponens() {
        assert!(proves(&["p a", "ALL x. p x --> q x"], "q a"));
        assert!(!proves(&["q a", "ALL x. p x --> q x"], "p a"));
    }

    #[test]
    fn syllogism_chain() {
        assert!(proves(
            &[
                "ALL x. p x --> q x",
                "ALL x. q x --> r x",
                "ALL x. r x --> s x",
                "p a"
            ],
            "s a"
        ));
    }

    #[test]
    fn existential_goal() {
        assert!(proves(&["p a"], "EX x. p x"));
        assert!(!proves(&[], "EX x. p x & ~(p x)"));
    }

    #[test]
    fn equality_reasoning() {
        assert!(proves(&["a = b", "p a"], "p b"));
        assert!(proves(&["a = b", "b = c"], "a = c"));
        assert!(proves(&["a = b"], "f a = f b"));
        assert!(!proves(&["f a = f b"], "a = b"));
    }

    #[test]
    fn symmetric_equality() {
        assert!(proves(&["a = b"], "b = a"));
    }

    #[test]
    fn resolution_with_function_terms() {
        // ∀x. p(x) → p(f(x)) with p(a) proves p(f(f(a))).
        assert!(proves(&["p a", "ALL x. p x --> p (f x)"], "p (f (f a))"));
    }

    #[test]
    fn drinker_paradox() {
        // ∃x. (p(x) → ∀y. p(y)) — classic; requires factoring.
        let goal = form("EX x. p x --> (ALL y. p y)");
        let clauses = clausify(&Form::not(goal)).unwrap();
        assert_eq!(
            prove(clauses, &ProverConfig::default()),
            ProveResult::Proved
        );
    }

    #[test]
    fn relations_and_transitivity() {
        assert!(proves(
            &[
                "ALL x y z. r x y & r y z --> r x z",
                "r a b",
                "r b c",
                "r c d"
            ],
            "r a d"
        ));
        assert!(!proves(
            &["ALL x y z. r x y & r y z --> r x z", "r a b"],
            "r b a"
        ));
    }

    #[test]
    fn gives_up_gracefully_on_satisfiable() {
        // p(a) alone cannot prove q(a); saturation terminates.
        assert!(!proves(&["p a"], "q a"));
    }

    #[test]
    fn budget_cuts_saturation_short() {
        use jahob_util::budget::{Budget, Exhaustion};
        // Transitivity chain needs real iterations; 1 fuel unit is not
        // enough, but the answer is still reachable with a fresh budget.
        let mut clauses = Vec::new();
        for h in [
            "ALL x y z. r x y & r y z --> r x z",
            "r a b",
            "r b c",
            "r c d",
        ] {
            clauses.extend(clausify(&form(h)).unwrap());
        }
        clauses.extend(clausify(&Form::not(form("r a d"))).unwrap());
        let tiny = Budget::with_fuel(1);
        assert_eq!(
            prove_budgeted(clauses.clone(), &ProverConfig::default(), &tiny),
            Err(Exhaustion::Fuel)
        );
        assert_eq!(
            prove_budgeted(clauses, &ProverConfig::default(), &Budget::unlimited()),
            Ok(ProveResult::Proved)
        );
    }

    #[test]
    fn subsumption_works() {
        // p(x) subsumes p(a) | q(b).
        let general = clausify(&form("ALL x. p x")).unwrap().remove(0);
        let specific = clausify(&form("p a | q b")).unwrap().remove(0);
        assert!(subsumes(&general, &specific));
        assert!(!subsumes(&specific, &general));
    }
}
