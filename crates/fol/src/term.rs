//! First-order terms, substitutions, and unification.

use jahob_util::{FxHashMap, Symbol};
use std::fmt;

/// A first-order term: a variable (de-Bruijn-free numeric id) or a function
/// application (constants are zero-ary applications).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FTerm {
    Var(u32),
    Fun(Symbol, Vec<FTerm>),
}

impl FTerm {
    pub fn constant(name: Symbol) -> FTerm {
        FTerm::Fun(name, Vec::new())
    }

    /// All variables occurring in the term.
    pub fn vars(&self, out: &mut Vec<u32>) {
        match self {
            FTerm::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            FTerm::Fun(_, args) => {
                for a in args {
                    a.vars(out);
                }
            }
        }
    }

    /// Does variable `v` occur in this term?
    pub fn occurs(&self, v: u32) -> bool {
        match self {
            FTerm::Var(w) => *w == v,
            FTerm::Fun(_, args) => args.iter().any(|a| a.occurs(v)),
        }
    }

    /// Apply a substitution.
    pub fn apply(&self, subst: &Subst) -> FTerm {
        match self {
            FTerm::Var(v) => match subst.get(*v) {
                Some(t) => t.apply(subst),
                None => self.clone(),
            },
            FTerm::Fun(f, args) => FTerm::Fun(*f, args.iter().map(|a| a.apply(subst)).collect()),
        }
    }

    /// Rename all variables by adding `offset`.
    pub fn shift(&self, offset: u32) -> FTerm {
        match self {
            FTerm::Var(v) => FTerm::Var(v + offset),
            FTerm::Fun(f, args) => FTerm::Fun(*f, args.iter().map(|a| a.shift(offset)).collect()),
        }
    }

    /// Maximum nesting depth (for effort limits).
    pub fn depth(&self) -> usize {
        match self {
            FTerm::Var(_) => 1,
            FTerm::Fun(_, args) => 1 + args.iter().map(FTerm::depth).max().unwrap_or(0),
        }
    }

    /// Term size (for effort limits).
    pub fn size(&self) -> usize {
        match self {
            FTerm::Var(_) => 1,
            FTerm::Fun(_, args) => 1 + args.iter().map(FTerm::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for FTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTerm::Var(v) => write!(f, "?{v}"),
            FTerm::Fun(name, args) if args.is_empty() => write!(f, "{name}"),
            FTerm::Fun(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A substitution: bindings from variable ids to terms. Bindings may chain
/// (triangular form); [`FTerm::apply`] follows chains.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    map: FxHashMap<u32, FTerm>,
}

impl Subst {
    pub fn new() -> Self {
        Subst::default()
    }

    pub fn get(&self, v: u32) -> Option<&FTerm> {
        self.map.get(&v)
    }

    pub fn bind(&mut self, v: u32, t: FTerm) {
        self.map.insert(v, t);
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resolve a variable through binding chains to its representative term.
    fn walk(&self, t: &FTerm) -> FTerm {
        let mut current = t.clone();
        while let FTerm::Var(v) = current {
            match self.map.get(&v) {
                Some(bound) => current = bound.clone(),
                None => return FTerm::Var(v),
            }
        }
        current
    }
}

/// Robinson unification: extend `subst` so `a` and `b` become equal; returns
/// false (leaving the substitution in an unspecified extended state) when
/// they do not unify — callers clone beforehand.
pub fn unify(a: &FTerm, b: &FTerm, subst: &mut Subst) -> bool {
    let a = subst.walk(a);
    let b = subst.walk(b);
    match (a, b) {
        (FTerm::Var(v), FTerm::Var(w)) if v == w => true,
        (FTerm::Var(v), t) | (t, FTerm::Var(v)) => {
            if t.apply(subst).occurs(v) {
                return false;
            }
            subst.bind(v, t);
            true
        }
        (FTerm::Fun(f, fargs), FTerm::Fun(g, gargs)) => {
            if f != g || fargs.len() != gargs.len() {
                return false;
            }
            fargs
                .iter()
                .zip(gargs.iter())
                .all(|(x, y)| unify(x, y, subst))
        }
    }
}

/// One-way matching: extend `subst` binding only variables of `pattern` so
/// that `pattern[subst] == target`. Used by subsumption.
pub fn matches(pattern: &FTerm, target: &FTerm, subst: &mut Subst) -> bool {
    match (pattern, target) {
        (FTerm::Var(v), t) => match subst.get(*v) {
            Some(bound) => bound == t,
            None => {
                subst.bind(*v, t.clone());
                true
            }
        },
        (FTerm::Fun(f, fargs), FTerm::Fun(g, gargs)) => {
            if f != g || fargs.len() != gargs.len() {
                return false;
            }
            fargs
                .iter()
                .zip(gargs.iter())
                .all(|(p, t)| matches(p, t, subst))
        }
        (FTerm::Fun(_, _), FTerm::Var(_)) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    fn f(name: &str, args: Vec<FTerm>) -> FTerm {
        FTerm::Fun(s(name), args)
    }

    fn v(i: u32) -> FTerm {
        FTerm::Var(i)
    }

    #[test]
    fn unify_simple() {
        // f(?0, a) = f(b, ?1) with ?0 := b, ?1 := a.
        let a = f("f", vec![v(0), f("a", vec![])]);
        let b = f("f", vec![f("b", vec![]), v(1)]);
        let mut subst = Subst::new();
        assert!(unify(&a, &b, &mut subst));
        assert_eq!(a.apply(&subst), b.apply(&subst));
    }

    #[test]
    fn unify_occurs_check() {
        // ?0 = f(?0) fails.
        let a = v(0);
        let b = f("f", vec![v(0)]);
        let mut subst = Subst::new();
        assert!(!unify(&a, &b, &mut subst));
    }

    #[test]
    fn unify_clash() {
        let a = f("f", vec![]);
        let b = f("g", vec![]);
        let mut subst = Subst::new();
        assert!(!unify(&a, &b, &mut subst));
    }

    #[test]
    fn unify_chained_variables() {
        // ?0 = ?1, ?1 = a  =>  ?0 := a after application.
        let mut subst = Subst::new();
        assert!(unify(&v(0), &v(1), &mut subst));
        assert!(unify(&v(1), &f("a", vec![]), &mut subst));
        assert_eq!(v(0).apply(&subst), f("a", vec![]));
    }

    #[test]
    fn matching_is_one_way() {
        let pattern = f("f", vec![v(0)]);
        let target = f("f", vec![f("a", vec![])]);
        let mut subst = Subst::new();
        assert!(matches(&pattern, &target, &mut subst));
        // Reverse fails: a pattern constant cannot match a variable.
        let mut subst2 = Subst::new();
        assert!(!matches(&target, &pattern, &mut subst2));
        // Inconsistent repeated variable fails.
        let pattern2 = f("g", vec![v(0), v(0)]);
        let target2 = f("g", vec![f("a", vec![]), f("b", vec![])]);
        let mut subst3 = Subst::new();
        assert!(!matches(&pattern2, &target2, &mut subst3));
    }

    #[test]
    fn shift_renames_apart() {
        let t = f("f", vec![v(0), v(2)]);
        let shifted = t.shift(10);
        let mut vars = Vec::new();
        shifted.vars(&mut vars);
        assert_eq!(vars, vec![10, 12]);
    }
}
