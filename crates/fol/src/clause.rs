//! Clausification: specification-logic formulas → first-order clauses.
//!
//! Pipeline: NNF → skolemize existentials → drop universal prefixes
//! (clause variables are implicitly universal) → distribute ∨ over ∧
//! (bounded) → literals. Equality is a distinguished predicate `$eq`; the
//! prover adds its axioms.

use crate::term::FTerm;
use jahob_logic::{transform, BinOp, Form, QKind, UnOp};
use jahob_util::{FxHashMap, FxHashSet, Symbol};
use std::fmt;

/// A literal: possibly negated atom `Pred(args)`. Equality uses the
/// distinguished predicate [`EQ`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    pub positive: bool,
    pub pred: Symbol,
    pub args: Vec<FTerm>,
}

/// The distinguished equality predicate.
pub fn eq_pred() -> Symbol {
    Symbol::intern("$eq")
}

impl Literal {
    pub fn negate(&self) -> Literal {
        Literal {
            positive: !self.positive,
            pred: self.pred,
            args: self.args.clone(),
        }
    }

    pub fn apply(&self, subst: &crate::term::Subst) -> Literal {
        Literal {
            positive: self.positive,
            pred: self.pred,
            args: self.args.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    pub fn shift(&self, offset: u32) -> Literal {
        Literal {
            positive: self.positive,
            pred: self.pred,
            args: self.args.iter().map(|a| a.shift(offset)).collect(),
        }
    }

    pub fn size(&self) -> usize {
        1 + self.args.iter().map(FTerm::size).sum::<usize>()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "~")?;
        }
        if self.pred == eq_pred() && self.args.len() == 2 {
            return write!(f, "{} = {}", self.args[0], self.args[1]);
        }
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A clause: implicit universal closure of a disjunction of literals.
/// Variables are numbered per clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause {
    pub literals: Vec<Literal>,
}

impl Clause {
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    pub fn size(&self) -> usize {
        self.literals.iter().map(Literal::size).sum()
    }

    pub fn num_vars(&self) -> u32 {
        let mut vars = Vec::new();
        for lit in &self.literals {
            for a in &lit.args {
                a.vars(&mut vars);
            }
        }
        vars.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Normalize: sort and dedup literals; detect tautologies (both a
    /// literal and its negation, or trivial `t = t`).
    pub fn normalize(mut self) -> Option<Clause> {
        self.literals.sort();
        self.literals.dedup();
        let mut set: FxHashSet<(bool, Symbol, Vec<FTerm>)> = FxHashSet::default();
        for lit in &self.literals {
            if lit.positive && lit.pred == eq_pred() && lit.args[0] == lit.args[1] {
                return None; // t = t is valid: clause is a tautology
            }
            if set.contains(&(!lit.positive, lit.pred, lit.args.clone())) {
                return None; // P and ~P
            }
            set.insert((lit.positive, lit.pred, lit.args.clone()));
        }
        // Drop trivially false literals ~ (t = t).
        self.literals
            .retain(|lit| !(!lit.positive && lit.pred == eq_pred() && lit.args[0] == lit.args[1]));
        Some(self)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊥");
        }
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{lit}")?;
        }
        Ok(())
    }
}

/// Clausification failure (construct outside first-order logic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClausifyError {
    pub message: String,
}

impl fmt::Display for ClausifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot clausify: {}", self.message)
    }
}

impl std::error::Error for ClausifyError {}

fn err<T>(message: impl Into<String>) -> Result<T, ClausifyError> {
    Err(ClausifyError {
        message: message.into(),
    })
}

/// Upper bound on generated clauses per input formula (CNF distribution can
/// explode; refuse rather than drown the prover).
const MAX_CLAUSES: usize = 2000;

/// Clausify a formula read as an *assertion* (satisfiability direction —
/// callers negate goals themselves).
pub fn clausify(form: &Form) -> Result<Vec<Clause>, ClausifyError> {
    let simplified = transform::simplify(form);
    let (skolemized, _) = transform::skolemize(&simplified);
    let mut ctx = Clausifier {
        var_map: Vec::new(),
    };
    let matrix = ctx.strip_universals(&skolemized);
    let clauses = ctx.cnf(&matrix)?;
    Ok(clauses
        .into_iter()
        .filter_map(|c| Clause { literals: c }.normalize())
        .collect())
}

struct Clausifier {
    /// Bound-variable stack: symbol → clause variable id.
    var_map: Vec<Symbol>,
}

impl Clausifier {
    fn strip_universals(&mut self, form: &Form) -> Form {
        // Universal binders become free clause variables; keep a mapping by
        // *name* (skolemization already renamed binders apart via prenex
        // hoisting in transform::skolemize's NNF pass... binders may still
        // collide, so rename apart here).
        match form {
            Form::Quant(QKind::All, binders, body) => {
                let mut renamed = body.as_ref().clone();
                let mut map = FxHashMap::default();
                for (name, _) in binders {
                    let fresh = Symbol::fresh(*name);
                    map.insert(*name, Form::Var(fresh));
                    self.var_map.push(fresh);
                }
                if !map.is_empty() {
                    renamed = renamed.subst(&map);
                }
                self.strip_universals(&renamed)
            }
            Form::And(parts) => Form::and(parts.iter().map(|p| self.strip_universals(p)).collect()),
            Form::Or(parts) => Form::or(parts.iter().map(|p| self.strip_universals(p)).collect()),
            other => other.clone(),
        }
    }

    fn cnf(&mut self, form: &Form) -> Result<Vec<Vec<Literal>>, ClausifyError> {
        match form {
            Form::BoolLit(true) => Ok(vec![]),
            Form::BoolLit(false) => Ok(vec![vec![]]),
            Form::And(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.cnf(p)?);
                    if out.len() > MAX_CLAUSES {
                        return err("clause explosion");
                    }
                }
                Ok(out)
            }
            Form::Or(parts) => {
                let mut acc: Vec<Vec<Literal>> = vec![vec![]];
                for p in parts {
                    let branch = self.cnf(p)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for b in &branch {
                            let mut c = a.clone();
                            c.extend(b.iter().cloned());
                            next.push(c);
                            if next.len() > MAX_CLAUSES {
                                return err("clause explosion");
                            }
                        }
                    }
                    acc = next;
                }
                Ok(acc)
            }
            Form::Quant(QKind::All, _, _) => {
                // Inner universal (under a disjunction after NNF): hoist.
                let stripped = self.strip_universals(form);
                self.cnf(&stripped)
            }
            Form::Quant(QKind::Ex, _, _) => err("unskolemized existential"),
            Form::Unop(UnOp::Not, inner) => {
                let lit = self.literal(inner, false)?;
                Ok(vec![vec![lit]])
            }
            atom => {
                let lit = self.literal(atom, true)?;
                Ok(vec![vec![lit]])
            }
        }
    }

    fn literal(&mut self, atom: &Form, positive: bool) -> Result<Literal, ClausifyError> {
        match atom {
            Form::Binop(BinOp::Eq | BinOp::Iff, a, b) => Ok(Literal {
                positive,
                pred: eq_pred(),
                args: vec![self.term(a)?, self.term(b)?],
            }),
            Form::Var(_) | Form::App(_, _) => {
                let t = self.term(atom)?;
                match t {
                    FTerm::Fun(pred, args) => Ok(Literal {
                        positive,
                        pred,
                        args,
                    }),
                    FTerm::Var(_) => err("variable in predicate position"),
                }
            }
            other => err(format!("atom outside first-order logic: `{other}`")),
        }
    }

    fn term(&mut self, form: &Form) -> Result<FTerm, ClausifyError> {
        match form {
            Form::Var(name) => {
                // Clause variable if bound by a stripped universal; else a
                // constant.
                match self.var_map.iter().position(|v| v == name) {
                    Some(i) => Ok(FTerm::Var(i as u32)),
                    None => Ok(FTerm::constant(*name)),
                }
            }
            Form::Null => Ok(FTerm::constant(Symbol::intern("$null"))),
            Form::BoolLit(b) => Ok(FTerm::constant(Symbol::intern(if *b {
                "$true"
            } else {
                "$false"
            }))),
            Form::IntLit(n) => Ok(FTerm::constant(Symbol::intern(&format!("$int{n}")))),
            Form::App(head, args) => {
                let f = match head.as_ref() {
                    Form::Var(name) => *name,
                    other => return err(format!("higher-order head `{other}`")),
                };
                let mut ts = Vec::with_capacity(args.len());
                for a in args {
                    ts.push(self.term(a)?);
                }
                Ok(FTerm::Fun(f, ts))
            }
            other => err(format!("term outside first-order logic: `{other}`")),
        }
    }
}

/// Symbols with their arities, as collected from a clause set.
pub type SymbolArities = Vec<(Symbol, usize)>;

/// Collect the function and predicate symbols of a clause set (with
/// arities) — the prover instantiates congruence axioms from this.
pub fn signature(clauses: &[Clause]) -> (SymbolArities, SymbolArities) {
    let mut funs: Vec<(Symbol, usize)> = Vec::new();
    let mut preds: Vec<(Symbol, usize)> = Vec::new();
    fn walk_term(t: &FTerm, funs: &mut Vec<(Symbol, usize)>) {
        if let FTerm::Fun(f, args) = t {
            if !args.is_empty() && !funs.contains(&(*f, args.len())) {
                funs.push((*f, args.len()));
            }
            for a in args {
                walk_term(a, funs);
            }
        }
    }
    for c in clauses {
        for lit in &c.literals {
            if lit.pred != eq_pred() && !lit.args.is_empty() {
                let entry = (lit.pred, lit.args.len());
                if !preds.contains(&entry) {
                    preds.push(entry);
                }
            }
            for a in &lit.args {
                walk_term(a, &mut funs);
            }
        }
    }
    (funs, preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    #[test]
    fn ground_facts() {
        let cs = clausify(&form("p a & q b")).unwrap();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].literals.len(), 1);
    }

    #[test]
    fn disjunction_distributes() {
        let cs = clausify(&form("(p a | q b) & r c")).unwrap();
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().any(|c| c.literals.len() == 2));
    }

    #[test]
    fn universal_becomes_clause_variable() {
        let cs = clausify(&form("ALL x. p x")).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].literals[0].args[0], FTerm::Var(0));
    }

    #[test]
    fn existential_skolemized() {
        let cs = clausify(&form("EX x. p x")).unwrap();
        assert_eq!(cs.len(), 1);
        match &cs[0].literals[0].args[0] {
            FTerm::Fun(name, args) => {
                assert!(name.as_str().starts_with("sk_"));
                assert!(args.is_empty());
            }
            other => panic!("expected skolem constant, got {other:?}"),
        }
    }

    #[test]
    fn exists_under_forall_gets_function() {
        let cs = clausify(&form("ALL x. EX y. r x y")).unwrap();
        assert_eq!(cs.len(), 1);
        match &cs[0].literals[0].args[1] {
            FTerm::Fun(name, args) => {
                assert!(name.as_str().starts_with("sk_"));
                assert_eq!(args.len(), 1, "skolem function of the universal");
            }
            other => panic!("expected skolem function, got {other:?}"),
        }
    }

    #[test]
    fn tautologies_dropped() {
        let cs = clausify(&form("p a | ~(p a)")).unwrap();
        assert!(cs.is_empty());
        let cs2 = clausify(&form("a = a")).unwrap();
        assert!(cs2.is_empty());
    }

    #[test]
    fn equality_atoms() {
        let cs = clausify(&form("f a = b")).unwrap();
        assert_eq!(cs[0].literals[0].pred, eq_pred());
    }

    #[test]
    fn implication_clausal_form() {
        // p x → q x  ≡  ~p x | q x.
        let cs = clausify(&form("ALL x. p x --> q x")).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].literals.len(), 2);
        let negs: Vec<bool> = cs[0].literals.iter().map(|l| l.positive).collect();
        assert!(negs.contains(&true) && negs.contains(&false));
    }

    #[test]
    fn signature_collection() {
        let cs = clausify(&form("p (f a) & g a b = c")).unwrap();
        let (funs, preds) = signature(&cs);
        assert!(funs.iter().any(|&(f, n)| f.as_str() == "f" && n == 1));
        assert!(funs.iter().any(|&(f, n)| f.as_str() == "g" && n == 2));
        assert!(preds.iter().any(|&(p, n)| p.as_str() == "p" && n == 1));
    }

    #[test]
    fn rejects_sets() {
        assert!(clausify(&form("x : S & card S = 1")).is_err());
    }
}
