//! `jahob-fol`: a saturation-based first-order theorem prover.
//!
//! Jahob's fallback for obligations outside every decidable fragment was an
//! off-the-shelf automated theorem prover (the paper cites Vampire [78]) and
//! the first-order *simulation* of reachability from Lev-Ami et al. [52].
//! This crate is the from-scratch substitute: a refutation prover using
//! binary resolution with factoring over clausified goals, equality handled
//! by axiom instantiation (reflexivity/symmetry/transitivity plus congruence
//! schemas for the symbols in the problem), forward subsumption, and a
//! given-clause saturation loop with effort limits.
//!
//! [`reach`] adds the [52]-style axiomatization of `rtrancl_pt` atoms so
//! transitive-reachability obligations over linked structures can be
//! discharged in pure first-order logic.

pub mod clause;
pub mod prover;
pub mod reach;
pub mod term;

pub use clause::{clausify, Clause, Literal};
pub use prover::{prove, prove_budgeted, prove_trace, ProveResult, ProverConfig};
pub use term::{FTerm, Subst};

use jahob_logic::Form;
use jahob_util::{FxHashMap, Symbol};

/// Top-level entry: try to prove `goal` valid (with free variables read
/// universally). Reachability atoms are axiomatized per [`reach`].
/// `Ok(true)` = proved; `Ok(false)` = gave up within limits (NOT a
/// disproof); `Err` = could not clausify.
pub fn fol_valid(
    goal: &Form,
    sig: &FxHashMap<Symbol, jahob_logic::Sort>,
) -> Result<bool, clause::ClausifyError> {
    let (prepared, axioms) = reach::prepare(goal, sig);
    // Refutation: clausify ¬goal plus the reachability axioms.
    let negated = Form::not(prepared);
    let mut clauses = clausify(&negated)?;
    for axiom in &axioms {
        clauses.extend(clausify(axiom)?);
    }
    let result = prove(clauses, &ProverConfig::default());
    Ok(matches!(result, ProveResult::Proved))
}
