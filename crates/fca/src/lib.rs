//! `jahob-fca`: field constraint analysis (Wies, Kuncak, Lam, Podelski,
//! Rinard — VMCAI'06, [80] in the paper).
//!
//! Backbone fields (`next`) generate decidable reachability structure;
//! *derived* fields (`data`) do not — but they are usually constrained by an
//! invariant of the form `∀x y. y = f x → φ(x, y)` (e.g. Figure 3's
//! "no sharing of data"). Field constraint analysis eliminates reads of the
//! derived field from a proof obligation so the rest can be shipped to a
//! procedure that only understands the backbone:
//!
//! every subterm `f t` is replaced by a fresh universally quantified
//! variable `v` guarded by the *graph atom* `R_f(t, v)`, and the field
//! constraint is assumed for `R_f`:
//!
//! ```text
//!   valid( (∀x y. R_f(x,y) → φ(x,y)) → ∀v. R_f(t,v) → goal[f t := v] )
//!     ⟹ valid( goal )
//! ```
//!
//! The transformation is sound for arbitrary constraints and complete when
//! the constraint is *deterministic enough* (the VMCAI'06 result); here it
//! is used in the sound direction only — a prover failure routes the goal
//! elsewhere (experiment E11 measures the difference).

use jahob_logic::{Form, QKind, Sort};
use jahob_util::{FxHashMap, Symbol};
use std::rc::Rc;

/// The graph-relation predicate symbol for a field.
pub fn graph_pred(field: Symbol) -> Symbol {
    Symbol::intern(&format!("$graph_{field}"))
}

/// Find one application `field t` anywhere in the formula.
fn find_application(form: &Form, field: Symbol) -> Option<Form> {
    if let Some(args) = form.as_app_of(field) {
        if args.len() == 1 {
            // Prefer innermost applications: recurse into the argument first.
            if let Some(inner) = find_application(&args[0], field) {
                return Some(inner);
            }
            return Some(form.clone());
        }
    }
    match form {
        Form::Var(_)
        | Form::IntLit(_)
        | Form::BoolLit(_)
        | Form::Null
        | Form::EmptySet
        | Form::Tree(_) => None,
        Form::FiniteSet(es) | Form::And(es) | Form::Or(es) => {
            es.iter().find_map(|e| find_application(e, field))
        }
        Form::Unop(_, a) | Form::Old(a) => find_application(a, field),
        Form::Binop(_, a, b) => find_application(a, field).or_else(|| find_application(b, field)),
        Form::Ite(c, t, e) => find_application(c, field)
            .or_else(|| find_application(t, field))
            .or_else(|| find_application(e, field)),
        Form::App(h, args) => find_application(h, field)
            .or_else(|| args.iter().find_map(|a| find_application(a, field))),
        Form::Quant(_, _, body) | Form::Lambda(_, body) | Form::Compr(_, _, body) => {
            // Only eliminate occurrences whose argument does not mention the
            // bound variables (hoisting under binders would capture).
            let bound: Vec<Symbol> = match form {
                Form::Quant(_, bs, _) | Form::Lambda(bs, _) => bs.iter().map(|(s, _)| *s).collect(),
                Form::Compr(x, _, _) => vec![*x],
                _ => unreachable!(),
            };
            find_application(body, field).filter(|app| {
                let fv = app.free_vars();
                bound.iter().all(|b| !fv.contains(b))
            })
        }
    }
}

fn replace_term(form: &Form, target: &Form, with: &Form) -> Form {
    if form == target {
        return with.clone();
    }
    match form {
        Form::Var(_)
        | Form::IntLit(_)
        | Form::BoolLit(_)
        | Form::Null
        | Form::EmptySet
        | Form::Tree(_) => form.clone(),
        Form::FiniteSet(es) => {
            Form::FiniteSet(es.iter().map(|e| replace_term(e, target, with)).collect())
        }
        Form::And(es) => Form::and(es.iter().map(|e| replace_term(e, target, with)).collect()),
        Form::Or(es) => Form::or(es.iter().map(|e| replace_term(e, target, with)).collect()),
        Form::Unop(op, a) => Form::Unop(*op, Rc::new(replace_term(a, target, with))),
        Form::Old(a) => Form::Old(Rc::new(replace_term(a, target, with))),
        Form::Binop(op, a, b) => Form::binop(
            *op,
            replace_term(a, target, with),
            replace_term(b, target, with),
        ),
        Form::Ite(c, t, e) => Form::Ite(
            Rc::new(replace_term(c, target, with)),
            Rc::new(replace_term(t, target, with)),
            Rc::new(replace_term(e, target, with)),
        ),
        Form::App(h, args) => Form::app(
            replace_term(h, target, with),
            args.iter().map(|a| replace_term(a, target, with)).collect(),
        ),
        Form::Quant(k, bs, body) => {
            Form::Quant(*k, bs.clone(), Rc::new(replace_term(body, target, with)))
        }
        Form::Lambda(bs, body) => {
            Form::Lambda(bs.clone(), Rc::new(replace_term(body, target, with)))
        }
        Form::Compr(x, s, body) => {
            Form::Compr(*x, s.clone(), Rc::new(replace_term(body, target, with)))
        }
    }
}

/// Result of the elimination: the rewritten goal plus the constraint
/// hypothesis for the graph relation (to be conjoined by the caller).
#[derive(Clone, Debug)]
pub struct Eliminated {
    pub goal: Form,
    /// `∀x y. R_f(x,y) → φ(x,y)` for each field constraint used.
    pub hypotheses: Vec<Form>,
    /// How many applications were rewritten.
    pub rewrites: usize,
}

/// Eliminate every read of `field` from `goal`, guarding the replacements
/// by graph atoms. `constraint` is the field constraint `φ(x, y)` with the
/// free variables named `x` and `y` by convention of the caller (pass
/// binder names through `constraint_vars`).
pub fn eliminate_field(
    goal: &Form,
    field: Symbol,
    constraint: Option<(&Form, Symbol, Symbol)>,
) -> Eliminated {
    let pred = graph_pred(field);
    let mut current = goal.clone();
    let mut rewrites = 0usize;
    while let Some(app) = find_application(&current, field) {
        let args = app.as_app_of(field).expect("application shape");
        let arg = args[0].clone();
        let fresh = Symbol::fresh(Symbol::intern(&format!("fca_{field}")));
        let replaced = replace_term(&current, &app, &Form::Var(fresh));
        current = Form::Quant(
            QKind::All,
            vec![(fresh, Sort::Obj)],
            Rc::new(Form::implies(
                Form::app(Form::Var(pred), vec![arg, Form::Var(fresh)]),
                replaced,
            )),
        );
        rewrites += 1;
        if rewrites > 64 {
            break; // defensive
        }
    }
    let mut hypotheses = Vec::new();
    // Totality of the graph relation: every x has an image (fields are
    // total functions) — required so the universal guard is never vacuous.
    let x = Symbol::fresh(Symbol::intern("fx"));
    let y = Symbol::fresh(Symbol::intern("fy"));
    hypotheses.push(Form::Quant(
        QKind::All,
        vec![(x, Sort::Obj)],
        Rc::new(Form::Quant(
            QKind::Ex,
            vec![(y, Sort::Obj)],
            Rc::new(Form::app(Form::Var(pred), vec![Form::Var(x), Form::Var(y)])),
        )),
    ));
    if let Some((phi, xv, yv)) = constraint {
        let x = Symbol::fresh(Symbol::intern("fcx"));
        let y = Symbol::fresh(Symbol::intern("fcy"));
        let mut map = FxHashMap::default();
        map.insert(xv, Form::Var(x));
        map.insert(yv, Form::Var(y));
        let inst = phi.subst(&map);
        hypotheses.push(Form::Quant(
            QKind::All,
            vec![(x, Sort::Obj), (y, Sort::Obj)],
            Rc::new(Form::implies(
                Form::app(Form::Var(pred), vec![Form::Var(x), Form::Var(y)]),
                inst,
            )),
        ));
    }
    Eliminated {
        goal: current,
        hypotheses,
        rewrites,
    }
}

/// Does a formula still read the field (directly, not via its graph atom)?
pub fn reads_field(form: &Form, field: Symbol) -> bool {
    find_application(form, field).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jahob_logic::form;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn removes_all_reads() {
        let goal = form("data x = data y --> x = y");
        let out = eliminate_field(&goal, s("data"), None);
        assert_eq!(out.rewrites, 2);
        assert!(!reads_field(&out.goal, s("data")));
        let text = out.goal.to_string();
        assert!(text.contains("$graph_data"), "{text}");
    }

    #[test]
    fn elimination_is_sound_on_small_models() {
        // If the rewritten goal is valid (under the totality hypothesis with
        // R = graph of data), the original is valid: check the
        // contrapositive empirically — evaluate both on models where R is
        // exactly data's graph.
        use jahob_logic::model::{enumerate_models, Key, Value};
        use jahob_logic::Sort;
        let goal = form("p (data x)");
        let out = eliminate_field(&goal, s("data"), None);
        let syms = vec![
            (s("data"), Sort::field(Sort::Obj)),
            (s("p"), Sort::Fun(vec![Sort::Obj], Box::new(Sort::Bool))),
            (s("x"), Sort::Obj),
        ];
        enumerate_models(1, (0, 0), &syms, &mut |m| {
            // Interpret the graph relation as data's exact graph.
            let mut m2 = m.clone();
            let mut table = jahob_util::FxHashMap::default();
            for i in 0..=1u32 {
                let img = m
                    .eval(&Form::app(
                        Form::v("data"),
                        vec![if i == 0 { Form::Null } else { Form::v("x1obj") }],
                    ))
                    .ok()
                    .and_then(|v| v.key().ok());
                // Build graph pairs directly from the data table.
                let _ = img;
                for j in 0..=1u32 {
                    let holds = matches!(
                        m.eval(&Form::eq(
                            Form::app(Form::v("data"), vec![obj_form(i)]),
                            obj_form(j)
                        )),
                        Ok(Value::Bool(true))
                    );
                    table.insert(vec![Key::Obj(i), Key::Obj(j)], Value::Bool(holds));
                }
            }
            m2.interp.insert(
                graph_pred(s("data")),
                Value::Fun(std::rc::Rc::new(jahob_logic::model::FunV::Table {
                    arity: 2,
                    map: table,
                    default: Box::new(Value::Bool(false)),
                })),
            );
            let orig = m2.eval_bool(&goal).unwrap();
            let hyp_ok = out.hypotheses.iter().all(|h| m2.eval_bool(h).unwrap());
            let rewritten = m2.eval_bool(&out.goal).unwrap();
            // Soundness direction: hypotheses hold in intended models, and
            // there the rewritten goal implies the original.
            !(hyp_ok && rewritten && !orig)
        });
    }

    fn obj_form(i: u32) -> Form {
        if i == 0 {
            Form::Null
        } else {
            // Universe of size 1: the only proper object can be referenced
            // via a pinned variable in the model; for this test we only use
            // null and x.
            Form::v("x")
        }
    }

    #[test]
    fn constraint_becomes_hypothesis() {
        // Figure 3's no-sharing constraint as a field constraint on data.
        let goal = form("data n1 = data n2 --> n1 = n2");
        let phi = form("gx ~= gy"); // toy constraint over binder names gx, gy
        let out = eliminate_field(&goal, s("data"), Some((&phi, s("gx"), s("gy"))));
        assert_eq!(out.hypotheses.len(), 2);
        let h = out.hypotheses[1].to_string();
        assert!(h.contains("$graph_data"), "{h}");
    }

    #[test]
    fn backbone_untouched() {
        let goal = form("rtrancl_pt (% x y. next x = y) a b & data a = d");
        let out = eliminate_field(&goal, s("data"), None);
        assert!(!reads_field(&out.goal, s("data")));
        let text = out.goal.to_string();
        assert!(text.contains("rtrancl_pt"), "{text}");
        // next reads (inside the closure lambda) are untouched.
        assert!(text.contains("next x"), "{text}");
    }

    #[test]
    fn under_binder_occurrences_left_alone() {
        // data applied to a bound variable cannot be hoisted.
        let goal = form("ALL n. p (data n)");
        let out = eliminate_field(&goal, s("data"), None);
        assert_eq!(out.rewrites, 0);
        assert!(out.goal.to_string().contains("data n"));
    }
}
