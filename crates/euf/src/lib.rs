//! `jahob-euf`: congruence closure for ground equality with uninterpreted
//! functions.
//!
//! This is one of the two theory solvers combined Nelson–Oppen style in
//! `jahob-smt` (the other being linear integer arithmetic), mirroring the
//! paper's use of "Nelson-Oppen style theorem provers" via the SMT-LIB
//! interface. The algorithm is the classic one from Nelson & Oppen's
//! "Fast decision procedures based on congruence closure": a union-find over
//! hash-consed ground terms with use-lists and a signature table, processing
//! merges from a worklist.
//!
//! The solver decides conjunctions of ground equalities and disequalities
//! (predicates are encoded as equations `p(args) = true$`). It also exposes
//! the equivalence classes so the Nelson–Oppen combinator can propagate
//! equalities over shared variables.

use jahob_util::{FxHashMap, Symbol, UnionFind};
use std::fmt;

/// A hash-consed ground term id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// The congruence-closure engine.
pub struct Congruence {
    /// Term table: function symbol and argument term ids.
    terms: Vec<(Symbol, Vec<TermId>)>,
    /// Hash-consing map.
    canon: FxHashMap<(Symbol, Vec<TermId>), TermId>,
    /// Union-find over term ids.
    uf: UnionFind,
    /// For each term id, the terms that use it as a direct argument.
    parents: Vec<Vec<TermId>>,
    /// Signature table: (fun, arg representatives) → term.
    sigs: FxHashMap<(Symbol, Vec<u32>), TermId>,
    /// Asserted disequalities.
    diseqs: Vec<(TermId, TermId)>,
}

impl Default for Congruence {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Congruence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Congruence({} terms, {} classes)",
            self.terms.len(),
            self.uf.num_classes()
        )
    }
}

impl Congruence {
    /// Empty engine.
    pub fn new() -> Self {
        Congruence {
            terms: Vec::new(),
            canon: FxHashMap::default(),
            uf: UnionFind::new(0),
            parents: Vec::new(),
            sigs: FxHashMap::default(),
            diseqs: Vec::new(),
        }
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Intern a constant (nullary function).
    pub fn constant(&mut self, name: Symbol) -> TermId {
        self.term(name, &[])
    }

    /// Intern an application term. Existing congruent terms are reused.
    pub fn term(&mut self, fun: Symbol, args: &[TermId]) -> TermId {
        let key = (fun, args.to_vec());
        if let Some(&id) = self.canon.get(&key) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push((fun, args.to_vec()));
        self.canon.insert(key, id);
        self.uf.push();
        self.parents.push(Vec::new());
        for &a in args {
            self.parents[a.0 as usize].push(id);
        }
        // Insert into the signature table; if a congruent term already
        // exists, merge with it immediately.
        let sig = self.signature(id);
        if let Some(&existing) = self.sigs.get(&sig) {
            self.merge(id, existing);
        } else {
            self.sigs.insert(sig, id);
        }
        id
    }

    fn signature(&mut self, t: TermId) -> (Symbol, Vec<u32>) {
        let (fun, args) = self.terms[t.0 as usize].clone();
        let reps = args
            .iter()
            .map(|a| self.uf.find(a.0 as usize) as u32)
            .collect();
        (fun, reps)
    }

    /// Are two terms currently known equal?
    pub fn equal(&mut self, a: TermId, b: TermId) -> bool {
        self.uf.same(a.0 as usize, b.0 as usize)
    }

    /// The current representative of a term's class.
    pub fn find(&mut self, t: TermId) -> TermId {
        TermId(self.uf.find(t.0 as usize) as u32)
    }

    /// Assert `a = b` and propagate congruences.
    pub fn merge(&mut self, a: TermId, b: TermId) {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let rx = self.uf.find(x.0 as usize);
            let ry = self.uf.find(y.0 as usize);
            if rx == ry {
                continue;
            }
            // Collect the parents of both classes before the union; their
            // signatures may change.
            let mut affected: Vec<TermId> = Vec::new();
            for member in self
                .class_members(rx)
                .into_iter()
                .chain(self.class_members(ry))
            {
                affected.extend(self.parents[member.0 as usize].iter().copied());
            }
            self.uf.union(rx, ry);
            for p in affected {
                let sig = self.signature(p);
                match self.sigs.get(&sig) {
                    Some(&existing) if existing != p => {
                        if !self.uf.same(existing.0 as usize, p.0 as usize) {
                            pending.push((existing, p));
                        }
                    }
                    Some(_) => {}
                    None => {
                        self.sigs.insert(sig, p);
                    }
                }
            }
        }
    }

    /// All terms in the class of representative `rep` (linear scan — class
    /// lists are not maintained incrementally; fine at our problem sizes).
    fn class_members(&mut self, rep: usize) -> Vec<TermId> {
        let n = self.terms.len();
        (0..n)
            .filter(|&i| self.uf.find(i) == self.uf.find(rep))
            .map(|i| TermId(i as u32))
            .collect()
    }

    /// Assert `a != b`. Conflicts are detected by [`Congruence::consistent`].
    pub fn assert_neq(&mut self, a: TermId, b: TermId) {
        self.diseqs.push((a, b));
    }

    /// Is the current state consistent (no asserted disequality collapsed)?
    pub fn consistent(&mut self) -> bool {
        let diseqs = self.diseqs.clone();
        diseqs.iter().all(|&(a, b)| !self.equal(a, b))
    }

    /// All currently-equal pairs among `terms` (used by Nelson–Oppen to
    /// propagate equalities over shared variables).
    pub fn equal_pairs_among(&mut self, terms: &[TermId]) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for (i, &a) in terms.iter().enumerate() {
            for &b in &terms[i + 1..] {
                if self.equal(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

/// A ground literal for [`euf_sat`]: terms are built with a shared
/// [`Congruence`]; the literal asserts equality or disequality.
#[derive(Clone, Copy, Debug)]
pub struct EqLit {
    pub lhs: TermId,
    pub rhs: TermId,
    pub positive: bool,
}

/// Decide a conjunction of ground (dis)equality literals: returns `true` if
/// satisfiable.
pub fn euf_sat(engine: &mut Congruence, literals: &[EqLit]) -> bool {
    for lit in literals {
        if lit.positive {
            engine.merge(lit.lhs, lit.rhs);
        } else {
            engine.assert_neq(lit.lhs, lit.rhs);
        }
    }
    engine.consistent()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn constants_distinct_until_merged() {
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        assert!(!cc.equal(a, b));
        cc.merge(a, b);
        assert!(cc.equal(a, b));
    }

    #[test]
    fn congruence_propagates() {
        // a = b  =>  f(a) = f(b).
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        let fa = cc.term(sym("f"), &[a]);
        let fb = cc.term(sym("f"), &[b]);
        assert!(!cc.equal(fa, fb));
        cc.merge(a, b);
        assert!(cc.equal(fa, fb));
    }

    #[test]
    fn nested_congruence() {
        // a = b  =>  g(f(a), a) = g(f(b), b).
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        let fa = cc.term(sym("f"), &[a]);
        let fb = cc.term(sym("f"), &[b]);
        let gfa = cc.term(sym("g"), &[fa, a]);
        let gfb = cc.term(sym("g"), &[fb, b]);
        cc.merge(a, b);
        assert!(cc.equal(gfa, gfb));
    }

    #[test]
    fn classic_fffa_example() {
        // f(f(f(a))) = a  &  f(f(f(f(f(a))))) = a  =>  f(a) = a.
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let f = sym("f");
        let mut powers = vec![a];
        for i in 1..=5 {
            let prev = powers[i - 1];
            powers.push(cc.term(f, &[prev]));
        }
        cc.merge(powers[3], a);
        cc.merge(powers[5], a);
        assert!(cc.equal(powers[1], a), "f(a) = a must follow");
    }

    #[test]
    fn disequality_conflict() {
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        let fa = cc.term(sym("f"), &[a]);
        let fb = cc.term(sym("f"), &[b]);
        cc.assert_neq(fa, fb);
        assert!(cc.consistent());
        cc.merge(a, b);
        assert!(!cc.consistent(), "f(a) != f(b) with a = b is inconsistent");
    }

    #[test]
    fn transitivity_chain() {
        let mut cc = Congruence::new();
        let consts: Vec<TermId> = (0..20)
            .map(|i| cc.constant(sym(&format!("c{i}"))))
            .collect();
        for w in consts.windows(2) {
            cc.merge(w[0], w[1]);
        }
        assert!(cc.equal(consts[0], consts[19]));
    }

    #[test]
    fn hash_consing_reuses_terms() {
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let f1 = cc.term(sym("f"), &[a]);
        let f2 = cc.term(sym("f"), &[a]);
        assert_eq!(f1, f2);
        assert_eq!(cc.num_terms(), 2);
    }

    #[test]
    fn late_term_creation_sees_existing_merges() {
        // Merge a = b first, then create f(a), f(b): must be equal at birth.
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        cc.merge(a, b);
        let fa = cc.term(sym("f"), &[a]);
        let fb = cc.term(sym("f"), &[b]);
        assert!(cc.equal(fa, fb));
    }

    #[test]
    fn euf_sat_entry() {
        let mut cc = Congruence::new();
        let a = cc.constant(sym("a"));
        let b = cc.constant(sym("b"));
        let c = cc.constant(sym("c"));
        let lits = [
            EqLit {
                lhs: a,
                rhs: b,
                positive: true,
            },
            EqLit {
                lhs: b,
                rhs: c,
                positive: true,
            },
            EqLit {
                lhs: a,
                rhs: c,
                positive: false,
            },
        ];
        assert!(!euf_sat(&mut cc, &lits));

        let mut cc2 = Congruence::new();
        let a = cc2.constant(sym("a"));
        let b = cc2.constant(sym("b"));
        let c = cc2.constant(sym("c"));
        let lits = [
            EqLit {
                lhs: a,
                rhs: b,
                positive: true,
            },
            EqLit {
                lhs: a,
                rhs: c,
                positive: false,
            },
        ];
        assert!(euf_sat(&mut cc2, &lits));
    }

    #[test]
    fn equal_pairs_among_shared() {
        let mut cc = Congruence::new();
        let x = cc.constant(sym("x"));
        let y = cc.constant(sym("y"));
        let z = cc.constant(sym("z"));
        cc.merge(x, z);
        let pairs = cc.equal_pairs_among(&[x, y, z]);
        assert_eq!(pairs, vec![(x, z)]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // transitive-closure matrix indexing
    fn differential_vs_brute_force_on_random_graphs() {
        // Random equalities/disequalities over constants + unary f-terms.
        // Brute force: explicit closure computation via fixpoint.
        let mut state = 0xdead_beef_1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 5usize;
            let mut cc = Congruence::new();
            let consts: Vec<TermId> = (0..n)
                .map(|i| cc.constant(sym(&format!("k{round}_{i}"))))
                .collect();
            let fs: Vec<TermId> = consts.iter().map(|&c| cc.term(sym("F"), &[c])).collect();
            let all: Vec<TermId> = consts.iter().chain(fs.iter()).copied().collect();

            // Random merges among all terms.
            let mut eqs: Vec<(usize, usize)> = Vec::new();
            for _ in 0..4 {
                let i = (rnd() % all.len() as u64) as usize;
                let j = (rnd() % all.len() as u64) as usize;
                eqs.push((i, j));
                cc.merge(all[i], all[j]);
            }

            // Brute-force closure over indices 0..2n where i+n = F(i) for i<n.
            let total = 2 * n;
            let mut eq = vec![vec![false; total]; total];
            for (i, row) in eq.iter_mut().enumerate() {
                row[i] = true;
            }
            for &(i, j) in &eqs {
                eq[i][j] = true;
                eq[j][i] = true;
            }
            loop {
                let mut changed = false;
                // Transitivity + symmetry.
                for i in 0..total {
                    for j in 0..total {
                        if !eq[i][j] {
                            continue;
                        }
                        for k in 0..total {
                            if eq[j][k] && !eq[i][k] {
                                eq[i][k] = true;
                                eq[k][i] = true;
                                changed = true;
                            }
                        }
                    }
                }
                // Congruence: i ~ j (both constants) => F(i) ~ F(j).
                for i in 0..n {
                    for j in 0..n {
                        if eq[i][j] && !eq[i + n][j + n] {
                            eq[i + n][j + n] = true;
                            eq[j + n][i + n] = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for i in 0..total {
                for j in 0..total {
                    assert_eq!(
                        cc.equal(all[i], all[j]),
                        eq[i][j],
                        "round {round}: mismatch at ({i},{j}) with eqs {eqs:?}"
                    );
                }
            }
        }
    }
}
