//! Recursive-descent parser for the Java subset and its annotations.

use crate::ast::*;
use crate::lexer::{lex_java, Tok};
use jahob_logic::{parse_form, parse_sort, Form};
use jahob_util::Symbol;
use std::fmt;

/// A frontend failure (lexing, Java parsing, or annotation parsing).
#[derive(Debug, Clone)]
pub struct FrontendError {
    pub message: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frontend error: {}", self.message)
    }
}

impl std::error::Error for FrontendError {}

fn err<T>(message: impl Into<String>) -> Result<T, FrontendError> {
    Err(FrontendError {
        message: message.into(),
    })
}

/// Parse a `.javax` source file into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program, FrontendError> {
    let toks = lex_java(src).map_err(|e| FrontendError {
        message: e.to_string(),
    })?;
    let mut p = P { toks, pos: 0 };
    let mut classes = Vec::new();
    while p.peek().is_some() {
        classes.push(p.class()?);
    }
    Ok(Program { classes })
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), FrontendError> {
        if self.eat(t) {
            Ok(())
        } else {
            err(format!(
                "expected `{t}`, found `{}`",
                self.peek().map_or("<eof>".into(), |x| x.to_string())
            ))
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn class(&mut self) -> Result<Class, FrontendError> {
        if !self.eat_kw("class") {
            return err("expected `class`");
        }
        let name = Symbol::intern(&self.ident()?);
        self.expect(&Tok::LBrace)?;
        let mut class = Class {
            name,
            fields: Vec::new(),
            methods: Vec::new(),
            specvars: Vec::new(),
            vardefs: Vec::new(),
            invariants: Vec::new(),
        };
        while !self.eat(&Tok::RBrace) {
            self.member(&mut class)?;
        }
        Ok(class)
    }

    fn member(&mut self, class: &mut Class) -> Result<(), FrontendError> {
        let mut is_public = false;
        let mut is_static = false;
        let mut claimed_by: Option<Symbol> = None;
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s == "public" => {
                    is_public = true;
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "private" => {
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s == "static" => {
                    is_static = true;
                    self.pos += 1;
                }
                Some(Tok::Annotation(body)) => {
                    let body = body.clone();
                    self.pos += 1;
                    let trimmed = body.trim();
                    if let Some(rest) = trimmed.strip_prefix("claimedby") {
                        claimed_by = Some(Symbol::intern(rest.trim()));
                    } else {
                        parse_class_spec(&body, class)?;
                        // A pure spec block is a complete member on its own
                        // when followed by another member or `}`.
                        if matches!(self.peek(), Some(Tok::RBrace) | Some(Tok::Annotation(_)))
                            || self.member_starts_here()
                        {
                            return Ok(());
                        }
                    }
                }
                _ => break,
            }
        }
        if matches!(self.peek(), Some(Tok::RBrace)) {
            return Ok(());
        }
        // Type name then member name, or constructor (Name `(`).
        let first = self.ident()?;
        if self.peek() == Some(&Tok::LParen) {
            // Constructor.
            let method = self.method_rest(
                Symbol::intern(&first),
                JType::Void,
                is_public,
                is_static,
                true,
            )?;
            class.methods.push(method);
            return Ok(());
        }
        let ty = type_of(&first);
        let name = Symbol::intern(&self.ident()?);
        if self.peek() == Some(&Tok::LParen) {
            let method = self.method_rest(name, ty, is_public, is_static, false)?;
            class.methods.push(method);
        } else {
            self.expect(&Tok::Semi)?;
            class.fields.push(Field {
                name,
                ty,
                is_public,
                is_static,
                claimed_by,
            });
        }
        Ok(())
    }

    /// Lookahead: does a plain member (Type Name ... ) start here?
    fn member_starts_here(&self) -> bool {
        matches!(
            (self.peek(), self.peek2()),
            (Some(Tok::Ident(_)), Some(Tok::Ident(_))) | (Some(Tok::Ident(_)), Some(Tok::LParen))
        )
    }

    fn method_rest(
        &mut self,
        name: Symbol,
        ret: JType,
        is_public: bool,
        is_static: bool,
        is_constructor: bool,
    ) -> Result<Method, FrontendError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let ty = type_of(&self.ident()?);
                let pname = Symbol::intern(&self.ident()?);
                params.push((pname, ty));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        // Optional contract annotation.
        let mut contract = Contract::default();
        if let Some(Tok::Annotation(body)) = self.peek() {
            let body = body.clone();
            self.pos += 1;
            contract = parse_contract(&body)?;
        }
        // Body or `;` (interface-style declaration).
        let body = if self.eat(&Tok::Semi) {
            Vec::new()
        } else {
            self.block()?
        };
        Ok(Method {
            name,
            params,
            ret,
            is_public,
            is_static,
            is_constructor,
            contract,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        match self.peek() {
            Some(Tok::Annotation(body)) => {
                let body = body.clone();
                self.pos += 1;
                parse_stmt_spec(&body)
            }
            Some(Tok::Ident(s)) if s == "if" => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_branch = self.stmt_or_block()?;
                let else_branch = if self.eat_kw("else") {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_branch, else_branch))
            }
            Some(Tok::Ident(s)) if s == "while" => {
                self.pos += 1;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let mut invariants = Vec::new();
                while let Some(Tok::Annotation(body)) = self.peek() {
                    let body = body.clone();
                    self.pos += 1;
                    invariants.extend(parse_loop_invariants(&body)?);
                }
                let body = self.stmt_or_block()?;
                Ok(Stmt::While {
                    cond,
                    invariants,
                    body,
                })
            }
            Some(Tok::Ident(s)) if s == "return" => {
                self.pos += 1;
                if self.eat(&Tok::Semi) {
                    return Ok(Stmt::Return(None));
                }
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(Some(e)))
            }
            // Local declaration: Ident Ident (but not a call or qualified
            // assignment).
            Some(Tok::Ident(_)) if matches!(self.peek2(), Some(Tok::Ident(_))) => {
                let ty = type_of(&self.ident()?);
                let name = Symbol::intern(&self.ident()?);
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::LocalDecl(name, ty, init))
            }
            _ => {
                // Assignment or expression statement.
                let e = self.expr()?;
                if self.eat(&Tok::Assign) {
                    let lv = match e {
                        Expr::Local(name) => LValue::Local(name),
                        Expr::Field(base, field) => LValue::Field(*base, field),
                        other => return err(format!("invalid assignment target {other:?}")),
                    };
                    let rhs = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Assign(lv, rhs))
                } else {
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::ExprStmt(e))
                }
            }
        }
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if self.peek() == Some(&Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    // ---- expressions (precedence climbing) ----------------------------------

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.eq_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.eq_expr()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::EqEq) => BinaryOp::Eq,
                Some(Tok::NotEq) => BinaryOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.rel_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinaryOp::Lt,
                Some(Tok::Le) => BinaryOp::Le,
                Some(Tok::Gt) => BinaryOp::Gt,
                Some(Tok::Ge) => BinaryOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinaryOp::Add,
                Some(Tok::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        while self.eat(&Tok::Star) {
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(BinaryOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        if self.eat(&Tok::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(e)));
        }
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Dot) {
            let name = Symbol::intern(&self.ident()?);
            if self.peek() == Some(&Tok::LParen) {
                let args = self.call_args()?;
                e = Expr::Call {
                    receiver: Some(Box::new(e)),
                    method: name,
                    args,
                };
            } else {
                e = Expr::Field(Box::new(e), name);
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, FrontendError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(Expr::IntLit(n)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(s)) => match s.as_str() {
                "null" => Ok(Expr::Null),
                "true" => Ok(Expr::BoolLit(true)),
                "false" => Ok(Expr::BoolLit(false)),
                "this" => Ok(Expr::This),
                "new" => {
                    let cls = Symbol::intern(&self.ident()?);
                    self.expect(&Tok::LParen)?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::New(cls))
                }
                _ => {
                    let name = Symbol::intern(&s);
                    if self.peek() == Some(&Tok::LParen) {
                        let args = self.call_args()?;
                        Ok(Expr::Call {
                            receiver: None,
                            method: name,
                            args,
                        })
                    } else {
                        Ok(Expr::Local(name))
                    }
                }
            },
            other => err(format!("expected expression, found {other:?}")),
        }
    }
}

fn type_of(name: &str) -> JType {
    match name {
        "boolean" => JType::Boolean,
        "int" => JType::Int,
        "void" => JType::Void,
        other => JType::Ref(Symbol::intern(other)),
    }
}

// ---- annotation content parsing ---------------------------------------------

/// Tokenize annotation content: words, quoted strings, `::`, `:=`, `;`, `,`.
fn spec_tokens(body: &str) -> Result<Vec<SpecTok>, FrontendError> {
    let chars: Vec<char> = body.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let n = chars.len();
    while i < n {
        match chars[i] {
            c if c.is_whitespace() => i += 1,
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < n && chars[j] != '"' {
                    j += 1;
                }
                if j >= n {
                    return err("unterminated string in annotation");
                }
                toks.push(SpecTok::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            ';' => {
                toks.push(SpecTok::Semi);
                i += 1;
            }
            ',' => {
                toks.push(SpecTok::Comma);
                i += 1;
            }
            ':' if i + 1 < n && chars[i + 1] == ':' => {
                toks.push(SpecTok::ColonColon);
                i += 2;
            }
            ':' if i + 1 < n && chars[i + 1] == '=' => {
                toks.push(SpecTok::ColonEq);
                i += 2;
            }
            _ => {
                let start = i;
                #[allow(clippy::nonminimal_bool)] // De Morgan'd form is less readable
                while i < n
                    && !chars[i].is_whitespace()
                    && !matches!(chars[i], '"' | ';' | ',')
                    && !(chars[i] == ':' && i + 1 < n && matches!(chars[i + 1], ':' | '='))
                {
                    i += 1;
                }
                if i == start {
                    i += 1;
                    continue;
                }
                toks.push(SpecTok::Word(chars[start..i].iter().collect()));
            }
        }
    }
    Ok(toks)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum SpecTok {
    Word(String),
    Str(String),
    Semi,
    Comma,
    ColonColon,
    ColonEq,
}

fn parse_formula(text: &str) -> Result<Form, FrontendError> {
    parse_form(text).map_err(|e| FrontendError {
        message: format!("in formula {text:?}: {e}"),
    })
}

/// Class-level spec block: specvars, vardefs, invariants.
fn parse_class_spec(body: &str, class: &mut Class) -> Result<(), FrontendError> {
    let toks = spec_tokens(body)?;
    let mut i = 0;
    let n = toks.len();
    let mut is_public = false;
    let mut is_ghost = false;
    let mut is_static = false;
    while i < n {
        match &toks[i] {
            SpecTok::Semi => {
                i += 1;
                is_public = false;
                is_ghost = false;
                is_static = false;
            }
            SpecTok::Word(w) => match w.as_str() {
                "public" => {
                    is_public = true;
                    i += 1;
                }
                "private" => {
                    i += 1;
                }
                "static" => {
                    is_static = true;
                    i += 1;
                }
                "ghost" => {
                    is_ghost = true;
                    i += 1;
                }
                "specvar" => {
                    let SpecTok::Word(name) = &toks[i + 1] else {
                        return err("specvar needs a name");
                    };
                    if toks.get(i + 2) != Some(&SpecTok::ColonColon) {
                        return err("specvar needs `:: sort`");
                    }
                    let SpecTok::Word(sort_text) = &toks[i + 3] else {
                        return err("specvar needs a sort");
                    };
                    let sort = parse_sort(sort_text).map_err(|e| FrontendError {
                        message: format!("bad sort {sort_text:?}: {e}"),
                    })?;
                    class.specvars.push(SpecVar {
                        name: Symbol::intern(name),
                        sort,
                        is_public,
                        is_ghost,
                        is_static,
                    });
                    i += 4;
                }
                "vardefs" => {
                    let SpecTok::Str(text) = &toks[i + 1] else {
                        return err("vardefs needs a quoted definition");
                    };
                    // Format: name == formula.
                    let Some((name, formula)) = text.split_once("==") else {
                        return err(format!("vardefs missing `==`: {text:?}"));
                    };
                    class
                        .vardefs
                        .push((Symbol::intern(name.trim()), parse_formula(formula)?));
                    i += 2;
                }
                "invariant" => {
                    let SpecTok::Str(text) = &toks[i + 1] else {
                        return err("invariant needs a quoted formula");
                    };
                    class.invariants.push(parse_formula(text)?);
                    i += 2;
                }
                other => {
                    return err(format!("unexpected `{other}` in class annotation"));
                }
            },
            other => return err(format!("unexpected {other:?} in class annotation")),
        }
    }
    Ok(())
}

/// Contract annotation: requires/modifies/ensures/assuming in any order.
fn parse_contract(body: &str) -> Result<Contract, FrontendError> {
    let toks = spec_tokens(body)?;
    let mut contract = Contract::default();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            SpecTok::Semi => i += 1,
            SpecTok::Word(w) => match w.as_str() {
                "requires" => {
                    let SpecTok::Str(text) = &toks[i + 1] else {
                        return err("requires needs a quoted formula");
                    };
                    contract.requires = Some(parse_formula(text)?);
                    i += 2;
                }
                "ensures" => {
                    let SpecTok::Str(text) = &toks[i + 1] else {
                        return err("ensures needs a quoted formula");
                    };
                    contract.ensures = Some(parse_formula(text)?);
                    i += 2;
                }
                "assuming" => {
                    contract.assumed = true;
                    i += 1;
                }
                "modifies" => {
                    i += 1;
                    loop {
                        match toks.get(i) {
                            Some(SpecTok::Str(text)) => {
                                contract.modifies.push(parse_formula(text)?);
                                i += 1;
                            }
                            Some(SpecTok::Word(name))
                                if !matches!(
                                    name.as_str(),
                                    "requires" | "ensures" | "modifies" | "assuming"
                                ) =>
                            {
                                contract.modifies.push(Form::v(name));
                                i += 1;
                            }
                            _ => break,
                        }
                        if toks.get(i) == Some(&SpecTok::Comma) {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                }
                other => return err(format!("unexpected `{other}` in contract")),
            },
            other => return err(format!("unexpected {other:?} in contract")),
        }
    }
    Ok(contract)
}

/// Statement-level annotation.
fn parse_stmt_spec(body: &str) -> Result<Stmt, FrontendError> {
    let toks = spec_tokens(body)?;
    match toks.as_slice() {
        [SpecTok::Word(kw), SpecTok::Str(text), rest @ ..]
            if matches!(kw.as_str(), "assert" | "assume" | "noteThat")
                && rest.iter().all(|t| *t == SpecTok::Semi) =>
        {
            let f = parse_formula(text)?;
            Ok(match kw.as_str() {
                "assert" => Stmt::Assert(f),
                "assume" => Stmt::Assume(f),
                _ => Stmt::NoteThat(f),
            })
        }
        [SpecTok::Word(name), SpecTok::ColonEq, SpecTok::Str(text), rest @ ..]
            if rest.iter().all(|t| *t == SpecTok::Semi) =>
        {
            Ok(Stmt::GhostAssign(
                Symbol::intern(name),
                parse_formula(text)?,
            ))
        }
        other => err(format!("unrecognized statement annotation {other:?}")),
    }
}

/// Loop-invariant annotation: `inv "F"` repeated.
fn parse_loop_invariants(body: &str) -> Result<Vec<Form>, FrontendError> {
    let toks = spec_tokens(body)?;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match (&toks[i], toks.get(i + 1)) {
            (SpecTok::Word(w), Some(SpecTok::Str(text))) if w == "inv" => {
                out.push(parse_formula(text)?);
                i += 2;
            }
            (SpecTok::Semi, _) => i += 1,
            other => return err(format!("unrecognized loop annotation {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 + 3 + 4 List class, verbatim modulo layout.
    pub const LIST_SOURCE: &str = r#"
class List
{
   private Node first;

   /*:
     private specvar nodes :: objset;
     private vardefs "nodes == { n. n ~= null & rtrancl_pt (% x y. x..Node.next = y) first n}";

     public specvar content :: objset;
     private vardefs "content == {x. EX n. x = n..Node.data & n : nodes}";

     invariant "tree [List.first, Node.next]";

     invariant "first = null | (first : Object.alloc &
        (ALL n. n..Node.next ~= first & (n ~= this --> n..List.first ~= first)))";

     invariant "ALL n1 n2. n1 : nodes & n2 : nodes & n1..Node.data = n2..Node.data --> n1 = n2";
   */

   public List()
   /*: modifies content
       ensures "content = {}" */
   { }

   public void add(Object o)
   /*: requires "o ~: content & o ~= null"
       modifies content
       ensures "content = old content Un {o}" */
   {
      Node n = new Node();
      n.data = o;
      n.next = first;
      first = n;
   }

   public boolean empty()
   /*: ensures "result = (content = {})" */
   {
      return (first == null);
   }

   public Object getOne()
   /*: requires "content ~= {}"
       ensures "result : content" */
   {
      return first.data;
   }

   public void remove(Object o)
   /*: requires "o : content"
       modifies content
       ensures "content = old content - {o}" */
   {
      if (first != null) {
         if (first.data == o) {
            first = first.next;
         } else {
            Node prev = first;
            Node current = first.next;
            boolean go = true;
            while (go && (current != null))
            /*: inv "True" */
            {
               if (current.data == o) {
                  prev.next = current.next;
                  go = false;
               }
               prev = current;
               current = current.next;
            }
         }
      }
   }
}

class Node {
   public /*: claimedby List */ Object data;
   public /*: claimedby List */ Node next;
}
"#;

    #[test]
    fn parses_figure_list() {
        let prog = parse_program(LIST_SOURCE).unwrap();
        assert_eq!(prog.classes.len(), 2);
        let list = &prog.classes[0];
        assert_eq!(list.name.as_str(), "List");
        assert_eq!(list.fields.len(), 1);
        assert_eq!(list.specvars.len(), 2);
        assert_eq!(list.vardefs.len(), 2);
        assert_eq!(list.invariants.len(), 3);
        assert_eq!(list.methods.len(), 5);
        let add = list
            .methods
            .iter()
            .find(|m| m.name.as_str() == "add")
            .unwrap();
        assert!(add.contract.requires.is_some());
        assert_eq!(add.contract.modifies.len(), 1);
        assert_eq!(add.body.len(), 4);
        let node = &prog.classes[1];
        assert_eq!(node.fields.len(), 2);
        assert_eq!(node.fields[0].claimed_by, Some(Symbol::intern("List")));
    }

    #[test]
    fn parses_statements() {
        let src = r#"
class C {
  public void m(Object o) {
    Node n = new Node();
    n.next = null;
    if (n == o) { n = null; } else { o = n; }
    while (n != null) { n = n.next; }
    return;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let m = &prog.classes[0].methods[0];
        assert_eq!(m.body.len(), 5);
        assert!(matches!(m.body[2], Stmt::If(_, _, _)));
        assert!(matches!(m.body[3], Stmt::While { .. }));
    }

    #[test]
    fn parses_calls() {
        let src = r#"
class Client {
  List a;
  public void go() {
    a.add(x);
    Object o = a.getOne();
    boolean e = a.empty();
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let m = &prog.classes[0].methods[0];
        assert!(matches!(&m.body[0], Stmt::ExprStmt(Expr::Call { .. })));
        assert!(matches!(
            &m.body[1],
            Stmt::LocalDecl(_, _, Some(Expr::Call { .. }))
        ));
    }

    #[test]
    fn parses_ghost_and_asserts() {
        let src = r#"
class C {
  /*: public ghost specvar init :: bool; */
  public void m() {
    //: init := "True";
    //: assert "init";
    //: noteThat "init = init";
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let c = &prog.classes[0];
        assert!(c.specvars[0].is_ghost);
        let m = &c.methods[0];
        assert!(matches!(m.body[0], Stmt::GhostAssign(_, _)));
        assert!(matches!(m.body[1], Stmt::Assert(_)));
        assert!(matches!(m.body[2], Stmt::NoteThat(_)));
    }

    #[test]
    fn parses_figure2_client() {
        let src = r#"
class Client {
   List a, b;
}
"#;
        // Multi-declarator fields are not in the subset; ensure the error is
        // clear rather than silent misparse.
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn assumed_contract() {
        let src = r#"
class C {
  public void m()
  /*: assuming requires "True" ensures "True" */
  { }
}
"#;
        let prog = parse_program(src).unwrap();
        assert!(prog.classes[0].methods[0].contract.assumed);
    }

    #[test]
    fn modifies_lists() {
        let src = r#"
class C {
  public void m()
  /*: modifies content, "List.content" ensures "True" */
  { }
}
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.classes[0].methods[0].contract.modifies.len(), 2);
    }

    #[test]
    fn loop_invariants() {
        let src = r#"
class C {
  public void m() {
    while (true)
    /*: inv "x : S"
        inv "y : S" */
    { }
  }
}
"#;
        let prog = parse_program(src).unwrap();
        match &prog.classes[0].methods[0].body[0] {
            Stmt::While { invariants, .. } => assert_eq!(invariants.len(), 2),
            other => panic!("expected while, got {other:?}"),
        }
    }
}
