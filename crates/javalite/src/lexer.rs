//! Tokenizer for the Java subset. Annotation comments become single tokens
//! carrying their raw content; ordinary comments are skipped.

use std::fmt;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    /// `/*: ... */` or `//: ...` content (without the markers).
    Annotation(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
    Assign,
    EqEq,
    NotEq,
    Not,
    AndAnd,
    OrOr,
    Plus,
    Minus,
    Star,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Annotation(_) => write!(f, "/*: ... */"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Assign => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Not => write!(f, "!"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A lexing failure with line information.
#[derive(Debug, Clone)]
pub struct JavaLexError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for JavaLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

pub fn lex_java(src: &str) -> Result<Vec<Tok>, JavaLexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // //: annotation or // comment.
                let is_spec = i + 2 < n && chars[i + 2] == ':';
                let start = if is_spec { i + 3 } else { i + 2 };
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                if is_spec {
                    toks.push(Tok::Annotation(chars[start..j].iter().collect()));
                }
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let is_spec = i + 2 < n && chars[i + 2] == ':';
                let start = if is_spec { i + 3 } else { i + 2 };
                let mut j = start;
                while j + 1 < n && !(chars[j] == '*' && chars[j + 1] == '/') {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                if j + 1 >= n {
                    return Err(JavaLexError {
                        line,
                        message: "unterminated comment".into(),
                    });
                }
                if is_spec {
                    toks.push(Tok::Annotation(chars[start..j].iter().collect()));
                }
                i = j + 2;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    toks.push(Tok::EqEq);
                    i += 2;
                } else {
                    toks.push(Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    toks.push(Tok::NotEq);
                    i += 2;
                } else {
                    toks.push(Tok::Not);
                    i += 1;
                }
            }
            '&' if i + 1 < n && chars[i + 1] == '&' => {
                toks.push(Tok::AndAnd);
                i += 2;
            }
            '|' if i + 1 < n && chars[i + 1] == '|' => {
                toks.push(Tok::OrOr);
                i += 2;
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < n && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok::Int(text.parse().map_err(|_| JavaLexError {
                    line,
                    message: format!("bad integer {text}"),
                })?));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(JavaLexError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_java() {
        let toks = lex_java("class List { private Node first; }").unwrap();
        assert_eq!(toks[0], Tok::Ident("class".into()));
        assert_eq!(toks[1], Tok::Ident("List".into()));
        assert_eq!(toks[2], Tok::LBrace);
        assert!(toks.contains(&Tok::Semi));
    }

    #[test]
    fn annotations_captured() {
        let toks = lex_java("/*: public specvar content :: objset; */").unwrap();
        assert_eq!(toks.len(), 1);
        match &toks[0] {
            Tok::Annotation(body) => assert!(body.contains("specvar content")),
            other => panic!("expected annotation, got {other:?}"),
        }
    }

    #[test]
    fn line_annotations() {
        let toks = lex_java("x = 1;\n//: init := \"True\";\ny = 2;").unwrap();
        let ann: Vec<&Tok> = toks
            .iter()
            .filter(|t| matches!(t, Tok::Annotation(_)))
            .collect();
        assert_eq!(ann.len(), 1);
    }

    #[test]
    fn plain_comments_skipped() {
        let toks = lex_java("// comment\n/* block */ x").unwrap();
        assert_eq!(toks, vec![Tok::Ident("x".into())]);
    }

    #[test]
    fn operators() {
        let toks = lex_java("a == b != !c && d || e <= f").unwrap();
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::NotEq));
        assert!(toks.contains(&Tok::Not));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::OrOr));
        assert!(toks.contains(&Tok::Le));
    }

    #[test]
    fn figure4_snippet() {
        let src = "public void add(Object o) { Node n = new Node(); n.data = o; \
                   n.next = first; first = n; }";
        let toks = lex_java(src).unwrap();
        assert!(toks.contains(&Tok::Ident("new".into())));
        assert!(toks.contains(&Tok::Dot));
    }
}
