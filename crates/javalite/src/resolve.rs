//! Resolution: from parsed classes to a typed program with a global logical
//! signature.
//!
//! * Every concrete field `f` of class `C` becomes the function symbol
//!   `C.f : obj => T`; every per-instance specvar likewise (`static`
//!   specvars/fields become plain symbols).
//! * Bare names in class annotations are qualified: `content` inside `List`
//!   means `this..List.content` — establishing the paper's convention that
//!   "each instantiation has its own specification variable content".
//! * `vardefs` abstraction functions become lambda definitions
//!   (`List.nodes = % this. {n. ...}`) ready for unfolding by the VC
//!   generator.
//! * `claimedby` encapsulation is checked: a claimed field may be accessed
//!   only from methods of the claiming class (§2.3's representation
//!   encapsulation).

use crate::ast::*;
use crate::parser::FrontendError;
use jahob_logic::{form::sym, Form, Sort};
use jahob_util::{FxHashMap, Symbol};

fn err<T>(message: impl Into<String>) -> Result<T, FrontendError> {
    Err(FrontendError {
        message: message.into(),
    })
}

/// Sort of a Java type in the logic.
pub fn sort_of_type(ty: &JType) -> Option<Sort> {
    match ty {
        JType::Ref(_) => Some(Sort::Obj),
        JType::Boolean => Some(Sort::Bool),
        JType::Int => Some(Sort::Int),
        JType::Void => None,
    }
}

/// A resolved method.
#[derive(Clone, Debug)]
pub struct TypedMethod {
    pub class: Symbol,
    pub name: Symbol,
    /// `C.m`.
    pub qualified: Symbol,
    pub params: Vec<(Symbol, Sort)>,
    /// Original parameter types (for call-receiver class resolution).
    pub param_types: Vec<(Symbol, JType)>,
    pub ret: Option<Sort>,
    pub ret_type: JType,
    pub is_static: bool,
    pub is_constructor: bool,
    pub contract: Contract,
    pub body: Vec<Stmt>,
}

/// A resolved class.
#[derive(Clone, Debug)]
pub struct TypedClass {
    pub name: Symbol,
    /// Qualified field name → (sort, claimedby).
    pub fields: Vec<(Symbol, Sort, Option<Symbol>)>,
    /// Qualified specvar name → (sort, ghost).
    pub specvars: Vec<(Symbol, Sort, bool)>,
    /// Invariants with free variable `this` (instance classes).
    pub invariants: Vec<Form>,
    pub methods: Vec<TypedMethod>,
}

/// The resolved program.
#[derive(Clone, Debug)]
pub struct TypedProgram {
    pub classes: Vec<TypedClass>,
    /// Global logical signature: qualified fields, specvars, `Object.alloc`.
    pub sig: FxHashMap<Symbol, Sort>,
    /// Vardef definitions: qualified name → `% this. body` lambda (or plain
    /// body for static specvars).
    pub defs: FxHashMap<Symbol, Form>,
    /// For reference-typed fields: qualified field name → class of the
    /// field's type (for call-receiver resolution).
    pub field_classes: FxHashMap<Symbol, Symbol>,
}

impl TypedProgram {
    /// Find a method by class and name.
    pub fn method(&self, class: &str, name: &str) -> Option<&TypedMethod> {
        self.classes
            .iter()
            .find(|c| c.name.as_str() == class)?
            .methods
            .iter()
            .find(|m| m.name.as_str() == name)
    }

    /// The invariants of a class.
    pub fn invariants(&self, class: Symbol) -> &[Form] {
        self.classes
            .iter()
            .find(|c| c.name == class)
            .map(|c| c.invariants.as_slice())
            .unwrap_or(&[])
    }
}

/// Resolve a parsed program.
pub fn resolve(program: &Program) -> Result<TypedProgram, FrontendError> {
    let mut sig: FxHashMap<Symbol, Sort> = FxHashMap::default();
    sig.insert(Symbol::intern(sym::ALLOC), Sort::objset());

    let mut field_classes: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    // Pass 1: declare all fields and specvars.
    for class in &program.classes {
        for field in &class.fields {
            if let JType::Ref(c) = &field.ty {
                field_classes.insert(qualify(class.name, field.name), *c);
            }
            let Some(target) = sort_of_type(&field.ty) else {
                return err(format!("field `{}` has void type", field.name));
            };
            let qualified = qualify(class.name, field.name);
            let sort = if field.is_static {
                target
            } else {
                Sort::field(target)
            };
            sig.insert(qualified, sort);
        }
        for sv in &class.specvars {
            let qualified = qualify(class.name, sv.name);
            let sort = if sv.is_static {
                sv.sort.clone()
            } else {
                Sort::field(sv.sort.clone())
            };
            sig.insert(qualified, sort);
        }
    }

    // Pass 2: per class, build the qualification map and rewrite formulas.
    let mut classes = Vec::new();
    let mut defs: FxHashMap<Symbol, Form> = FxHashMap::default();
    for class in &program.classes {
        let qualifier = Qualifier::new(program, class);
        let mut invariants = Vec::new();
        for inv in &class.invariants {
            invariants.push(relativize_to_alloc(&qualifier.qualify_form(inv)));
        }
        for (name, body) in &class.vardefs {
            let qualified = qualify(class.name, *name);
            let body = qualifier.qualify_form(body);
            let is_static = class
                .specvars
                .iter()
                .find(|sv| sv.name == *name)
                .map(|sv| sv.is_static)
                .unwrap_or(false);
            let def = if is_static {
                body
            } else {
                Form::Lambda(
                    vec![(Symbol::intern(sym::THIS), Sort::Obj)],
                    std::rc::Rc::new(body),
                )
            };
            defs.insert(qualified, def);
        }

        let mut methods = Vec::new();
        for m in &class.methods {
            let mut params = Vec::new();
            for (pname, pty) in &m.params {
                let Some(sort) = sort_of_type(pty) else {
                    return err(format!("parameter `{pname}` has void type"));
                };
                params.push((*pname, sort));
            }
            let contract = Contract {
                requires: m
                    .contract
                    .requires
                    .as_ref()
                    .map(|f| qualifier.qualify_form(f)),
                modifies: m
                    .contract
                    .modifies
                    .iter()
                    .map(|f| qualifier.qualify_designator(f))
                    .collect(),
                ensures: m
                    .contract
                    .ensures
                    .as_ref()
                    .map(|f| qualifier.qualify_form(f)),
                assumed: m.contract.assumed,
            };
            let body = m.body.iter().map(|s| qualify_stmt(s, &qualifier)).collect();
            methods.push(TypedMethod {
                class: class.name,
                name: m.name,
                qualified: qualify(class.name, m.name),
                params,
                param_types: m.params.clone(),
                ret: if m.is_constructor {
                    None
                } else {
                    sort_of_type(&m.ret)
                },
                ret_type: m.ret.clone(),
                is_static: m.is_static,
                is_constructor: m.is_constructor,
                contract,
                body,
            });
        }

        classes.push(TypedClass {
            name: class.name,
            fields: class
                .fields
                .iter()
                .map(|f| {
                    (
                        qualify(class.name, f.name),
                        sig[&qualify(class.name, f.name)].clone(),
                        f.claimed_by,
                    )
                })
                .collect(),
            specvars: class
                .specvars
                .iter()
                .map(|sv| {
                    (
                        qualify(class.name, sv.name),
                        sig[&qualify(class.name, sv.name)].clone(),
                        sv.is_ghost,
                    )
                })
                .collect(),
            invariants,
            methods,
        });
    }

    let typed = TypedProgram {
        classes,
        sig,
        defs,
        field_classes,
    };
    check_claims(program, &typed)?;
    Ok(typed)
}

/// Relativize quantifiers inside an invariant to the allocated heap:
/// `ALL x. φ` becomes `ALL x. (x : Object.alloc | x = null) → φ` and
/// `EX x. φ` becomes `EX x. (x : Object.alloc | x = null) & φ`. Jahob
/// invariants speak about the (closed) runtime heap, where unallocated
/// objects do not exist; without the relativization, invariants over "all
/// objects" could never be preserved by allocation.
pub fn relativize_to_alloc(form: &Form) -> Form {
    use jahob_logic::QKind;
    use std::rc::Rc;
    match form {
        Form::Quant(kind, binders, body) => {
            let inner = relativize_to_alloc(body);
            let guards: Vec<Form> = binders
                .iter()
                .map(|(name, _)| {
                    Form::or(vec![
                        Form::elem(Form::Var(*name), Form::v(sym::ALLOC)),
                        Form::eq(Form::Var(*name), Form::Null),
                    ])
                })
                .collect();
            let guard = Form::and(guards);
            let new_body = match kind {
                QKind::All => Form::implies(guard, inner),
                QKind::Ex => Form::and(vec![guard, inner]),
            };
            Form::Quant(*kind, binders.clone(), Rc::new(new_body))
        }
        Form::And(ps) => Form::and(ps.iter().map(relativize_to_alloc).collect()),
        Form::Or(ps) => Form::or(ps.iter().map(relativize_to_alloc).collect()),
        Form::Unop(op, a) => Form::Unop(*op, std::rc::Rc::new(relativize_to_alloc(a))),
        Form::Binop(op, a, b) => Form::binop(*op, relativize_to_alloc(a), relativize_to_alloc(b)),
        other => other.clone(),
    }
}

/// `C.name`.
pub fn qualify(class: Symbol, name: Symbol) -> Symbol {
    Symbol::intern(&format!("{class}.{name}"))
}

/// Rewrites bare field/specvar names in formulas to their qualified,
/// this-applied forms.
pub struct Qualifier {
    map: FxHashMap<Symbol, Form>,
}

impl Qualifier {
    fn new(program: &Program, class: &Class) -> Self {
        let this = Form::v(sym::THIS);
        let mut map = FxHashMap::default();
        for field in &class.fields {
            let qualified = qualify(class.name, field.name);
            let replacement = if field.is_static {
                Form::Var(qualified)
            } else {
                Form::app(Form::Var(qualified), vec![this.clone()])
            };
            map.insert(field.name, replacement);
        }
        for sv in &class.specvars {
            let qualified = qualify(class.name, sv.name);
            let replacement = if sv.is_static {
                Form::Var(qualified)
            } else {
                Form::app(Form::Var(qualified), vec![this.clone()])
            };
            map.insert(sv.name, replacement);
        }
        let _ = program;
        Qualifier { map }
    }

    /// Qualify a specification formula.
    pub fn qualify_form(&self, form: &Form) -> Form {
        form.subst(&self.map)
    }

    /// Qualify a modifies designator: `content` → the pair (`List.content`,
    /// receiver `this`), kept as the applied form.
    pub fn qualify_designator(&self, form: &Form) -> Form {
        self.qualify_form(form)
    }
}

fn qualify_stmt(stmt: &Stmt, qualifier: &Qualifier) -> Stmt {
    match stmt {
        Stmt::GhostAssign(name, f) => Stmt::GhostAssign(*name, qualifier.qualify_form(f)),
        Stmt::Assert(f) => Stmt::Assert(qualifier.qualify_form(f)),
        Stmt::Assume(f) => Stmt::Assume(qualifier.qualify_form(f)),
        Stmt::NoteThat(f) => Stmt::NoteThat(qualifier.qualify_form(f)),
        Stmt::If(c, t, e) => Stmt::If(
            c.clone(),
            t.iter().map(|s| qualify_stmt(s, qualifier)).collect(),
            e.iter().map(|s| qualify_stmt(s, qualifier)).collect(),
        ),
        Stmt::While {
            cond,
            invariants,
            body,
        } => Stmt::While {
            cond: cond.clone(),
            invariants: invariants
                .iter()
                .map(|f| qualifier.qualify_form(f))
                .collect(),
            body: body.iter().map(|s| qualify_stmt(s, qualifier)).collect(),
        },
        other => other.clone(),
    }
}

/// Encapsulation check: fields `claimedby C` may be accessed only from C.
fn check_claims(program: &Program, typed: &TypedProgram) -> Result<(), FrontendError> {
    // Map field name → claiming class (field names assumed unique per
    // class; access sites name fields unqualified, so gather by name +
    // declaring class).
    let mut claims: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    for class in &program.classes {
        for f in &class.fields {
            if let Some(claimer) = f.claimed_by {
                claims.insert(f.name, claimer);
            }
        }
    }
    if claims.is_empty() {
        return Ok(());
    }
    for class in &typed.classes {
        for m in &class.methods {
            check_claims_stmts(&m.body, class.name, &claims).map_err(|field| FrontendError {
                message: format!(
                    "method {}.{} accesses field `{field}` claimed by {}",
                    class.name, m.name, claims[&field]
                ),
            })?;
        }
    }
    Ok(())
}

fn check_claims_stmts(
    stmts: &[Stmt],
    class: Symbol,
    claims: &FxHashMap<Symbol, Symbol>,
) -> Result<(), Symbol> {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                if let LValue::Field(base, f) = lv {
                    check_claims_expr(base, class, claims)?;
                    check_claim(*f, class, claims)?;
                }
                check_claims_expr(e, class, claims)?;
            }
            Stmt::LocalDecl(_, _, Some(e)) | Stmt::ExprStmt(e) => {
                check_claims_expr(e, class, claims)?;
            }
            Stmt::Return(Some(e)) => check_claims_expr(e, class, claims)?,
            Stmt::If(c, t, e) => {
                check_claims_expr(c, class, claims)?;
                check_claims_stmts(t, class, claims)?;
                check_claims_stmts(e, class, claims)?;
            }
            Stmt::While { cond, body, .. } => {
                check_claims_expr(cond, class, claims)?;
                check_claims_stmts(body, class, claims)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_claims_expr(
    expr: &Expr,
    class: Symbol,
    claims: &FxHashMap<Symbol, Symbol>,
) -> Result<(), Symbol> {
    match expr {
        Expr::Field(base, f) => {
            check_claims_expr(base, class, claims)?;
            check_claim(*f, class, claims)
        }
        Expr::Unary(_, e) => check_claims_expr(e, class, claims),
        Expr::Binary(_, a, b) => {
            check_claims_expr(a, class, claims)?;
            check_claims_expr(b, class, claims)
        }
        Expr::Call { receiver, args, .. } => {
            if let Some(r) = receiver {
                check_claims_expr(r, class, claims)?;
            }
            for a in args {
                check_claims_expr(a, class, claims)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_claim(
    field: Symbol,
    class: Symbol,
    claims: &FxHashMap<Symbol, Symbol>,
) -> Result<(), Symbol> {
    match claims.get(&field) {
        Some(&claimer) if claimer != class => Err(field),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const LIST_SOURCE: &str = include_str!("../../../case_studies/list.javax");

    #[test]
    fn resolves_list() {
        let prog = parse_program(LIST_SOURCE).unwrap();
        let typed = resolve(&prog).unwrap();
        // Signature entries.
        assert_eq!(
            typed.sig[&Symbol::intern("List.first")],
            Sort::field(Sort::Obj)
        );
        assert_eq!(
            typed.sig[&Symbol::intern("Node.next")],
            Sort::field(Sort::Obj)
        );
        assert_eq!(
            typed.sig[&Symbol::intern("List.content")],
            Sort::field(Sort::objset())
        );
        // Vardefs became lambdas over `this`.
        let nodes_def = &typed.defs[&Symbol::intern("List.nodes")];
        assert!(matches!(nodes_def, Form::Lambda(_, _)));
        let text = nodes_def.to_string();
        assert!(text.contains("List.first this"), "qualified first: {text}");
        // Contracts qualified: add's ensures mentions List.content this.
        let add = typed.method("List", "add").unwrap();
        let ens = add.contract.ensures.as_ref().unwrap().to_string();
        assert!(ens.contains("List.content this"), "{ens}");
        // Invariants mention qualified names.
        let invs = typed.invariants(Symbol::intern("List"));
        assert_eq!(invs.len(), 3);
        assert!(invs[0].to_string().contains("List.first"));
    }

    #[test]
    fn claimedby_enforced() {
        let bad = r#"
class A {
  public void touch(Node n) {
    n.next = null;
  }
}
class Node {
  public /*: claimedby List */ Node next;
}
"#;
        let prog = parse_program(bad).unwrap();
        let e = resolve(&prog).unwrap_err();
        assert!(e.message.contains("claimed by List"), "{}", e.message);

        let good = r#"
class List {
  public void touch(Node n) {
    n.next = null;
  }
}
class Node {
  public /*: claimedby List */ Node next;
}
"#;
        let prog = parse_program(good).unwrap();
        assert!(resolve(&prog).is_ok());
    }

    #[test]
    fn static_members_stay_global() {
        let src = r#"
class Glob {
  /*: public static specvar inited :: bool; */
  private static Node head;
  public static void reset()
  /*: modifies inited ensures "inited" */
  { }
}
class Node { public Node next; }
"#;
        let prog = parse_program(src).unwrap();
        let typed = resolve(&prog).unwrap();
        assert_eq!(typed.sig[&Symbol::intern("Glob.inited")], Sort::Bool);
        assert_eq!(typed.sig[&Symbol::intern("Glob.head")], Sort::Obj);
        let m = typed.method("Glob", "reset").unwrap();
        assert_eq!(
            m.contract.ensures.as_ref().unwrap(),
            &Form::v("Glob.inited")
        );
    }
}
