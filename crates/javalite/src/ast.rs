//! Abstract syntax of the Java subset plus its specifications.

use jahob_logic::Form;
use jahob_util::Symbol;

/// A whole program (one or more classes).
#[derive(Clone, Debug)]
pub struct Program {
    pub classes: Vec<Class>,
}

/// A class declaration.
#[derive(Clone, Debug)]
pub struct Class {
    pub name: Symbol,
    pub fields: Vec<Field>,
    pub methods: Vec<Method>,
    pub specvars: Vec<SpecVar>,
    /// Abstraction functions: specvar name → defining formula (body uses
    /// unqualified names; the resolver qualifies them).
    pub vardefs: Vec<(Symbol, Form)>,
    pub invariants: Vec<Form>,
}

/// Java types in the subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JType {
    /// A class reference type (includes `Object`).
    Ref(Symbol),
    Boolean,
    Int,
    Void,
}

/// A concrete field.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: Symbol,
    pub ty: JType,
    pub is_public: bool,
    pub is_static: bool,
    /// `claimedby C`: only class C's methods may access this field.
    pub claimed_by: Option<Symbol>,
}

/// A specification variable.
#[derive(Clone, Debug)]
pub struct SpecVar {
    pub name: Symbol,
    /// Declared sort text parsed via `jahob-logic`.
    pub sort: jahob_logic::Sort,
    pub is_public: bool,
    /// Ghost variables are assigned by `//: x := "e"` and not constrained
    /// by vardefs.
    pub is_ghost: bool,
    pub is_static: bool,
}

/// A method contract.
#[derive(Clone, Debug, Default)]
pub struct Contract {
    pub requires: Option<Form>,
    /// Modified designators (specvar names, `Class.field` names, or
    /// `x..Class.f` forms kept as formulas).
    pub modifies: Vec<Form>,
    pub ensures: Option<Form>,
    /// `assuming`: take the contract as given without verifying the body
    /// (how the game case study is "partially verified").
    pub assumed: bool,
}

/// A method.
#[derive(Clone, Debug)]
pub struct Method {
    pub name: Symbol,
    pub params: Vec<(Symbol, JType)>,
    pub ret: JType,
    pub is_public: bool,
    pub is_static: bool,
    pub is_constructor: bool,
    pub contract: Contract,
    pub body: Vec<Stmt>,
}

/// L-values of assignments.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Local variable or parameter.
    Local(Symbol),
    /// `e.f`.
    Field(Expr, Symbol),
}

/// Expressions (side-effect free except `New`, which only appears directly
/// on the right of an assignment).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Local(Symbol),
    This,
    Null,
    BoolLit(bool),
    IntLit(i64),
    /// `e.f` field read.
    Field(Box<Expr>, Symbol),
    /// `new C()`.
    New(Symbol),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `recv.m(args)` or `m(args)` (static within the class) as an
    /// expression — only allowed as the entire right-hand side of an
    /// assignment or as an expression statement.
    Call {
        receiver: Option<Box<Expr>>,
        method: Symbol,
        args: Vec<Expr>,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Eq,
    Ne,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `T x;` or `T x = e;`
    LocalDecl(Symbol, JType, Option<Expr>),
    /// `lv = e;`
    Assign(LValue, Expr),
    /// Expression statement (a call).
    ExprStmt(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While {
        cond: Expr,
        /// Loop invariants from `/*: inv "..." */`.
        invariants: Vec<Form>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    /// `//: g := "formula";`
    GhostAssign(Symbol, Form),
    /// `//: assert "formula";`
    Assert(Form),
    /// `//: assume "formula";`
    Assume(Form),
    /// `//: noteThat "formula";` — assert then assume (a lemma).
    NoteThat(Form),
}
