//! `jahob-javalite`: the Java-subset + annotation frontend.
//!
//! Jahob programs are "written in a subset of Java" with specifications in
//! special comments (`/*: ... */`, `//: ...`) that a standard Java compiler
//! ignores (§2). This crate parses exactly the subset the paper's figures
//! use — classes, object/boolean/int fields, methods with bodies built from
//! locals, assignments, field reads/writes, `new`, `if`, `while`, `return`,
//! and method calls — together with the full annotation language:
//!
//! * `specvar` / `ghost specvar` declarations,
//! * `vardefs` abstraction functions (the formal connection between
//!   concrete state and abstract state, §2.3),
//! * class `invariant`s,
//! * method contracts (`requires` / `modifies` / `ensures`),
//! * loop invariants (`/*: inv "..." */` after `while`),
//! * ghost assignments (`//: init := "True";`),
//! * `assert` / `assume` / `noteThat` intermediate assertions (§3 "by
//!   providing intermediate assertions we have verified ..."),
//! * `claimedby` field encapsulation claims,
//! * `assuming` method-summary annotations (bodies taken as specified but
//!   not verified — how the paper's game case study is "partially
//!   verified").
//!
//! [`resolve`] typechecks the program, builds the global logical signature
//! (fields and per-instance specvars become `obj => T` functions), and
//! elaborates every formula with `jahob-logic`'s sort inference.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod resolve;

pub use ast::*;
pub use parser::{parse_program, FrontendError};
pub use resolve::{resolve, TypedProgram};
