//! Deterministic finite automata over bit-vector alphabets.
//!
//! The alphabet of an automaton with `k` tracks is `0..2^k`: letter `σ`'s
//! bit `i` says whether the current position belongs to track `i`'s set.
//! All automata are complete (every state has a transition on every letter).

use jahob_util::budget::{Budget, Exhaustion};
use jahob_util::FxHashMap;
use std::collections::VecDeque;

/// A complete DFA over the alphabet `0..2^num_tracks`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    pub num_tracks: usize,
    /// `trans[state][letter]` → next state.
    pub trans: Vec<Vec<u32>>,
    pub accept: Vec<bool>,
    pub init: u32,
}

impl Dfa {
    /// Alphabet size.
    pub fn alphabet(&self) -> usize {
        1usize << self.num_tracks
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The automaton accepting every word (single accepting state).
    pub fn all(num_tracks: usize) -> Dfa {
        Dfa {
            num_tracks,
            trans: vec![vec![0; 1 << num_tracks]],
            accept: vec![true],
            init: 0,
        }
    }

    /// The automaton rejecting every word.
    pub fn none(num_tracks: usize) -> Dfa {
        Dfa {
            num_tracks,
            trans: vec![vec![0; 1 << num_tracks]],
            accept: vec![false],
            init: 0,
        }
    }

    /// A single-state DFA accepting exactly the words all of whose letters
    /// satisfy `pred` (used for the per-position set-algebra atoms: X ⊆ Y,
    /// X = Y ∪ Z, ... are letterwise conditions).
    pub fn letterwise(num_tracks: usize, pred: impl Fn(u32) -> bool) -> Dfa {
        let sigma = 1usize << num_tracks;
        // State 0: all letters so far OK (accepting). State 1: sink.
        let mut trans = vec![vec![0u32; sigma], vec![1u32; sigma]];
        for (letter, t) in trans[0].iter_mut().enumerate() {
            if !pred(letter as u32) {
                *t = 1;
            }
        }
        Dfa {
            num_tracks,
            trans,
            accept: vec![true, false],
            init: 0,
        }
    }

    /// Run the automaton on a word.
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut q = self.init;
        for &letter in word {
            q = self.trans[q as usize][letter as usize];
        }
        self.accept[q as usize]
    }

    /// Product construction combining acceptance with `combine`.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        self.product_budgeted(other, combine, &Budget::unlimited())
            .expect("unlimited budget cannot be exhausted")
    }

    /// Budgeted [`Dfa::product`]: fuel is charged per explored product
    /// state, the unit in which the construction blows up.
    pub fn product_budgeted(
        &self,
        other: &Dfa,
        combine: impl Fn(bool, bool) -> bool,
        budget: &Budget,
    ) -> Result<Dfa, Exhaustion> {
        assert_eq!(self.num_tracks, other.num_tracks);
        let sigma = self.alphabet();
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut order: Vec<(u32, u32)> = Vec::new();
        let mut queue = VecDeque::new();
        map.insert((self.init, other.init), 0);
        order.push((self.init, other.init));
        queue.push_back((self.init, other.init));
        let mut trans: Vec<Vec<u32>> = Vec::new();
        while let Some((a, b)) = queue.pop_front() {
            budget.check()?;
            let mut row = Vec::with_capacity(sigma);
            for letter in 0..sigma {
                let na = self.trans[a as usize][letter];
                let nb = other.trans[b as usize][letter];
                let key = (na, nb);
                let idx = match map.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = order.len() as u32;
                        map.insert(key, i);
                        order.push(key);
                        queue.push_back(key);
                        i
                    }
                };
                row.push(idx);
            }
            trans.push(row);
        }
        let accept = order
            .iter()
            .map(|&(a, b)| combine(self.accept[a as usize], other.accept[b as usize]))
            .collect();
        Dfa {
            num_tracks: self.num_tracks,
            trans,
            accept,
            init: 0,
        }
        .minimize_budgeted(budget)
    }

    /// Intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Budgeted intersection.
    pub fn intersect_budgeted(&self, other: &Dfa, budget: &Budget) -> Result<Dfa, Exhaustion> {
        self.product_budgeted(other, |a, b| a && b, budget)
    }

    /// Union.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Budgeted union.
    pub fn union_budgeted(&self, other: &Dfa, budget: &Budget) -> Result<Dfa, Exhaustion> {
        self.product_budgeted(other, |a, b| a || b, budget)
    }

    /// Complement (automata are complete, so flip acceptance).
    pub fn complement(&self) -> Dfa {
        Dfa {
            num_tracks: self.num_tracks,
            trans: self.trans.clone(),
            accept: self.accept.iter().map(|&a| !a).collect(),
            init: self.init,
        }
    }

    /// Project away track `t` (existential quantification): the result
    /// ignores bit `t` of every letter, nondeterministically guessing it,
    /// then determinizes. The caller must afterwards apply
    /// [`Dfa::zero_closure`] to keep the WS1S "don't care about padding"
    /// invariant; [`crate::ws1s`] does this.
    ///
    /// The projected automaton keeps the same number of tracks, with track
    /// `t` becoming irrelevant (both values of the bit behave identically).
    /// Keeping track indices stable simplifies the logic layer.
    pub fn project(&self, t: usize) -> Dfa {
        self.project_budgeted(t, &Budget::unlimited())
            .expect("unlimited budget cannot be exhausted")
    }

    /// Budgeted [`Dfa::project`]: fuel is charged per explored subset state
    /// of the determinization, where the exponential lives.
    pub fn project_budgeted(&self, t: usize, budget: &Budget) -> Result<Dfa, Exhaustion> {
        assert!(t < self.num_tracks);
        let sigma = self.alphabet();
        let bit = 1u32 << t;
        // Subset construction over sets of states.
        let mut map: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut order: Vec<Vec<u32>> = Vec::new();
        let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
        let start = vec![self.init];
        map.insert(start.clone(), 0);
        order.push(start.clone());
        queue.push_back(start);
        let mut trans: Vec<Vec<u32>> = Vec::new();
        while let Some(states) = queue.pop_front() {
            budget.check()?;
            let mut row = Vec::with_capacity(sigma);
            for letter in 0..sigma as u32 {
                let mut next: Vec<u32> = Vec::new();
                for &q in &states {
                    for guessed in [letter & !bit, letter | bit] {
                        let nq = self.trans[q as usize][guessed as usize];
                        if !next.contains(&nq) {
                            next.push(nq);
                        }
                    }
                }
                next.sort_unstable();
                let idx = match map.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = order.len() as u32;
                        map.insert(next.clone(), i);
                        order.push(next.clone());
                        queue.push_back(next);
                        i
                    }
                };
                row.push(idx);
            }
            trans.push(row);
        }
        let accept = order
            .iter()
            .map(|states| states.iter().any(|&q| self.accept[q as usize]))
            .collect();
        Ok(Dfa {
            num_tracks: self.num_tracks,
            trans,
            accept,
            init: 0,
        })
    }

    /// Make states accepting when an all-zero-letter path reaches an
    /// accepting state. Required after projection: a witness for the
    /// projected set may live at positions past the end of the word, which
    /// corresponds to extending the word with zero letters.
    pub fn zero_closure(&self) -> Dfa {
        let mut accept = self.accept.clone();
        // Fixpoint: q accepting if trans[q][0] accepting.
        loop {
            let mut changed = false;
            for q in 0..self.num_states() {
                if !accept[q] && accept[self.trans[q][0] as usize] {
                    accept[q] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Dfa {
            num_tracks: self.num_tracks,
            trans: self.trans.clone(),
            accept,
            init: self.init,
        }
    }

    /// Moore's minimization (partition refinement). Also removes
    /// unreachable states.
    pub fn minimize(&self) -> Dfa {
        self.minimize_budgeted(&Budget::unlimited())
            .expect("unlimited budget cannot be exhausted")
    }

    /// Budgeted [`Dfa::minimize`]: fuel is charged per state signature per
    /// refinement round.
    pub fn minimize_budgeted(&self, budget: &Budget) -> Result<Dfa, Exhaustion> {
        // Reachable states first.
        let mut reachable = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        reachable[self.init as usize] = true;
        queue.push_back(self.init);
        while let Some(q) = queue.pop_front() {
            for &n in &self.trans[q as usize] {
                if !reachable[n as usize] {
                    reachable[n as usize] = true;
                    queue.push_back(n);
                }
            }
        }
        let states: Vec<usize> = (0..self.num_states()).filter(|&q| reachable[q]).collect();

        // Initial partition: accepting vs not.
        let mut class = vec![0u32; self.num_states()];
        for &q in &states {
            class[q] = u32::from(self.accept[q]);
        }
        let sigma = self.alphabet();
        loop {
            // Signature of each state: (class, classes of successors).
            let mut sig_map: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            let mut new_class = vec![0u32; self.num_states()];
            for &q in &states {
                budget.check()?;
                let mut sig = Vec::with_capacity(sigma + 1);
                sig.push(class[q]);
                for letter in 0..sigma {
                    sig.push(class[self.trans[q][letter] as usize]);
                }
                let next_id = sig_map.len() as u32;
                let id = *sig_map.entry(sig).or_insert(next_id);
                new_class[q] = id;
            }
            if states.iter().all(|&q| new_class[q] == class[q])
                || sig_map.len() as u32
                    == states
                        .iter()
                        .map(|&q| class[q])
                        .collect::<std::collections::HashSet<_>>()
                        .len() as u32
            {
                class = new_class;
                break;
            }
            class = new_class;
        }

        // Build the quotient.
        let num_classes = states
            .iter()
            .map(|&q| class[q])
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut trans = vec![vec![0u32; sigma]; num_classes];
        let mut accept = vec![false; num_classes];
        for &q in &states {
            let c = class[q] as usize;
            accept[c] = self.accept[q];
            for letter in 0..sigma {
                trans[c][letter] = class[self.trans[q][letter] as usize];
            }
        }
        Ok(Dfa {
            num_tracks: self.num_tracks,
            trans,
            accept,
            init: class[self.init as usize],
        })
    }

    /// Is the accepted language empty?
    pub fn is_empty(&self) -> bool {
        self.shortest_accepting().is_none()
    }

    /// Shortest accepting word (BFS), if any.
    pub fn shortest_accepting(&self) -> Option<Vec<u32>> {
        let mut prev: Vec<Option<(u32, u32)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.init as usize] = true;
        queue.push_back(self.init);
        let mut found: Option<u32> = None;
        if self.accept[self.init as usize] {
            found = Some(self.init);
        }
        while found.is_none() {
            let Some(q) = queue.pop_front() else { break };
            for (letter, &n) in self.trans[q as usize].iter().enumerate() {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    prev[n as usize] = Some((q, letter as u32));
                    if self.accept[n as usize] {
                        found = Some(n);
                        break;
                    }
                    queue.push_back(n);
                }
            }
        }
        let mut q = found?;
        let mut word = Vec::new();
        while let Some((p, letter)) = prev[q as usize] {
            word.push(letter);
            q = p;
        }
        word.reverse();
        Some(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// DFA over one track accepting words with an even number of 1-letters.
    fn even_ones() -> Dfa {
        Dfa {
            num_tracks: 1,
            trans: vec![vec![0, 1], vec![1, 0]],
            accept: vec![true, false],
            init: 0,
        }
    }

    /// DFA over one track accepting words containing at least one 1.
    fn contains_one() -> Dfa {
        Dfa {
            num_tracks: 1,
            trans: vec![vec![0, 1], vec![1, 1]],
            accept: vec![false, true],
            init: 0,
        }
    }

    #[test]
    fn accepts_runs() {
        let d = even_ones();
        assert!(d.accepts(&[]));
        assert!(!d.accepts(&[1]));
        assert!(d.accepts(&[1, 0, 1]));
    }

    #[test]
    fn letterwise_condition() {
        // Two tracks; accept iff bit0 ≤ bit1 everywhere (X ⊆ Y).
        let d = Dfa::letterwise(2, |l| (l & 1 == 0) || (l & 2 != 0));
        assert!(d.accepts(&[0b00, 0b10, 0b11]));
        assert!(!d.accepts(&[0b01]));
        assert!(d.accepts(&[]));
    }

    #[test]
    fn product_intersection_union() {
        let a = even_ones();
        let b = contains_one();
        let both = a.intersect(&b);
        assert!(both.accepts(&[1, 1]));
        assert!(!both.accepts(&[1]));
        assert!(!both.accepts(&[]));
        let either = a.union(&b);
        assert!(either.accepts(&[]));
        assert!(either.accepts(&[1]));
        assert!(either.accepts(&[1, 1]));
        assert_eq!(
            either.union(&Dfa::none(1)).accepts(&[1]),
            either.accepts(&[1]),
            "union with the empty language is identity"
        );
    }

    #[test]
    fn complement_flips() {
        let d = even_ones().complement();
        assert!(!d.accepts(&[]));
        assert!(d.accepts(&[1]));
        // Double complement restores the language on samples.
        let dd = d.complement();
        for w in [&[][..], &[1][..], &[1, 0, 1][..], &[0, 0][..]] {
            assert_eq!(dd.accepts(w), even_ones().accepts(w));
        }
    }

    #[test]
    fn minimize_collapses() {
        // A 4-state automaton for "even ones" with duplicated states.
        let d = Dfa {
            num_tracks: 1,
            trans: vec![vec![2, 1], vec![1, 0], vec![0, 3], vec![3, 2]],
            accept: vec![true, false, true, false],
            init: 0,
        };
        let m = d.minimize();
        assert_eq!(m.num_states(), 2);
        for w in [&[][..], &[1][..], &[1, 1][..], &[0, 1, 0, 1][..]] {
            assert_eq!(m.accepts(w), d.accepts(w));
        }
    }

    #[test]
    fn minimize_drops_unreachable() {
        let d = Dfa {
            num_tracks: 1,
            trans: vec![vec![0, 0], vec![1, 1]],
            accept: vec![true, false],
            init: 0,
        };
        let m = d.minimize();
        assert_eq!(m.num_states(), 1);
        assert!(m.accepts(&[1, 0]));
    }

    #[test]
    fn projection_guesses_track() {
        // Two tracks. Language: track0 equals track1 pointwise (letters 00
        // or 11 only). Projecting track 1 should accept every word over
        // track 0 (any bit pattern can be matched).
        let eq = Dfa::letterwise(2, |l| (l & 1 != 0) == (l & 2 != 0));
        let proj = eq.project(1).minimize();
        assert!(proj.accepts(&[0b00, 0b01, 0b01]));
        assert!(proj.accepts(&[]));
        // Language: track1 has a 1 somewhere AND track0 empty. After
        // projecting track1: words with track0 empty, but the witness
        // requires some position — zero-closure matters for the empty word.
        let t1_nonempty = Dfa {
            num_tracks: 2,
            trans: vec![vec![0, 0, 1, 1], vec![1, 1, 1, 1]],
            accept: vec![false, true],
            init: 0,
        };
        let t0_empty = Dfa::letterwise(2, |l| l & 1 == 0);
        let conj = t1_nonempty.intersect(&t0_empty);
        let proj = conj.project(1);
        // Without zero closure, the empty word is rejected (no position for
        // the witness)...
        assert!(!proj.accepts(&[]));
        // ...with zero closure it is accepted, matching EX X. X ≠ ∅.
        let closed = proj.zero_closure();
        assert!(closed.accepts(&[]));
        assert!(closed.accepts(&[0b00]));
        assert!(!closed.accepts(&[0b01]), "track0 must stay empty");
    }

    #[test]
    fn emptiness_and_shortest_word() {
        assert!(Dfa::none(1).is_empty());
        assert!(!Dfa::all(1).is_empty());
        assert_eq!(Dfa::all(1).shortest_accepting(), Some(vec![]));
        let d = contains_one();
        assert_eq!(d.shortest_accepting(), Some(vec![1]));
        let inter = even_ones().intersect(&contains_one());
        let w = inter.shortest_accepting().unwrap();
        assert_eq!(w.iter().filter(|&&l| l == 1).count() % 2, 0);
        assert!(w.contains(&1));
    }

    #[test]
    fn product_language_correct_exhaustive() {
        // Check product against direct evaluation on all words up to
        // length 6 over one track.
        let a = even_ones();
        let b = contains_one();
        let inter = a.intersect(&b);
        let union = a.union(&b);
        for len in 0..=6usize {
            for bits in 0..(1u32 << len) {
                let word: Vec<u32> = (0..len).map(|i| (bits >> i) & 1).collect();
                assert_eq!(inter.accepts(&word), a.accepts(&word) && b.accepts(&word));
                assert_eq!(union.accepts(&word), a.accepts(&word) || b.accepts(&word));
            }
        }
    }
}
